//! # memcon-suite — a reproduction of MEMCON (Khan et al., MICRO 2017)
//!
//! *Detecting and Mitigating Data-Dependent DRAM Failures by Exploiting
//! Current Memory Content.*
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`dram`] — DRAM device substrate (geometry, DDR3 timing, scrambling,
//!   column remapping, bank state machines, content storage),
//! * [`failure_model`] — data-dependent failure physics and the SoftMC-like
//!   chip tester,
//! * [`memtrace`] — Pareto write-interval workloads (paper Table 1) and CPU
//!   access traces,
//! * [`memsim`] — cycle-level DDR3 memory-system simulator,
//! * [`memcon`] — **the paper's contribution**: PRIL prediction, the online
//!   test engine, cost-benefit model, refresh management, RAIDR baseline,
//! * [`experiments`] — regeneration of every table and figure in the
//!   paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use memcon_suite::memcon::config::MemconConfig;
//! use memcon_suite::memcon::engine::MemconEngine;
//! use memcon_suite::memtrace::workload::WorkloadProfile;
//!
//! // Trace a Table-1 workload and run MEMCON over it.
//! let trace = WorkloadProfile::netflix().scaled(0.05).generate(7);
//! let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
//! let report = engine.run(&trace);
//! println!(
//!     "refresh reduction: {:.1}% (upper bound {:.0}%)",
//!     report.refresh_reduction * 100.0,
//!     report.upper_bound * 100.0
//! );
//! assert!(report.refresh_reduction > 0.5);
//! ```

#![warn(missing_docs)]

pub use dram;
pub use experiments;
pub use failure_model;
pub use memcon;
pub use memsim;
pub use memtrace;
pub use telemetry;
