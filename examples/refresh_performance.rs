//! Performance walkthrough: how much does refresh cost, and how much does
//! MEMCON's refresh reduction buy back, on the cycle-level simulator?
//!
//! Sweeps chip density × refresh policy on a memory-intensive workload and
//! prints speedups over the aggressive 16 ms baseline (paper Figs. 15/16).
//!
//! ```text
//! cargo run --release --example refresh_performance
//! ```

use memcon_suite::dram::geometry::ChipDensity;
use memcon_suite::memsim::config::{RefreshPolicy, SystemConfig};
use memcon_suite::memsim::system::System;
use memcon_suite::memsim::testinject::TestInjectConfig;
use memcon_suite::memtrace::cpu::spec_tpc_pool;

fn main() {
    let instructions = 300_000;
    let profile = spec_tpc_pool()[0]; // mcf: memory-intensive
    println!(
        "Workload: {} ({} DRAM accesses per kilo-instruction)\n",
        profile.name, profile.mpki
    );
    println!(
        "{:<8} {:<22} {:>10} {:>9} {:>9}",
        "Density", "Policy", "cycles", "IPC", "speedup"
    );
    for density in ChipDensity::ALL {
        let baseline_cfg = SystemConfig::new(1, density, RefreshPolicy::baseline_16ms());
        let base = System::new(baseline_cfg, vec![profile], 7).run(instructions);
        let configs: Vec<(String, RefreshPolicy, bool)> = vec![
            (
                "16 ms baseline".into(),
                RefreshPolicy::baseline_16ms(),
                false,
            ),
            (
                "MEMCON (70% red + test)".into(),
                RefreshPolicy::Reduced {
                    baseline_interval_ms: 16.0,
                    reduction: 0.70,
                },
                true,
            ),
            (
                "64 ms ideal".into(),
                RefreshPolicy::Fixed { interval_ms: 64.0 },
                false,
            ),
            ("no refresh".into(), RefreshPolicy::None, false),
        ];
        for (label, policy, inject) in configs {
            let cfg = SystemConfig::new(1, density, policy);
            let mut system = System::new(cfg, vec![profile], 7);
            if inject {
                system = system.with_test_injection(TestInjectConfig::read_and_compare(256));
            }
            let stats = system.run(instructions);
            println!(
                "{:<8} {:<22} {:>10} {:>9.3} {:>8.3}x",
                density.label(),
                label,
                stats.per_core_cycles[0],
                stats.per_core_ipc[0],
                stats.speedup_over(&base)
            );
        }
        println!();
    }
    println!("Refresh costs grow with density; MEMCON recovers most of the ideal gain.");
}
