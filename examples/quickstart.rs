//! Quickstart: run MEMCON end-to-end on one workload and print its report.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [scale]
//! ```
//!
//! `workload` is a Table-1 name (default `Netflix`); `scale` shrinks the
//! simulated footprint (default 0.25).

use memcon_suite::memcon::config::MemconConfig;
use memcon_suite::memcon::cost::TestMode;
use memcon_suite::memcon::engine::MemconEngine;
use memcon_suite::memtrace::workload::WorkloadProfile;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Netflix".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let Some(workload) = WorkloadProfile::by_name(&name) else {
        eprintln!(
            "unknown workload '{name}'; known: {}",
            WorkloadProfile::all()
                .iter()
                .map(|w| w.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };

    println!(
        "Tracing {} ({}, {} GB footprint) for {} simulated seconds…",
        workload.name, workload.kind, workload.mem_gb, workload.sim_seconds
    );
    let trace = workload.scaled(scale).generate(0xC0FFEE);
    println!(
        "  {} write events over {} pages",
        trace.len(),
        trace.n_pages()
    );

    let config = MemconConfig::paper_default();
    println!(
        "MEMCON config: quantum {} ms, HI/LO {}/{} ms, {} mode,",
        config.quantum_ms, config.hi_ms, config.lo_ms, config.test_mode
    );
    println!(
        "  MinWriteInterval = {} ms (Copy-and-Compare would be {} ms)",
        config.min_write_interval_ms(),
        config
            .with_test_mode(TestMode::CopyAndCompare)
            .min_write_interval_ms()
    );

    let mut engine = MemconEngine::new(config, trace.n_pages());
    let report = engine.run(&trace);
    let internals = engine.internals();

    println!("\nResults:");
    println!(
        "  refresh reduction : {:.1}% (upper bound {:.0}%)",
        report.refresh_reduction * 100.0,
        report.upper_bound * 100.0
    );
    println!(
        "  LO-REF coverage   : {:.1}% of page-time",
        report.lo_coverage * 100.0
    );
    println!(
        "  tests             : {} started, {} correct, {} mispredicted",
        internals.tests.started, report.tests_correct, report.tests_mispredicted
    );
    println!(
        "  refresh+test time : {:.1}% of the 16 ms baseline's refresh time",
        report.normalized_refresh_and_test_time() * 100.0
    );
}
