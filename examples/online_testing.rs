//! Online-testing walkthrough: watch PRIL and the test engine operate on a
//! hand-built write pattern, page by page.
//!
//! Four pages with different behaviours show every path through the
//! mechanism: a busy page (never tested), an idle page (tested → LO-REF),
//! an early-rewritten page (mispredicted test), and a failing page
//! (tested → stays HI-REF).
//!
//! ```text
//! cargo run --example online_testing
//! ```

use memcon_suite::memcon::config::MemconConfig;
use memcon_suite::memcon::engine::MemconEngine;
use memcon_suite::memcon::testengine::{FailureOracle, RateOracle};
use memcon_suite::memtrace::trace::{WriteEvent, WriteTrace};

/// Page 3 always fails its content test; the others never do.
#[derive(Debug)]
struct Page3Fails(RateOracle);

impl FailureOracle for Page3Fails {
    fn page_fails(&mut self, page: u64, generation: u64) -> bool {
        let _ = self.0.page_fails(page, generation);
        page == 3
    }
}

fn main() {
    const MS: u64 = 1_000_000;
    let mut events = Vec::new();
    // Page 0: busy — written every 100 ms.
    for i in 0..100u64 {
        events.push(WriteEvent {
            time_ns: i * 100 * MS,
            page: 0,
        });
    }
    // Page 1: one write, then idle forever.
    events.push(WriteEvent {
        time_ns: 50 * MS,
        page: 1,
    });
    // Page 2: one write, tested, then rewritten 150 ms after the test.
    events.push(WriteEvent {
        time_ns: 10 * MS,
        page: 2,
    });
    events.push(WriteEvent {
        time_ns: 2250 * MS,
        page: 2,
    });
    // Page 3: one write, then idle — but its content fails the test.
    events.push(WriteEvent {
        time_ns: 20 * MS,
        page: 3,
    });

    let trace = WriteTrace::new(events, 10_240 * MS, 4);
    let config = MemconConfig::paper_default().with_cold_start();
    println!(
        "Quantum {} ms, test window {} ms, MinWriteInterval {} ms\n",
        config.quantum_ms,
        config.lo_ms,
        config.min_write_interval_ms()
    );

    let oracle = Page3Fails(RateOracle::new(0.0, 0));
    let mut engine = MemconEngine::with_oracle(config, 4, Box::new(oracle));
    let report = engine.run(&trace);
    let internals = engine.internals();

    println!("Trace: 10.24 s, 4 pages with distinct behaviours");
    println!("  page 0: written every 100 ms  -> never a PRIL candidate");
    println!("  page 1: single write at 50 ms -> tested at ~2 s, LO-REF after");
    println!("  page 2: rewritten 150 ms after its test -> misprediction");
    println!("  page 3: idle but content fails -> tested, kept at HI-REF\n");

    println!("Engine outcome:");
    println!(
        "  PRIL: {} writes seen, {} candidates",
        internals.pril.writes, internals.pril.candidates
    );
    println!(
        "  tests: {} started, {} failed, {} aborted",
        internals.tests.started, internals.tests.failed, internals.tests.aborted
    );
    println!(
        "  verdicts: {} correct, {} mispredicted",
        report.tests_correct, report.tests_mispredicted
    );
    println!(
        "  LO-REF coverage {:.1}%, refresh reduction {:.1}% (bound {:.0}%)",
        report.lo_coverage * 100.0,
        report.refresh_reduction * 100.0,
        report.upper_bound * 100.0
    );

    assert_eq!(internals.tests.failed, 1, "page 3 must fail its test");
    assert!(report.tests_mispredicted >= 1, "page 2 must mispredict");
}
