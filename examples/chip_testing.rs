//! Chip-testing walkthrough: demonstrate data-dependent failures on a
//! simulated DRAM chip, the way the paper's FPGA infrastructure does —
//! fill → idle → read back — and show why content matters.
//!
//! ```text
//! cargo run --release --example chip_testing
//! ```

use memcon_suite::dram::geometry::{ChipDensity, DramGeometry};
use memcon_suite::dram::module::DramModule;
use memcon_suite::dram::timing::TimingParams;
use memcon_suite::failure_model::params::FailureModelParams;
use memcon_suite::failure_model::patterns::TestPattern;
use memcon_suite::failure_model::tester::ChipTester;
use memcon_suite::failure_model::{Celsius, SpecBenchmark};

fn main() {
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 8,
        banks: 8,
        rows_per_bank: 1024,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xD1E5EED);
    println!(
        "Simulated chip: {} banks x {} rows x {} KB rows ({} MB), seed {:#x}",
        geometry.banks,
        geometry.rows_per_bank,
        geometry.row_bytes / 1024,
        geometry.capacity_bytes() / (1 << 20),
        module.chip_seed()
    );

    // The paper tests at 4 s refresh @ 45 C == 328 ms @ 85 C.
    let mut tester =
        ChipTester::new(module, FailureModelParams::calibrated()).with_temperature(Celsius::TEST);
    let interval_ms = 4000.0;
    println!(
        "Testing at {} ms refresh @ {} (= {:.0} ms @ 85°C)\n",
        interval_ms,
        Celsius::TEST,
        Celsius::TEST.equivalent_interval_ms(interval_ms)
    );

    println!("Manufacturing patterns:");
    for pattern in TestPattern::suite(4) {
        tester.fill_pattern(&pattern);
        let _ = tester.idle_ms(interval_ms);
        let report = tester.read_back();
        println!(
            "  {:<12} {:>5} failing rows ({:.2}%), {:>5} flipped bits",
            pattern.label(),
            report.failing_row_count(),
            report.failing_row_fraction() * 100.0,
            report.flipped_bits()
        );
    }

    println!("\nProgram content (three SPEC profiles):");
    let words = geometry.words_per_row();
    for bench in [SpecBenchmark::Lbm, SpecBenchmark::Gcc, SpecBenchmark::Astar] {
        let profile = bench.profile();
        tester.fill_with(|row| profile.row_content(bench as u64, 0, row, words));
        let _ = tester.idle_ms(interval_ms);
        let report = tester.read_back();
        println!(
            "  {:<12} {:>5} failing rows ({:.2}%)",
            bench.name(),
            report.failing_row_count(),
            report.failing_row_fraction() * 100.0
        );
    }
    println!(
        "\nProgram content fails far fewer rows than adversarial patterns —\n\
         the observation MEMCON exploits (paper Figs. 3-4)."
    );
}
