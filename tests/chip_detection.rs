//! Cross-crate integration: system-level failure *detection* really works
//! on the simulated chip — read-back comparison and ECC signatures find
//! exactly the bits the physics flipped, through scrambling and remapping.

use memcon_suite::dram::geometry::{ChipDensity, DramGeometry};
use memcon_suite::dram::module::DramModule;
use memcon_suite::dram::timing::TimingParams;
use memcon_suite::failure_model::params::FailureModelParams;
use memcon_suite::failure_model::patterns::TestPattern;
use memcon_suite::failure_model::tester::ChipTester;
use memcon_suite::memcon::ecc::{Crc64, DecodeResult, Hamming72};

fn chip(seed: u64) -> ChipTester {
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 4,
        rows_per_bank: 512,
        row_bytes: 4096,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let module = DramModule::new(geometry, TimingParams::ddr3_1600(), seed);
    ChipTester::new(module, FailureModelParams::calibrated())
}

#[test]
fn crc_signatures_flag_exactly_the_failing_rows() {
    // Copy-and-Compare keeps only a signature per in-test row; it must flag
    // the same rows a full read-back comparison finds.
    let mut tester = chip(0xAB);
    tester.fill_pattern(&TestPattern::Random(5));
    let crc = Crc64::new();
    let total_rows = tester.module().geometry().total_rows();
    let before: Vec<u64> = (0..total_rows)
        .map(|id| crc.row_signature(tester.module().read_row_id(id).as_words()))
        .collect();

    let failures = tester.idle_ms(600.0);
    assert!(
        !failures.is_empty(),
        "expected some failures at a 600 ms interval"
    );

    let report = tester.read_back();
    let flagged: Vec<u64> = (0..total_rows)
        .filter(|&id| {
            crc.row_signature(tester.module().read_row_id(id).as_words()) != before[id as usize]
        })
        .collect();
    let mut expected: Vec<u64> = report
        .failing_rows
        .iter()
        .map(|(addr, _)| addr.to_row_id(tester.module().geometry()))
        .collect();
    expected.sort_unstable();
    assert_eq!(flagged, expected, "CRC must flag exactly the failing rows");
}

#[test]
fn hamming_corrects_single_bit_rows_detects_multi() {
    let mut tester = chip(0xCD);
    tester.fill_pattern(&TestPattern::Random(9));
    // Snapshot codewords of every word in the module.
    let h = Hamming72;
    let g = *tester.module().geometry();
    let codewords: Vec<Vec<u128>> = (0..g.total_rows())
        .map(|id| {
            tester
                .module()
                .read_row_id(id)
                .as_words()
                .iter()
                .map(|&w| h.encode(w))
                .collect()
        })
        .collect();
    let _ = tester.idle_ms(600.0);
    let report = tester.read_back();
    assert!(!report.is_clean());

    // For each failing row, decoding the stored codeword against the *new*
    // data locates the flip: codeword (old data) vs current word differ in
    // data bits; re-encoding current and decoding old codeword + comparing
    // is how a DIMM would see it. Here we verify per-word: flipping the
    // known failing bit back restores the original decode.
    for (addr, bits) in &report.failing_rows {
        let id = addr.to_row_id(&g);
        let row = tester.module().read_row_id(id);
        let mut per_word: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for &bit in bits {
            *per_word.entry(bit / 64).or_insert(0) += 1;
        }
        // Map data-bit positions (within a 64-bit word) to codeword
        // positions: the non-powers-of-two of 1..72, in order.
        let data_positions: Vec<u32> = (1u32..72).filter(|p| !p.is_power_of_two()).collect();
        for (word_idx, flips) in per_word {
            let old_cw = codewords[id as usize][word_idx as usize];
            let current = row.as_words()[word_idx as usize];
            // Reconstruct what a SEC-DED DIMM stores after the flips: the
            // old parity bits with the flipped data bits.
            let mut cw = old_cw;
            let mut old_word = current;
            for &bit in bits.iter().filter(|&&b| b / 64 == word_idx) {
                cw ^= 1u128 << data_positions[(bit % 64) as usize];
                old_word ^= 1u64 << (bit % 64);
            }
            match (flips, h.decode(cw)) {
                (1, DecodeResult::Corrected { data, .. }) => {
                    assert_eq!(data, old_word, "SEC must recover the pre-flip word");
                }
                (1, other) => panic!("single flip not corrected: {other:?}"),
                (n, DecodeResult::DoubleError) if n >= 2 => {}
                (n, DecodeResult::Corrected { .. } | DecodeResult::Clean(_)) if n >= 3 => {
                    // ≥3 flips can alias — SEC-DED's known limitation.
                }
                (n, other) => panic!("{n} flips decoded as {other:?}"),
            }
        }
    }
}

#[test]
fn detection_is_blind_to_internals_but_complete() {
    // The tester (system side) must find every flip the physics (internal
    // side) produced — through scrambling and remapping — and nothing else.
    let mut tester = chip(0xEF);
    tester.fill_pattern(&TestPattern::Checkerboard);
    let failures = tester.idle_ms(800.0);
    let report = tester.read_back();
    assert_eq!(report.flipped_bits(), failures.len() as u64);
    // Every physics failure is observed at its *system* coordinates.
    for f in &failures {
        let found = report
            .failing_rows
            .iter()
            .any(|(addr, bits)| *addr == f.system_row && bits.contains(&f.system_bit));
        assert!(found, "failure {f:?} not observed by read-back");
    }
}
