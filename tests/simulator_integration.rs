//! Cross-crate integration: the cycle simulator driven by the CPU trace
//! substrate, checked for internal consistency and the paper's performance
//! mechanics.

use memcon_suite::dram::geometry::ChipDensity;
use memcon_suite::memsim::config::{RefreshPolicy, SystemConfig};
use memcon_suite::memsim::system::System;
use memcon_suite::memsim::testinject::TestInjectConfig;
use memcon_suite::memtrace::cpu::{random_mixes, spec_tpc_pool};

const INST: u64 = 120_000;

#[test]
fn controller_accounting_is_consistent() {
    let config = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::baseline_16ms());
    let profile = spec_tpc_pool()[0];
    let mut system = System::new(config.clone(), vec![profile], 3);
    let stats = system.run(INST);
    // Served traffic roughly matches the workload's write fraction.
    let wf = stats.ctrl.writes as f64 / (stats.ctrl.reads + stats.ctrl.writes) as f64;
    assert!(
        (wf - profile.write_frac).abs() < 0.05,
        "write fraction {wf} vs {}",
        profile.write_frac
    );
    // Activations never exceed column accesses, and locality means real
    // row-buffer hits (columns served per activation > 1 on average).
    assert!(stats.ctrl.acts <= stats.ctrl.column_accesses);
    assert!(stats.ctrl.column_accesses == stats.ctrl.reads + stats.ctrl.writes);
    // Refresh count tracks the run length: one per tREFI within ~1%.
    let trefi = config.refresh.trefi_cycles(&config.timing).unwrap();
    let expected = stats.total_cycles / trefi;
    assert!(
        stats.ctrl.refreshes + 2 >= expected && stats.ctrl.refreshes <= expected + 2,
        "refreshes {} vs expected {expected}",
        stats.ctrl.refreshes
    );
    // Blackout time equals refreshes x tRFC (the run may end mid-blackout,
    // truncating at most one window).
    let trfc = config.timing.trfc_cycles();
    let full = stats.ctrl.refreshes * trfc;
    assert!(
        stats.ctrl.refresh_blackout_cycles <= full
            && stats.ctrl.refresh_blackout_cycles + trfc >= full,
        "blackout {} vs {} refreshes x {trfc}",
        stats.ctrl.refresh_blackout_cycles,
        stats.ctrl.refreshes
    );
}

#[test]
fn refresh_policies_order_performance_correctly() {
    // For a memory-bound workload: none >= 64ms >= reduced(60%) >= 16ms.
    let profile = spec_tpc_pool()[0]; // mcf
    let cycles = |policy: RefreshPolicy| {
        let config = SystemConfig::new(1, ChipDensity::Gb32, policy);
        System::new(config, vec![profile], 9)
            .run(INST)
            .per_core_cycles[0]
    };
    let none = cycles(RefreshPolicy::None);
    let ms64 = cycles(RefreshPolicy::Fixed { interval_ms: 64.0 });
    let reduced = cycles(RefreshPolicy::Reduced {
        baseline_interval_ms: 16.0,
        reduction: 0.60,
    });
    let ms16 = cycles(RefreshPolicy::baseline_16ms());
    assert!(none <= ms64, "{none} > {ms64}");
    assert!(ms64 <= reduced, "{ms64} > {reduced}");
    assert!(reduced < ms16, "{reduced} >= {ms16}");
}

#[test]
fn mixes_run_reproducibly_across_core_counts() {
    let mixes = random_mixes(2, 4, 5);
    for mix in &mixes {
        for cores in [1usize, 4] {
            let config =
                SystemConfig::new(cores, ChipDensity::Gb16, RefreshPolicy::baseline_16ms());
            let a = System::new(config.clone(), mix[..cores].to_vec(), 1).run(60_000);
            let b = System::new(config, mix[..cores].to_vec(), 1).run(60_000);
            assert_eq!(a.per_core_cycles, b.per_core_cycles);
            assert_eq!(a.ctrl, b.ctrl);
        }
    }
}

#[test]
fn injected_tests_share_bandwidth_without_starvation() {
    let config = SystemConfig::new(
        4,
        ChipDensity::Gb8,
        RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: 0.70,
        },
    );
    let pool = spec_tpc_pool();
    let mix = vec![pool[0], pool[1], pool[4], pool[15]];
    let mut system =
        System::new(config, mix, 11).with_test_injection(TestInjectConfig::copy_and_compare(1024));
    let stats = system.run(INST);
    assert!(stats.test_requests > 0, "tests must inject");
    // All cores still finish (no starvation) with sane IPC.
    for (i, ipc) in stats.per_core_ipc.iter().enumerate() {
        assert!(*ipc > 0.01, "core {i} starved: IPC {ipc}");
    }
}
