//! The reliability guarantee (paper Section 3): with MEMCON in control,
//! **no page sits at LO-REF whose current content would fail at the LO-REF
//! interval** — every LO-REF page passed a content test after its last
//! write, and every failing or changed page is back at HI-REF.

use std::collections::HashMap;

use memcon_suite::memcon::config::MemconConfig;
use memcon_suite::memcon::engine::MemconEngine;
use memcon_suite::memcon::refreshmgr::PageState;
use memcon_suite::memcon::testengine::FailureOracle;
use memcon_suite::memtrace::trace::{WriteEvent, WriteTrace};
use memcon_suite::memtrace::workload::WorkloadProfile;

/// A deterministic oracle that remembers every verdict it gave, so the test
/// can audit the engine's final states against them.
#[derive(Debug, Default)]
struct AuditedOracle {
    /// (page, generation) -> verdict given.
    verdicts: HashMap<(u64, u64), bool>,
}

impl AuditedOracle {
    fn verdict_for(page: u64, generation: u64) -> bool {
        // Deterministic pseudo-random failure pattern, ~3% failing.
        let mut z = page
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(generation);
        z ^= z >> 31;
        z.is_multiple_of(33)
    }
}

impl FailureOracle for AuditedOracle {
    fn page_fails(&mut self, page: u64, generation: u64) -> bool {
        let fails = Self::verdict_for(page, generation);
        self.verdicts.insert((page, generation), fails);
        fails
    }
}

#[test]
fn no_lo_ref_page_holds_failing_content() {
    let trace = WorkloadProfile::netflix().scaled(0.2).generate(77);
    let config = MemconConfig::paper_default();
    let mut engine =
        MemconEngine::with_oracle(config, trace.n_pages(), Box::new(AuditedOracle::default()));
    let _ = engine.run(&trace);

    // Reconstruct each page's final generation from the trace.
    let mut generations: HashMap<u64, u64> = HashMap::new();
    for e in trace.events() {
        *generations.entry(e.page).or_insert(0) += 1;
    }

    for (page, &state) in engine.final_states().iter().enumerate() {
        let page = page as u64;
        let generation = generations.get(&page).copied().unwrap_or(0);
        if state == PageState::LoRef {
            // The engine must have tested exactly this content and the
            // verdict must have been "clean".
            assert!(
                !AuditedOracle::verdict_for(page, generation),
                "page {page} at LO-REF with content (gen {generation}) that fails"
            );
        }
    }
}

#[test]
fn failing_pages_never_reach_lo_ref() {
    // An oracle where a fixed set of pages always fails.
    #[derive(Debug)]
    struct FixedBad;
    impl FailureOracle for FixedBad {
        fn page_fails(&mut self, page: u64, _generation: u64) -> bool {
            page.is_multiple_of(10)
        }
    }
    let trace = WriteTrace::new(
        (0..50u64)
            .map(|p| WriteEvent {
                time_ns: 1_000_000,
                page: p,
            })
            .collect(),
        20_480_000_000,
        50,
    );
    let mut engine =
        MemconEngine::with_oracle(MemconConfig::paper_default(), 50, Box::new(FixedBad));
    let report = engine.run(&trace);
    for (page, &state) in engine.final_states().iter().enumerate() {
        if page % 10 == 0 {
            assert_eq!(
                state,
                PageState::HiRef,
                "failing page {page} escaped HI-REF"
            );
        } else {
            assert_eq!(state, PageState::LoRef, "clean page {page} not at LO-REF");
        }
    }
    // 45 of 50 pages can run at LO-REF.
    assert!(report.lo_coverage > 0.7);
}

#[test]
fn a_write_always_revokes_lo_ref_immediately() {
    // Pages written at the very end of the trace must not be at LO-REF,
    // regardless of their earlier test results.
    let mut events: Vec<WriteEvent> = (0..20u64)
        .map(|p| WriteEvent {
            time_ns: 0,
            page: p,
        })
        .collect();
    let end = 10_240_000_000u64;
    for p in 0..10u64 {
        events.push(WriteEvent {
            time_ns: end - 1,
            page: p,
        });
    }
    let trace = WriteTrace::new(events, end, 20);
    let mut engine = MemconEngine::new(MemconConfig::paper_default(), 20);
    let _ = engine.run(&trace);
    for p in 0..10usize {
        assert_ne!(
            engine.final_states()[p],
            PageState::LoRef,
            "page {p} kept LO-REF across an untested write"
        );
    }
}
