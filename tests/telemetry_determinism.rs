//! Property tests for the telemetry determinism contract: every value in a
//! report's `deterministic` section derives from simulation state only, so
//! the same workload must produce a byte-identical deterministic section at
//! any worker count.
//!
//! The registry's `CURRENT` slot is process-global (so pool workers resolve
//! the same registry as the installer); tests that install scoped
//! registries therefore serialize on a mutex.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use memcon_suite::dram::cell::RowContent;
use memcon_suite::dram::geometry::{ChipDensity, DramGeometry};
use memcon_suite::dram::module::DramModule;
use memcon_suite::dram::timing::TimingParams;
use memcon_suite::failure_model::model::CouplingFailureModel;
use memcon_suite::memcon::config::MemconConfig;
use memcon_suite::memcon::engine::MemconEngine;
use memcon_suite::memtrace::workload::WorkloadProfile;
use memcon_suite::telemetry;
use memutil::rng::{Rng, SeedableRng, SmallRng};

/// Serializes registry installation across the test binary's threads.
fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `workload` under a fresh enabled scoped registry and returns the
/// canonical emission of the report's `deterministic` section.
fn deterministic_section(workload: impl FnOnce()) -> String {
    let _serial = install_lock()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let registry = Arc::new(telemetry::Registry::new());
    registry.set_enabled(true);
    let guard = telemetry::install(Arc::clone(&registry));
    workload();
    drop(guard);
    registry
        .report()
        .get("deterministic")
        .cloned()
        .expect("report has a deterministic section")
        .emit()
}

fn filled_module() -> DramModule {
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 2,
        rows_per_bank: 128,
        row_bytes: 1024,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let mut module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xD15C);
    let words = geometry.words_per_row();
    let mut rng = SmallRng::seed_from_u64(21);
    module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    module
}

#[test]
fn module_eval_counters_identical_across_jobs() {
    // Fig. 4-style sweep: the evaluation fans out per bank; cold fills,
    // warm hits, rows, and failures must sum identically at any worker
    // count (each model is fresh, so each run pays its own cold fills).
    let sections: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            deterministic_section(|| {
                let module = filled_module();
                let model = CouplingFailureModel::default();
                let _ = model.evaluate_module_with_jobs(&module, 328.0, jobs);
                let _ = model.evaluate_module_with_jobs(&module, 512.0, jobs);
            })
        })
        .collect();
    assert_eq!(sections[0], sections[1], "jobs 1 vs 2");
    assert_eq!(sections[0], sections[2], "jobs 1 vs 8");
    assert!(
        sections[0].contains("failure_model.eval.rows"),
        "eval counters present: {}",
        sections[0]
    );
}

#[test]
fn engine_counters_identical_across_repeats() {
    // The TestEngine workload is sequential, but its flush must be
    // reproducible run-to-run (fresh engine each time) — this pins the
    // whole memcon counter set, including the refresh-state machine.
    let trace = WorkloadProfile::netflix().scaled(0.02).generate(5);
    let run = || {
        deterministic_section(|| {
            let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
            let _ = engine.run(&trace);
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    for key in [
        "memcon.pril.writes",
        "memcon.tests.started",
        "memcon.refresh.to_lo",
        "memcon.pril.quantum_candidates",
    ] {
        assert!(a.contains(key), "{key} missing from {a}");
    }
}

#[test]
fn combined_workload_identical_across_jobs() {
    // Both layers together, mirroring the experiments CLI: parallel module
    // sweeps feeding the same registry as an engine run.
    let trace = WorkloadProfile::all_sysmark().scaled(0.02).generate(9);
    let section = |jobs: usize| {
        deterministic_section(|| {
            let module = filled_module();
            let model = CouplingFailureModel::default();
            let _ = model.evaluate_module_with_jobs(&module, 328.0, jobs);
            let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
            let _ = engine.run(&trace);
        })
    };
    let base = section(1);
    assert_eq!(base, section(2));
    assert_eq!(base, section(8));
}

#[test]
fn disabled_registry_records_nothing() {
    let section = deterministic_section(|| {
        // Installed but never enabled — overwrite the enabled flag.
        telemetry::current().set_enabled(false);
        let module = filled_module();
        let model = CouplingFailureModel::default();
        let _ = model.evaluate_module_with_jobs(&module, 328.0, 2);
    });
    // The empty skeleton: no counters, no histograms, and a time-series
    // ring that never sampled a point.
    assert_eq!(
        section,
        r#"{"counters":{},"histograms":{},"figures":[],"timeseries":{"schema":"memcon-timeseries/v1","capacity":64,"dropped_points":0,"points":[]}}"#
    );
}
