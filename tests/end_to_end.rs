//! Cross-crate integration: the full MEMCON pipeline — workload trace →
//! PRIL → online content tests against a simulated chip → multi-rate
//! refresh — with the real coupling-physics oracle in the loop.

use memcon_suite::dram::geometry::{ChipDensity, DramGeometry};
use memcon_suite::dram::module::DramModule;
use memcon_suite::dram::timing::TimingParams;
use memcon_suite::failure_model::content::ContentProfile;
use memcon_suite::failure_model::model::CouplingFailureModel;
use memcon_suite::failure_model::params::FailureModelParams;
use memcon_suite::memcon::config::MemconConfig;
use memcon_suite::memcon::engine::MemconEngine;
use memcon_suite::memcon::testengine::ContentOracle;
use memcon_suite::memtrace::workload::WorkloadProfile;

fn small_chip(pages: u64) -> (DramModule, CouplingFailureModel) {
    let rows_per_bank = pages.div_ceil(4).next_power_of_two().max(64) as u32;
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 4,
        rows_per_bank,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xFEED);
    // Anchor the failure physics at the LO-REF interval the engine tests at.
    let model = CouplingFailureModel::new(FailureModelParams::calibrated_at(64.0));
    (module, model)
}

#[test]
fn memcon_with_physics_oracle_reduces_refreshes() {
    let trace = WorkloadProfile::netflix().scaled(0.1).generate(42);
    let (module, model) = small_chip(trace.n_pages());
    let oracle = ContentOracle::new(module, model, WorkloadProfileContent::netflix(), 64.0, 7);
    let config = MemconConfig::paper_default();
    let mut engine = MemconEngine::with_oracle(config, trace.n_pages(), Box::new(oracle));
    let report = engine.run(&trace);

    assert!(
        report.refresh_reduction > 0.5,
        "reduction {}",
        report.refresh_reduction
    );
    assert!(report.refresh_reduction < report.upper_bound);
    assert!(report.lo_coverage > 0.7, "coverage {}", report.lo_coverage);
    // Accounting consistency: reduction follows from LO coverage and the
    // 4x interval ratio (testing time is unrefreshed, so reduction can
    // slightly exceed 0.75 x coverage).
    let implied = 0.75 * report.lo_coverage;
    assert!(
        (report.refresh_reduction - implied).abs() < 0.05,
        "reduction {} vs implied {}",
        report.refresh_reduction,
        implied
    );
}

/// A stand-in content profile per workload (program images are orthogonal
/// to write timing; any profile works — this keeps the oracle content
/// deterministic per test).
struct WorkloadProfileContent;
impl WorkloadProfileContent {
    fn netflix() -> ContentProfile {
        ContentProfile {
            zero: 0.4,
            random: 0.4,
            pointer: 0.1,
            small_int: 0.1,
            text: 0.0,
        }
    }
}

#[test]
fn report_arithmetic_is_consistent() {
    let trace = WorkloadProfile::ac_brotherhood().scaled(0.1).generate(1);
    let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
    let r = engine.run(&trace);
    // Shares sum to one.
    let hi_share = 1.0 - r.lo_coverage - r.testing_fraction;
    assert!((0.0..=1.0).contains(&hi_share), "hi share {hi_share}");
    // Ops are consistent with the time integrals: baseline - memcon ops
    // equals reduction x baseline.
    let expect = r.baseline_ops * (1.0 - r.refresh_reduction);
    assert!(
        (r.refresh_ops - expect).abs() / r.baseline_ops < 1e-9,
        "ops {} vs {}",
        r.refresh_ops,
        expect
    );
    // Time = ops x 39 ns.
    assert!((r.refresh_time_ns - r.refresh_ops * 39.0).abs() < 1.0);
    // Test accounting: correct + mispredicted equals completed + aborted.
    let internals = engine.internals();
    assert_eq!(
        r.tests_correct + r.tests_mispredicted,
        internals.tests.completed + internals.tests.aborted,
        "every finished or aborted test must be classified"
    );
}

#[test]
fn quanta_sweep_is_stable_end_to_end() {
    let trace = WorkloadProfile::system_mgt().scaled(0.1).generate(3);
    let mut last = None;
    for quantum in [512.0, 1024.0, 2048.0] {
        let config = MemconConfig::paper_default().with_quantum_ms(quantum);
        let mut engine = MemconEngine::new(config, trace.n_pages());
        let r = engine.run(&trace);
        if let Some(prev) = last {
            let delta: f64 = r.refresh_reduction - prev;
            assert!(
                delta.abs() < 0.08,
                "reduction moved {delta} between quanta (paper: CIL-insensitive)"
            );
        }
        last = Some(r.refresh_reduction);
    }
}
