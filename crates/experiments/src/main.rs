//! `memcon-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! memcon-experiments [--quick] <experiment>|all
//! ```
//!
//! Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11
//! fig12 fig14 fig15 fig16 table3 fig17 fig18 fig19

use experiments::{run_experiment, RunOptions, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        eprintln!(
            "usage: memcon-experiments [--quick] <experiment>... | all\n\
             experiments: {}",
            ALL_EXPERIMENTS.join(" ")
        );
        std::process::exit(2);
    }
    let ids: Vec<&str> = if targets == ["all"] {
        ALL_EXPERIMENTS.to_vec()
    } else {
        targets
    };
    for id in ids {
        match run_experiment(id, &opts) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
}
