//! `memcon-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! memcon-experiments [--quick] [--jobs N] <experiment>|all
//! ```
//!
//! Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11
//! fig12 fig14 fig15 fig16 table3 fig17 fig18 fig19
//!
//! `--jobs N` (or the `MEMCON_JOBS` environment variable) sets the worker
//! count of the parallel sweeps; the rendered output is byte-identical at
//! any value, and `--jobs 1` is the exact sequential path.

use experiments::{run_all, RunOptions, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: memcon-experiments [--quick] [--jobs N] <experiment>... | all\n\
         experiments: {}\n\
         --jobs N     worker threads for the parallel sweeps (default: MEMCON_JOBS\n\
         \x20            or the available parallelism; output is identical at any N)",
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut jobs: Option<usize> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            continue;
        } else if arg == "--jobs" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("error: --jobs expects a number");
                usage();
            };
            jobs = Some(n);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            let Ok(n) = v.parse() else {
                eprintln!("error: --jobs expects a number, got '{v}'");
                usage();
            };
            jobs = Some(n);
        } else if arg.starts_with("--") {
            eprintln!("error: unknown flag '{arg}'");
            usage();
        } else {
            targets.push(arg.as_str());
        }
    }
    memutil::par::set_jobs(jobs);
    let mut opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    opts.jobs = jobs.unwrap_or(0);
    if targets.is_empty() {
        usage();
    }
    let ids: Vec<&str> = if targets == ["all"] {
        ALL_EXPERIMENTS.to_vec()
    } else {
        targets
    };
    for result in run_all(&ids, &opts) {
        match result {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
}
