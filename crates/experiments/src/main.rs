//! `memcon-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! memcon-experiments [--quick] [--jobs N] [--telemetry[=PATH]] <experiment>|all
//! ```
//!
//! Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11
//! fig12 fig14 fig15 fig16 table3 fig17 fig18 fig19
//!
//! `--jobs N` (or the `MEMCON_JOBS` environment variable) sets the worker
//! count of the parallel sweeps; the rendered output is byte-identical at
//! any value, and `--jobs 1` is the exact sequential path.
//!
//! `--telemetry` enables the telemetry registry for the run and writes a
//! JSON report (default `TELEMETRY_report.json`) with per-figure counter
//! attribution; the report's `deterministic` section is byte-identical at
//! any `--jobs` value.
//!
//! `--faults PLAN` installs a `memcon-faultplan/v1` JSON file as the
//! process-global fault plan for the whole run: every engine and
//! controller begins its own deterministic fault session from it, so the
//! rendered output stays byte-identical at any `--jobs` value for a fixed
//! plan file.

use experiments::{run_all, run_all_with_telemetry, RunOptions, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: memcon-experiments [--quick] [--jobs N] [--telemetry[=PATH]] [--faults PLAN] <experiment>... | all\n\
         experiments: {}\n\
         --jobs N     worker threads for the parallel sweeps (default: MEMCON_JOBS\n\
         \x20            or the available parallelism; output is identical at any N)\n\
         --telemetry  collect counters/histograms and write a JSON report\n\
         \x20            (default path: TELEMETRY_report.json)\n\
         --faults     install a memcon-faultplan/v1 JSON file as the run's\n\
         \x20            deterministic fault plan (see `faultinject`)",
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut jobs: Option<usize> = None;
    let mut telemetry_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            continue;
        } else if arg == "--faults" {
            let Some(p) = it.next() else {
                eprintln!("error: --faults expects a plan file path");
                usage();
            };
            faults_path = Some(p.clone());
        } else if let Some(p) = arg.strip_prefix("--faults=") {
            if p.is_empty() {
                eprintln!("error: --faults= expects a path");
                usage();
            }
            faults_path = Some(p.to_string());
        } else if arg == "--jobs" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("error: --jobs expects a number");
                usage();
            };
            jobs = Some(n);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            let Ok(n) = v.parse() else {
                eprintln!("error: --jobs expects a number, got '{v}'");
                usage();
            };
            jobs = Some(n);
        } else if arg == "--telemetry" {
            telemetry_path = Some("TELEMETRY_report.json".to_string());
        } else if let Some(p) = arg.strip_prefix("--telemetry=") {
            if p.is_empty() {
                eprintln!("error: --telemetry= expects a path");
                usage();
            }
            telemetry_path = Some(p.to_string());
        } else if arg.starts_with("--") {
            eprintln!("error: unknown flag '{arg}'");
            usage();
        } else {
            targets.push(arg.as_str());
        }
    }
    memutil::par::set_jobs(jobs);
    // Keep the plan installed for the whole run: each engine/controller
    // begins its own fault session from it (deterministic per consumer).
    let _fault_guard = faults_path.map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read fault plan {path}: {e}");
            std::process::exit(2);
        });
        let plan = faultinject::FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("fault plan installed from {path}");
        faultinject::install(std::sync::Arc::new(plan))
    });
    let mut opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    opts.jobs = jobs.unwrap_or(0);
    if targets.is_empty() {
        usage();
    }
    let ids: Vec<&str> = if targets == ["all"] {
        ALL_EXPERIMENTS.to_vec()
    } else {
        targets
    };
    let results = if telemetry_path.is_some() {
        telemetry::global().set_enabled(true);
        run_all_with_telemetry(&ids, &opts)
    } else {
        run_all(&ids, &opts)
    };
    for result in results {
        match result {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = telemetry_path {
        let report = telemetry::global().report().emit();
        if let Err(e) = std::fs::write(&path, report + "\n") {
            eprintln!("error: cannot write telemetry report to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("telemetry report written to {path}");
    }
}
