//! Regenerates every table and figure of the MEMCON paper's evaluation.
//!
//! One module per experiment; each exposes
//!
//! * `compute(&RunOptions) -> …` — the raw series/rows, and
//! * `render(&RunOptions) -> String` — the same data formatted like the
//!   paper's table/figure, ready for `EXPERIMENTS.md`.
//!
//! The `memcon-experiments` binary dispatches on the experiment id
//! (`fig3`, `fig15`, `table3`, …, or `all`).
//!
//! Absolute numbers are not expected to match the paper (our substrate is a
//! simulator, not the authors' FPGA + testbed); the *shape* — orderings,
//! approximate factors, crossovers — is the reproduction target, and each
//! module's tests pin that shape.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ext;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod table1;
pub mod table2;
pub mod table3;

pub use output::RunOptions;

/// Every experiment id, in paper order (plus the extension experiments).
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12",
    "fig14", "fig15", "fig16", "table3", "fig17", "fig18", "fig19", "ext",
];

/// Runs one experiment by id, returning its rendered output.
///
/// # Errors
///
/// Returns an error message for an unknown id.
pub fn run_experiment(id: &str, opts: &RunOptions) -> Result<String, String> {
    match id {
        "table1" => Ok(table1::render(opts)),
        "table2" => Ok(table2::render(opts)),
        "fig3" => Ok(fig3::render(opts)),
        "fig4" => Ok(fig4::render(opts)),
        "fig5" => Ok(fig5::render(opts)),
        "fig6" => Ok(fig6::render(opts)),
        "fig7" => Ok(fig7::render(opts)),
        "fig8" => Ok(fig8::render(opts)),
        "fig9" => Ok(fig9::render(opts)),
        "fig11" => Ok(fig11::render(opts)),
        "fig12" => Ok(fig12::render(opts)),
        "fig14" => Ok(fig14::render(opts)),
        "fig15" => Ok(fig15::render(opts)),
        "fig16" => Ok(fig16::render(opts)),
        "table3" => Ok(table3::render(opts)),
        "fig17" => Ok(fig17::render(opts)),
        "fig18" => Ok(fig18::render(opts)),
        "fig19" => Ok(fig19::render(opts)),
        "ext" => Ok(ext::render(opts)),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            ALL_EXPERIMENTS.join(", ")
        )),
    }
}

/// Runs several experiments concurrently, returning the rendered outputs in
/// the requested order.
///
/// Independent figures fan out across the [`memutil::par`] pool
/// (`opts.jobs` workers); the pool is non-reentrant, so each figure's inner
/// sweeps run inline inside its worker. The ordered reduction means the
/// concatenated output is byte-identical to running the ids one by one —
/// the `xtask ci` determinism gate diffs exactly that.
#[must_use]
pub fn run_all(ids: &[&str], opts: &RunOptions) -> Vec<Result<String, String>> {
    memutil::par::ordered_map_with(opts.jobs, ids.len(), |i| run_experiment(ids[i], opts))
}

/// Runs experiments one at a time, attributing each one's deterministic
/// counter deltas to its id in the current telemetry registry
/// ([`telemetry::Registry::record_figure`]).
///
/// Figure-level fan-out is serialized so the per-figure attribution is
/// exact; each figure's *inner* sweeps still use the full worker pool, and
/// because every deterministic counter derives from simulation state the
/// recorded deltas are byte-identical at any `--jobs` value.
#[must_use]
pub fn run_all_with_telemetry(ids: &[&str], opts: &RunOptions) -> Vec<Result<String, String>> {
    let registry = telemetry::current();
    ids.iter()
        .map(|id| {
            let before = registry.deterministic_counters();
            let result = run_experiment(id, opts);
            registry.record_figure(id, &before);
            result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(run_experiment("fig99", &RunOptions::quick()).is_err());
    }

    #[test]
    fn run_all_matches_one_by_one() {
        // Byte-identical to sequential dispatch, at any worker count, with
        // errors kept in position.
        let ids = ["table2", "fig99", "fig5", "fig6"];
        let opts = RunOptions::quick();
        let sequential: Vec<Result<String, String>> =
            ids.iter().map(|id| run_experiment(id, &opts)).collect();
        for jobs in [1usize, 4] {
            assert_eq!(sequential, run_all(&ids, &opts.with_jobs(jobs)));
        }
    }

    #[test]
    fn all_ids_resolve() {
        // Only check dispatch on the cheapest experiments; the heavy ones
        // have their own module tests.
        for id in ["table1", "table2", "fig5", "fig6"] {
            assert!(run_experiment(id, &RunOptions::quick()).is_ok());
        }
    }
}
