//! Fig. 11: probability that the remaining interval length exceeds 1024 ms,
//! as a function of the current interval length (the DHR property PRIL
//! exploits).
//!
//! Paper: very low for CIL ≤ 256 ms, roughly 0.5–0.8 at CIL = 512 ms,
//! approaching 1 beyond 16 s.

use memtrace::stats::p_ril_gt_given_cil;
use memtrace::workload::WorkloadProfile;

use crate::output::{f, heading, RunOptions, TextTable};

/// The CIL abscissae shown in the rendered table.
pub const SHOWN_CILS_MS: [f64; 7] = [1.0, 16.0, 128.0, 512.0, 1024.0, 4096.0, 16_384.0];

/// Per-workload conditional probabilities.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// `(workload, [(cil, p)])`.
    pub rows: Vec<(String, Vec<(f64, f64)>)>,
}

impl Fig11 {
    /// Mean probability at a given CIL across workloads.
    #[must_use]
    pub fn mean_at(&self, cil: f64) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|(_, pts)| pts.iter().find(|p| p.0 == cil).map(|p| p.1))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Computes the conditionals over closed intervals for all 12 workloads.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig11 {
    let rows = WorkloadProfile::all()
        .into_iter()
        .map(|w| {
            let trace = crate::output::cached_trace(&w, opts);
            let pts = p_ril_gt_given_cil(&trace.closed_intervals(), 1024.0, &SHOWN_CILS_MS);
            (w.name, pts)
        })
        .collect();
    Fig11 { rows }
}

/// Renders Fig. 11.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Workload".to_string()];
    header.extend(SHOWN_CILS_MS.iter().map(|c| format!("{c:.0}ms")));
    let mut t = TextTable::new(header);
    for (name, pts) in &r.rows {
        let mut row = vec![name.clone()];
        row.extend(pts.iter().map(|p| f(p.1, 2)));
        t.row(row);
    }
    format!(
        "{}{}\nMean P(RIL > 1024 ms) at CIL 512 ms: {:.2} (paper: 0.5-0.8)\n",
        heading("Fig 11", "P(RIL > 1024 ms) as a function of CIL"),
        t.render(),
        r.mean_at(512.0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dhr_shape() {
        let r = compute(&RunOptions::quick());
        assert_eq!(r.rows.len(), 12);
        let small = r.mean_at(1.0);
        let mid = r.mean_at(512.0);
        let large = r.mean_at(16_384.0);
        assert!(small < 0.3, "P at CIL=1 too high: {small}");
        assert!((0.3..1.0).contains(&mid), "P at CIL=512: {mid}");
        assert!(large > mid - 0.1, "P should keep rising: {large} vs {mid}");
    }
}
