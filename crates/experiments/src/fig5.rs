//! Fig. 5: the tradeoff between testing frequency and average cost
//! (conceptual in the paper; quantified here from the cost model).
//!
//! For a row whose writes recur every `W` ms, MEMCON's long-run average cost
//! rate is `(C_test + R·max(W/LO − 1, 0)) / W`; staying at HI-REF costs
//! `R / HI` per ms. Infrequent testing (large `W`) undercuts HI-REF;
//! frequent testing exceeds it — motivating selective testing.

use memcon::cost::{CostModel, TestMode};

use crate::output::{heading, RunOptions, TextTable};

/// One point of the tradeoff curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Write interval in ms (inverse testing frequency).
    pub write_interval_ms: f64,
    /// MEMCON average cost (ns of latency per ms of time).
    pub memcon_rate: f64,
    /// HI-REF average cost for comparison.
    pub hi_rate: f64,
}

/// Computes the curve for the paper's Read-and-Compare configuration.
#[must_use]
pub fn compute(_opts: &RunOptions) -> Vec<TradeoffPoint> {
    let m = CostModel::paper_default();
    let hi_rate = m.refresh_op_ns / m.hi_ms;
    [
        16.0, 64.0, 128.0, 256.0, 448.0, 560.0, 864.0, 1024.0, 4096.0, 32_768.0,
    ]
    .into_iter()
    .map(|w| TradeoffPoint {
        write_interval_ms: w,
        memcon_rate: m.accumulated_memcon_ns(TestMode::ReadAndCompare, w) / w,
        hi_rate,
    })
    .collect()
}

/// Renders Fig. 5.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let pts = compute(opts);
    let mut t = TextTable::new(vec![
        "Write interval",
        "MEMCON avg cost (ns/ms)",
        "HI-REF avg cost (ns/ms)",
        "Cheaper",
    ]);
    for p in &pts {
        t.row(vec![
            format!("{:.0} ms", p.write_interval_ms),
            format!("{:.3}", p.memcon_rate),
            format!("{:.3}", p.hi_rate),
            if p.memcon_rate <= p.hi_rate {
                "MEMCON".to_string()
            } else {
                "HI-REF".to_string()
            },
        ]);
    }
    format!(
        "{}{}",
        heading("Fig 5", "Testing frequency vs average cost tradeoff"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_testing_loses_infrequent_testing_wins() {
        let pts = compute(&RunOptions::quick());
        let first = pts.first().unwrap(); // 16 ms writes
        assert!(
            first.memcon_rate > first.hi_rate,
            "frequent testing must cost more"
        );
        let last = pts.last().unwrap(); // 32 s writes
        assert!(
            last.memcon_rate < last.hi_rate,
            "infrequent testing must win"
        );
    }

    #[test]
    fn crossover_at_min_write_interval() {
        let pts = compute(&RunOptions::quick());
        for p in pts {
            let expect_memcon = p.write_interval_ms >= 560.0;
            assert_eq!(
                p.memcon_rate <= p.hi_rate,
                expect_memcon,
                "at {} ms",
                p.write_interval_ms
            );
        }
    }

    #[test]
    fn memcon_rate_decreases_with_interval() {
        let pts = compute(&RunOptions::quick());
        for w in pts.windows(2) {
            assert!(w[1].memcon_rate <= w[0].memcon_rate + 1e-12);
        }
    }
}
