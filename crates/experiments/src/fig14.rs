//! Fig. 14: MEMCON's reduction in refresh operations (also the data source
//! for Figs. 17 and 18, which share the same engine runs).
//!
//! Paper: with CIL (quantum) 512/1024/2048 ms, MEMCON reduces refreshes by
//! 64.7–74.5 % against the 16 ms baseline — close to the 75 % upper bound —
//! and the result is insensitive to the CIL choice.

use memcon::config::MemconConfig;
use memcon::engine::{MemconEngine, MemconReport};
use memtrace::workload::WorkloadProfile;

use crate::output::{heading, pct, RunOptions, TextTable};

/// The quanta (CILs) evaluated, ms.
pub const QUANTA_MS: [f64; 3] = [512.0, 1024.0, 2048.0];

/// One engine run's outcome.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Workload name.
    pub workload: String,
    /// PRIL quantum used, ms.
    pub quantum_ms: f64,
    /// Full engine report.
    pub report: MemconReport,
}

/// All engine runs for Figs. 14/17/18.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// One run per workload × quantum.
    pub runs: Vec<EngineRun>,
    /// The all-LO upper bound (75 %).
    pub upper_bound: f64,
}

impl Fig14 {
    /// Runs for one quantum.
    #[must_use]
    pub fn at_quantum(&self, quantum_ms: f64) -> Vec<&EngineRun> {
        self.runs
            .iter()
            .filter(|r| r.quantum_ms == quantum_ms)
            .collect()
    }

    /// Mean refresh reduction at a quantum.
    #[must_use]
    pub fn mean_reduction_at(&self, quantum_ms: f64) -> f64 {
        let runs = self.at_quantum(quantum_ms);
        runs.iter().map(|r| r.report.refresh_reduction).sum::<f64>() / runs.len().max(1) as f64
    }
}

/// Runs the engine for all 12 workloads × 3 quanta, memoizing per option
/// set: Figs. 16, 17, and 18 share these runs, and `all` would otherwise
/// repeat the 36 simulations four times.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig14 {
    use std::sync::{Mutex, OnceLock, PoisonError};
    // Memo cache of a pure function of `RunOptions`: whichever thread
    // populates an entry stores the identical value, so the global is
    // deterministic-by-construction. A poisoned lock only means a panicking
    // thread held it mid-read; the Vec is append-only, so recover the guard.
    // memlint: allow(global-mut-state): deterministic memo of a pure function
    static CACHE: OnceLock<Mutex<Vec<(RunOptions, Fig14)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    if let Some((_, hit)) = cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .find(|(o, _)| o == opts)
    {
        return hit.clone();
    }
    let computed = compute_uncached(opts);
    cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push((*opts, computed.clone()));
    computed
}

fn compute_uncached(opts: &RunOptions) -> Fig14 {
    // Workloads fan out across the pool; each worker runs that workload's
    // three quanta in order, and the per-workload run lists are reduced in
    // `WorkloadProfile::all()` order — bit-identical to the sequential loop.
    let workloads = WorkloadProfile::all();
    let runs = memutil::par::ordered_flat_map_with(opts.jobs, workloads.len(), |wi| {
        let w = &workloads[wi];
        let trace = crate::output::cached_trace(w, opts);
        QUANTA_MS
            .iter()
            .map(|&quantum| {
                let config = MemconConfig::paper_default().with_quantum_ms(quantum);
                let mut engine = MemconEngine::new(config, trace.n_pages());
                let report = engine.run(&trace);
                EngineRun {
                    workload: w.name.clone(),
                    quantum_ms: quantum,
                    report,
                }
            })
            .collect()
    });
    Fig14 {
        runs,
        upper_bound: MemconConfig::paper_default()
            .cost_model()
            .upper_bound_reduction(),
    }
}

/// Renders Fig. 14.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Workload".to_string()];
    header.extend(QUANTA_MS.iter().map(|q| format!("CIL {q:.0} ms")));
    let mut t = TextTable::new(header);
    for w in WorkloadProfile::all() {
        let mut row = vec![w.name.clone()];
        for q in QUANTA_MS {
            let cell = r
                .runs
                .iter()
                .find(|x| x.workload == w.name && x.quantum_ms == q)
                .map_or_else(
                    || "n/a".to_string(),
                    |run| pct(run.report.refresh_reduction),
                );
            row.push(cell);
        }
        t.row(row);
    }
    format!(
        "{}{}\nMean reduction at CIL 512/1024/2048: {} / {} / {}\n\
         Upper bound (all rows at LO-REF): {} — paper: 64.7-74.5% vs 75%\n",
        heading("Fig 14", "Reduction in refresh count with MEMCON"),
        t.render(),
        pct(r.mean_reduction_at(512.0)),
        pct(r.mean_reduction_at(1024.0)),
        pct(r.mean_reduction_at(2048.0)),
        pct(r.upper_bound)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_approach_upper_bound_and_are_cil_insensitive() {
        let r = compute(&RunOptions::quick());
        assert_eq!(r.upper_bound, 0.75);
        for q in QUANTA_MS {
            let mean = r.mean_reduction_at(q);
            assert!(
                (0.55..0.75).contains(&mean),
                "mean reduction at CIL {q}: {mean}"
            );
        }
        // Paper: the reduction barely moves across CIL 512-2048.
        let spread = (r.mean_reduction_at(512.0) - r.mean_reduction_at(2048.0)).abs();
        assert!(spread < 0.08, "CIL sensitivity {spread}");
        for run in &r.runs {
            assert!(run.report.refresh_reduction < r.upper_bound);
        }
    }
}
