//! Fig. 19: sensitivity to cache size — halving every write interval.
//!
//! A smaller LLC evicts dirty lines sooner, compressing write intervals.
//! The paper halves all intervals and shows (a) the distribution shifts
//! left only slightly and (b) `P(RIL > 1024 ms | CIL)` barely changes, so
//! MEMCON is insensitive to cache size.

use memtrace::stats::{log2_histogram, p_ril_gt_given_cil};
use memtrace::workload::WorkloadProfile;

use crate::output::{f, heading, RunOptions, TextTable};

/// Full-vs-halved comparison for one workload.
#[derive(Debug, Clone)]
pub struct Fig19 {
    /// Sub-1 ms interval fraction, full and halved.
    pub sub_ms: (f64, f64),
    /// Fraction of intervals ≥ 1024 ms, full and halved.
    pub long: (f64, f64),
    /// `P(RIL > 1024 | CIL)` at CIL ∈ {512, 1024, 2048}, full and halved.
    pub ril: Vec<(f64, f64, f64)>,
}

/// Computes the comparison on ACBrotherhood (the paper's example).
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig19 {
    // Interval conditionals need a decent closed-interval sample.
    let w = WorkloadProfile::ac_brotherhood().scaled(opts.scale.max(0.5));
    let full = w.generate(opts.seed);
    let half = full.halved_intervals();
    let fi = full.closed_intervals();
    let hi = half.closed_intervals();

    let stats = |intervals: &[memtrace::trace::Interval]| {
        let h = log2_histogram(intervals);
        let sub = h[0].fraction;
        let long: f64 = h
            .iter()
            .filter(|b| b.lo_ms >= 1024.0)
            .map(|b| b.fraction)
            .sum();
        (sub, long)
    };
    let (fs, fl) = stats(&fi);
    let (hs, hl) = stats(&hi);
    let cils = [512.0, 1024.0, 2048.0];
    let pf = p_ril_gt_given_cil(&fi, 1024.0, &cils);
    let ph = p_ril_gt_given_cil(&hi, 1024.0, &cils);
    let ril = cils
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, pf[i].1, ph[i].1))
        .collect();
    Fig19 {
        sub_ms: (fs, hs),
        long: (fl, hl),
        ril,
    }
}

/// Renders Fig. 19.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Statistic", "Full intervals", "Halved intervals"]);
    t.row(vec![
        "sub-1ms interval share".to_string(),
        format!("{:.1}%", r.sub_ms.0 * 100.0),
        format!("{:.1}%", r.sub_ms.1 * 100.0),
    ]);
    t.row(vec![
        ">=1024 ms interval share".to_string(),
        format!("{:.3}%", r.long.0 * 100.0),
        format!("{:.3}%", r.long.1 * 100.0),
    ]);
    for (cil, pf, ph) in &r.ril {
        t.row(vec![
            format!("P(RIL>1024) at CIL {cil:.0} ms"),
            f(*pf, 2),
            f(*ph, 2),
        ]);
    }
    format!(
        "{}{}\nConclusion: halving write intervals (smaller cache) barely moves\n\
         the long-interval prediction probabilities — MEMCON is cache-size\n\
         insensitive, as in the paper.\n",
        heading(
            "Fig 19",
            "Sensitivity to halved write intervals (cache size)"
        ),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_shifts_slightly_but_preserves_prediction() {
        let r = compute(&RunOptions::quick());
        // Distribution shifts left: sub-ms share grows (or stays).
        assert!(r.sub_ms.1 >= r.sub_ms.0 - 0.01);
        // Long-interval share shrinks but stays the time-dominant class.
        assert!(r.long.1 <= r.long.0 + 1e-9);
        // P(RIL > 1024 | CIL) changes only modestly at the working points.
        for (cil, pf, ph) in &r.ril {
            assert!(
                (pf - ph).abs() < 0.35,
                "CIL {cil}: full {pf} vs halved {ph}"
            );
        }
    }
}
