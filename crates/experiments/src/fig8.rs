//! Fig. 8: the write-interval tail follows a Pareto distribution.
//!
//! The paper fits `P(len > x) = k·x^(−α)` on the log-log plane for three
//! representative workloads and reports R² of 0.944, 0.937, and 0.986.

use memtrace::stats::{pareto_fit, ParetoFit};

use crate::fig7::representative_workloads;
use crate::output::{f, heading, RunOptions, TextTable};

/// Fits per workload.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// `(workload name, fit)`.
    pub fits: Vec<(String, ParetoFit)>,
}

/// Fits the three representative workloads over `x ∈ [1 ms, 10 s]`.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig8 {
    let fits = representative_workloads()
        .into_iter()
        .filter_map(|w| {
            let trace = crate::output::cached_trace(&w, opts);
            let intervals = trace.closed_intervals();
            // A degenerate trace with no tail mass drops out of the table
            // rather than aborting the whole figure.
            pareto_fit(&intervals, 1.0, 10_000.0).map(|fit| (w.name, fit))
        })
        .collect();
    Fig8 { fits }
}

/// Renders Fig. 8.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Workload", "alpha", "k", "R^2", "points"]);
    for (name, fit) in &r.fits {
        t.row(vec![
            name.clone(),
            f(fit.alpha, 3),
            format!("{:.4}", fit.k),
            f(fit.r2, 4),
            fit.points.to_string(),
        ]);
    }
    format!(
        "{}{}\n(paper R^2: 0.944 / 0.937 / 0.986 — Pareto is a good fit)\n",
        heading("Fig 8", "Pareto fit of write-interval tails"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_are_pareto_like() {
        let r = compute(&RunOptions::quick());
        assert_eq!(r.fits.len(), 3);
        for (name, fit) in &r.fits {
            assert!(fit.r2 > 0.8, "{name}: R^2 {}", fit.r2);
            assert!(
                fit.alpha > 0.2 && fit.alpha < 1.2,
                "{name}: alpha {}",
                fit.alpha
            );
        }
    }
}
