//! Fig. 6: accumulated cost over time and the MinWriteInterval.
//!
//! Reproduces the paper's numbers exactly: Read-and-Compare crosses HI-REF
//! at 560 ms and Copy-and-Compare at 864 ms (LO-REF 64 ms); 480/448 ms at
//! LO-REF 128/256 ms.

use dram::timing::TimingParams;
use memcon::cost::{CostModel, TestMode};

use crate::output::{heading, RunOptions, TextTable};

/// The computed MinWriteIntervals for every mode × LO-REF combination.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(mode, lo_ms, min_write_interval_ms)`.
    pub intervals: Vec<(TestMode, f64, f64)>,
    /// Accumulated-cost series at LO = 64 ms:
    /// `(t_ms, hi_ns, read_compare_ns, copy_compare_ns)`.
    pub series: Vec<(f64, f64, f64, f64)>,
}

/// Computes the figure.
#[must_use]
pub fn compute(_opts: &RunOptions) -> Fig6 {
    let timing = TimingParams::ddr3_1600();
    let mut intervals = Vec::new();
    for lo in [64.0, 128.0, 256.0] {
        let m = CostModel::new(&timing, 128, 16.0, lo);
        for mode in TestMode::ALL {
            intervals.push((mode, lo, m.min_write_interval_ms(mode)));
        }
    }
    let series = CostModel::paper_default().fig6_series(2000.0);
    Fig6 { intervals, series }
}

/// Renders Fig. 6.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Test mode", "LO-REF", "MinWriteInterval"]);
    for (mode, lo, mwi) in &r.intervals {
        t.row(vec![
            mode.to_string(),
            format!("{lo:.0} ms"),
            format!("{mwi:.0} ms"),
        ]);
    }
    let mut s = TextTable::new(vec![
        "t (ms)",
        "HI-REF (ns)",
        "Read&Compare (ns)",
        "Copy&Compare (ns)",
    ]);
    for (t_ms, hi, rc, cc) in r.series.iter().step_by(8) {
        s.row(vec![
            format!("{t_ms:.0}"),
            format!("{hi:.0}"),
            format!("{rc:.0}"),
            format!("{cc:.0}"),
        ]);
    }
    format!(
        "{}{}\nAccumulated cost (every 128 ms shown):\n{}",
        heading("Fig 6", "Determining MinWriteInterval"),
        t.render(),
        s.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_exact() {
        let r = compute(&RunOptions::quick());
        let get = |mode: TestMode, lo: f64| {
            r.intervals
                .iter()
                .find(|(m, l, _)| *m == mode && *l == lo)
                .unwrap()
                .2
        };
        assert_eq!(get(TestMode::ReadAndCompare, 64.0), 560.0);
        assert_eq!(get(TestMode::CopyAndCompare, 64.0), 864.0);
        assert_eq!(get(TestMode::ReadAndCompare, 128.0), 480.0);
        assert_eq!(get(TestMode::ReadAndCompare, 256.0), 448.0);
    }

    #[test]
    fn band_is_448_to_864() {
        let r = compute(&RunOptions::quick());
        let min = r
            .intervals
            .iter()
            .map(|i| i.2)
            .fold(f64::INFINITY, f64::min);
        let max = r.intervals.iter().map(|i| i.2).fold(0.0, f64::max);
        assert_eq!((min, max), (448.0, 864.0));
    }

    #[test]
    fn series_crosses() {
        let r = compute(&RunOptions::quick());
        let at = |t: f64| r.series.iter().find(|p| p.0 == t).unwrap();
        // Before 560 ms, HI is cheaper than Read&Compare; after, costlier.
        assert!(at(544.0).1 < at(544.0).2);
        assert!(at(560.0).1 > at(560.0).2);
        assert!(at(848.0).1 < at(848.0).3);
        assert!(at(864.0).1 > at(864.0).3);
    }
}
