//! Table 3: performance loss due to the extra accesses of online testing.
//!
//! Paper: 0.54 / 1.03 / 1.88 % on a single core and 0.05 / 0.09 / 0.48 % on
//! four cores for 256 / 512 / 1024 concurrent tests per 64 ms window —
//! testing overhead is negligible.

use dram::geometry::ChipDensity;
use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::system::System;
use memsim::testinject::TestInjectConfig;
use memtrace::cpu::random_mixes;

use crate::output::{heading, RunOptions, TextTable};

/// Concurrent-test operating points.
pub const TEST_COUNTS: [u32; 3] = [256, 512, 1024];

/// Mean slowdown per (cores, concurrent tests).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(cores, tests, mean slowdown)`.
    pub points: Vec<(usize, u32, f64)>,
}

impl Table3 {
    /// Looks up a slowdown.
    #[must_use]
    pub fn slowdown(&self, cores: usize, tests: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.0 == cores && p.1 == tests)
            .map(|p| p.2)
    }
}

/// Runs the sweep: MEMCON-rate refresh with and without injected tests.
///
/// Two parallel stages on the [`memutil::par`] pool: the per-core-count
/// no-test baselines first, then the six `(cores, tests)` cells against
/// them. Both reductions are ordered, so the table is bit-identical to the
/// sequential nested loop at any worker count.
#[must_use]
pub fn compute(opts: &RunOptions) -> Table3 {
    const CORES: [usize; 2] = [1, 4];
    let policy = RefreshPolicy::Reduced {
        baseline_interval_ms: 16.0,
        reduction: 0.70,
    };
    let mixes = random_mixes(opts.mixes, 4, opts.seed);
    let ideals: Vec<Vec<u64>> = memutil::par::ordered_map_with(opts.jobs, CORES.len(), |ci| {
        let cores = CORES[ci];
        mixes
            .iter()
            .enumerate()
            .map(|(i, mix)| {
                let config = SystemConfig::new(cores, ChipDensity::Gb8, policy);
                let stats = System::new(config, mix[..cores].to_vec(), opts.seed ^ i as u64)
                    .run(opts.instructions);
                stats.per_core_cycles.iter().sum()
            })
            .collect()
    });
    let cells = CORES.len() * TEST_COUNTS.len();
    let points = memutil::par::ordered_map_with(opts.jobs, cells, |cell| {
        let (ci, ti) = (cell / TEST_COUNTS.len(), cell % TEST_COUNTS.len());
        let (cores, tests) = (CORES[ci], TEST_COUNTS[ti]);
        let mut slowdowns = Vec::new();
        for (i, mix) in mixes.iter().enumerate() {
            let config = SystemConfig::new(cores, ChipDensity::Gb8, policy);
            let stats = System::new(config, mix[..cores].to_vec(), opts.seed ^ i as u64)
                .with_test_injection(TestInjectConfig::read_and_compare(tests))
                .run(opts.instructions);
            let cycles: u64 = stats.per_core_cycles.iter().sum();
            slowdowns.push(cycles as f64 / ideals[ci][i] as f64 - 1.0);
        }
        (
            cores,
            tests,
            slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
        )
    });
    Table3 { points }
}

/// Renders Table 3.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Cores".to_string()];
    header.extend(TEST_COUNTS.iter().map(|t| format!("{t} tests")));
    let mut t = TextTable::new(header);
    for cores in [1usize, 4] {
        let mut row = vec![format!("{cores}-core")];
        for tests in TEST_COUNTS {
            row.push(format!("{:.2}%", r.slowdown(cores, tests).unwrap() * 100.0));
        }
        t.row(row);
    }
    format!(
        "{}{}\n(paper: 0.54/1.03/1.88% single-core, 0.05/0.09/0.48% four-core)\n",
        heading("Table 3", "Performance loss due to testing accesses"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_and_grows_with_test_count() {
        let r = compute(&RunOptions::quick());
        for cores in [1usize, 4] {
            let s256 = r.slowdown(cores, 256).unwrap();
            let s1024 = r.slowdown(cores, 1024).unwrap();
            assert!(s256 > -0.01, "{cores}-core 256: {s256}");
            assert!(s256 < 0.05, "{cores}-core 256 overhead too big: {s256}");
            assert!(s1024 < 0.10, "{cores}-core 1024 overhead too big: {s1024}");
            assert!(
                s1024 >= s256 - 0.005,
                "{cores}-core: overhead should grow with tests ({s256} -> {s1024})"
            );
        }
    }
}
