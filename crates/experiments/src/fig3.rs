//! Fig. 3: DRAM cells fail conditionally on data content.
//!
//! The paper tests one chip with ~100 data patterns and plots, for every
//! failing cell, which patterns made it fail: cells fail under *subsets* of
//! patterns, not all of them — the experimental basis for content-based
//! mitigation. We run the same suite through the simulated chip tester.

use std::collections::BTreeMap;

use dram::module::DramModule;
use dram::timing::TimingParams;
use failure_model::params::FailureModelParams;
use failure_model::patterns::TestPattern;
use failure_model::tester::ChipTester;

use crate::output::{f, heading, RunOptions, TextTable};

/// Result of the pattern sweep.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Patterns tested.
    pub patterns: usize,
    /// `(pattern index, failing cell id)` dots of the scatter.
    pub dots: Vec<(usize, usize)>,
    /// Distinct failing cells observed.
    pub distinct_cells: usize,
    /// Per-cell number of patterns it failed under.
    pub patterns_per_cell: Vec<usize>,
}

impl Fig3 {
    /// Mean number of patterns a failing cell fails under.
    #[must_use]
    pub fn mean_patterns_per_cell(&self) -> f64 {
        if self.patterns_per_cell.is_empty() {
            return 0.0;
        }
        self.patterns_per_cell.iter().sum::<usize>() as f64 / self.patterns_per_cell.len() as f64
    }

    /// Fraction of failing cells that fail under *every* pattern
    /// (data-independent weak cells).
    #[must_use]
    pub fn always_failing_fraction(&self) -> f64 {
        if self.patterns_per_cell.is_empty() {
            return 0.0;
        }
        let always = self
            .patterns_per_cell
            .iter()
            .filter(|&&n| n == self.patterns)
            .count();
        always as f64 / self.patterns_per_cell.len() as f64
    }
}

/// Runs the 100-pattern sweep at the paper's 328 ms-equivalent interval.
///
/// The per-pattern fill → idle → read-back runs fan out across the
/// [`memutil::par`] pool (via [`ChipTester::run_suite`]); cell ids are
/// assigned from the in-order reports, so the scatter is bit-identical to
/// the sequential sweep at any worker count.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig3 {
    let module = DramModule::new(
        crate::output::chip_test_geometry(opts),
        TimingParams::ddr3_1600(),
        opts.seed,
    );
    let mut tester = ChipTester::new(module, FailureModelParams::calibrated()).with_jobs(opts.jobs);
    let patterns = TestPattern::suite(92);
    let reports = tester.run_suite(&patterns, 328.0);
    let g = *tester.module().geometry();
    let mut cell_ids: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut dots = Vec::new();
    for (pi, (_, report)) in reports.iter().enumerate() {
        for (row, bits) in &report.failing_rows {
            let row_id = row.to_row_id(&g);
            for &bit in bits {
                let next = cell_ids.len();
                let id = *cell_ids.entry((row_id, bit)).or_insert(next);
                dots.push((pi, id));
            }
        }
    }
    let mut per_cell = vec![0usize; cell_ids.len()];
    for &(_, cell) in &dots {
        per_cell[cell] += 1;
    }
    Fig3 {
        patterns: patterns.len(),
        dots,
        distinct_cells: cell_ids.len(),
        patterns_per_cell: per_cell,
    }
}

/// Renders the Fig. 3 summary.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Statistic", "Value"]);
    t.row(vec!["patterns tested".to_string(), r.patterns.to_string()]);
    t.row(vec![
        "distinct failing cells".to_string(),
        r.distinct_cells.to_string(),
    ]);
    t.row(vec![
        "scatter dots (pattern x cell)".to_string(),
        r.dots.len().to_string(),
    ]);
    t.row(vec![
        "mean patterns per failing cell".to_string(),
        f(r.mean_patterns_per_cell(), 1),
    ]);
    t.row(vec![
        "cells failing under every pattern".to_string(),
        format!("{:.1}%", r.always_failing_fraction() * 100.0),
    ]);
    format!(
        "{}{}\nInterpretation: each failing cell fails under a strict subset of\n\
         patterns (mean {:.1} of {}), i.e. failures are data-dependent.\n",
        heading("Fig 3", "Cells failing with different data content"),
        t.render(),
        r.mean_patterns_per_cell(),
        r.patterns
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_fail_conditionally() {
        let r = compute(&RunOptions::quick());
        assert!(r.distinct_cells > 10, "too few failing cells to analyze");
        // The headline property: cells do NOT fail under every pattern.
        assert!(
            r.mean_patterns_per_cell() < 0.9 * r.patterns as f64,
            "mean {} of {} patterns — failures look data-independent",
            r.mean_patterns_per_cell(),
            r.patterns
        );
        // But they fail under more than one pattern on average (coupling is
        // excitable by many contents).
        assert!(r.mean_patterns_per_cell() > 1.0);
        // Weak (always-failing) cells are the small minority.
        assert!(r.always_failing_fraction() < 0.3);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = compute(&RunOptions::quick());
        let b = compute(&RunOptions::quick());
        assert_eq!(a.dots, b.dots);
    }
}
