//! Table 2: the evaluated system configuration.

use dram::geometry::ChipDensity;
use memsim::config::SystemConfig;

use crate::output::{heading, RunOptions, TextTable};

/// Renders Table 2 from the live configuration types (so it cannot drift
/// from what the simulator actually uses).
#[must_use]
pub fn render(_opts: &RunOptions) -> String {
    let c = SystemConfig::single_core_baseline();
    let mut t = TextTable::new(vec!["Component", "Configuration"]);
    t.row(vec![
        "Processor".to_string(),
        format!(
            "1-4 cores, {} GHz, {}-wide, {}-entry instruction window",
            c.cpu_ghz, c.width, c.window
        ),
    ]);
    t.row(vec![
        "Main memory".to_string(),
        format!(
            "{} GB DIMM, DDR3-1600 ({} ns cycle time)",
            c.geometry.capacity_bytes() / (1 << 30),
            c.timing.tck_ns
        ),
    ]);
    t.row(vec![
        "Baseline tREFI/tRFC".to_string(),
        format!(
            "{:.2} us / {} ns",
            c.refresh.trefi_cycles(&c.timing).unwrap() as f64 * c.timing.tck_ns / 1000.0,
            c.timing.trfc_ns
        ),
    ]);
    t.row(vec![
        "MEMCON tREFI".to_string(),
        "LO-REF 7.8 us, HI-REF 1.95 us".to_string(),
    ]);
    t.row(vec![
        "tRFC by density".to_string(),
        ChipDensity::ALL
            .iter()
            .map(|d| format!("{}: {} ns", d, d.trfc_ns()))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    format!(
        "{}{}",
        heading("Table 2", "Evaluated system configuration"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shows_key_parameters() {
        let s = render(&RunOptions::quick());
        assert!(s.contains("4 GHz"));
        assert!(s.contains("128-entry"));
        assert!(s.contains("350 ns"));
        assert!(s.contains("890 ns"));
        assert!(s.contains("1.95"));
    }
}
