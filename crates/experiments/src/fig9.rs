//! Fig. 9: execution time is dominated by long write intervals.
//!
//! The paper reports that intervals of at least 1024 ms account for 89.5 %
//! of all write-interval time on average across the 12 workloads.

use memtrace::stats::time_fraction_ge_ms;
use memtrace::workload::WorkloadProfile;

use crate::output::{heading, pct, RunOptions, TextTable};

/// Per-workload long-interval time fractions.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// `(workload, fraction of interval time in >=1024 ms intervals)`.
    pub rows: Vec<(String, f64)>,
}

impl Fig9 {
    /// Mean across workloads.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.rows.iter().map(|r| r.1).sum::<f64>() / self.rows.len().max(1) as f64
    }
}

/// Computes the fractions over closed intervals.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig9 {
    let rows = WorkloadProfile::all()
        .into_iter()
        .map(|w| {
            let trace = crate::output::cached_trace(&w, opts);
            let frac = time_fraction_ge_ms(&trace.closed_intervals(), 1024.0);
            (w.name, frac)
        })
        .collect();
    Fig9 { rows }
}

/// Renders Fig. 9.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Workload", ">=1024 ms share", "<1024 ms share"]);
    for (name, frac) in &r.rows {
        t.row(vec![name.clone(), pct(*frac), pct(1.0 - *frac)]);
    }
    format!(
        "{}{}\nAverage: {} of write-interval time in long intervals (paper: 89.5%)\n",
        heading(
            "Fig 9",
            "Execution time is dominated by long write intervals"
        ),
        t.render(),
        pct(r.mean())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_intervals_dominate_everywhere() {
        let r = compute(&RunOptions::quick());
        assert_eq!(r.rows.len(), 12);
        for (name, frac) in &r.rows {
            assert!(*frac > 0.6, "{name}: long share {frac}");
        }
        let mean = r.mean();
        assert!((0.75..=1.0).contains(&mean), "mean {mean} (paper 89.5%)");
    }
}
