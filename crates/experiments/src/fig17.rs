//! Fig. 17: execution-time coverage of PRIL — the fraction of page-time
//! spent at LO-REF. Paper: ~95 % on average, insensitive to CIL.

use crate::fig14::{self, Fig14, QUANTA_MS};
use crate::output::{heading, pct, RunOptions, TextTable};

/// Same engine runs as Fig. 14 (shared computation).
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig14 {
    fig14::compute(opts)
}

/// Mean LO-REF coverage at a quantum.
#[must_use]
pub fn mean_coverage_at(r: &Fig14, quantum_ms: f64) -> f64 {
    let runs = r.at_quantum(quantum_ms);
    runs.iter().map(|x| x.report.lo_coverage).sum::<f64>() / runs.len().max(1) as f64
}

/// Renders Fig. 17.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Workload".to_string()];
    header.extend(QUANTA_MS.iter().map(|q| format!("CIL {q:.0} ms")));
    let mut t = TextTable::new(header);
    let mut workloads: Vec<String> = r.runs.iter().map(|x| x.workload.clone()).collect();
    workloads.dedup();
    for w in workloads {
        let mut row = vec![w.clone()];
        for q in QUANTA_MS {
            let cell = r
                .runs
                .iter()
                .find(|x| x.workload == w && x.quantum_ms == q)
                .map_or_else(|| "n/a".to_string(), |run| pct(run.report.lo_coverage));
            row.push(cell);
        }
        t.row(row);
    }
    format!(
        "{}{}\nMean LO-REF coverage at CIL 512/1024/2048: {} / {} / {} (paper: ~95%)\n",
        heading(
            "Fig 17",
            "Execution-time coverage of PRIL (LO-REF residency)"
        ),
        t.render(),
        pct(mean_coverage_at(&r, 512.0)),
        pct(mean_coverage_at(&r, 1024.0)),
        pct(mean_coverage_at(&r, 2048.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_high() {
        let r = compute(&RunOptions::quick());
        for q in QUANTA_MS {
            let mean = mean_coverage_at(&r, q);
            assert!((0.75..1.0).contains(&mean), "coverage at CIL {q}: {mean}");
        }
    }
}
