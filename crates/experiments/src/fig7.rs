//! Fig. 7: distribution of write intervals in three representative
//! workloads (ACBrotherhood, Netflix, SystemMgt).
//!
//! Paper observations to reproduce: more than 95 % of writes recur within
//! 1 ms, and only a tiny fraction (< 0.43 % on average) of intervals are
//! "long" (≥ 1024 ms).

use memtrace::stats::{log2_histogram, HistogramBucket};
use memtrace::workload::WorkloadProfile;

use crate::output::{heading, RunOptions, TextTable};

/// The three representative workloads of Figs. 7 and 8.
#[must_use]
pub fn representative_workloads() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile::ac_brotherhood(),
        WorkloadProfile::netflix(),
        WorkloadProfile::system_mgt(),
    ]
}

/// Histogram per workload.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(workload name, buckets, sub-ms fraction, long fraction)`.
    pub rows: Vec<(String, Vec<HistogramBucket>, f64, f64)>,
}

/// Computes the histograms over closed intervals.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig7 {
    let rows = representative_workloads()
        .into_iter()
        .map(|w| {
            let trace = crate::output::cached_trace(&w, opts);
            let intervals = trace.closed_intervals();
            let hist = log2_histogram(&intervals);
            let sub_ms = hist[0].fraction;
            let long: f64 = hist
                .iter()
                .filter(|b| b.lo_ms >= 1024.0)
                .map(|b| b.fraction)
                .sum();
            (w.name, hist, sub_ms, long)
        })
        .collect();
    Fig7 { rows }
}

/// Renders Fig. 7.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut out = heading("Fig 7", "Distribution of write intervals (3 workloads)");
    for (name, hist, sub_ms, long) in &r.rows {
        let mut t = TextTable::new(vec!["Interval", "% of writes"]);
        for b in hist {
            if b.fraction == 0.0 {
                continue;
            }
            let label = if b.lo_ms == 0.0 {
                "< 1 ms".to_string()
            } else if b.hi_ms.is_infinite() {
                ">= 32768 ms".to_string()
            } else {
                format!("[{:.0}, {:.0}) ms", b.lo_ms, b.hi_ms)
            };
            t.row(vec![label, format!("{:.4}%", b.fraction * 100.0)]);
        }
        out.push_str(&format!(
            "\n{name}: sub-1ms {:.1}%, >=1024 ms {:.3}%\n{}",
            sub_ms * 100.0,
            long * 100.0,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_dominance_and_rare_long_intervals() {
        let r = compute(&RunOptions::quick());
        assert_eq!(r.rows.len(), 3);
        for (name, hist, sub_ms, long) in &r.rows {
            // Paper: >95% within 1 ms (we tolerate a point below).
            assert!(*sub_ms > 0.93, "{name}: sub-ms fraction {sub_ms}");
            // Paper: <0.43% of writes in long intervals on average.
            assert!(*long < 0.02, "{name}: long fraction {long}");
            let total: f64 = hist.iter().map(|b| b.fraction).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
