//! Extension experiments beyond the paper's figures: the quantified versions
//! of claims the paper makes in prose or leaves to future work.
//!
//! * **Energy** — the abstract claims refresh reduction "improves energy
//!   efficiency"; we quantify DRAM energy per density and refresh policy.
//! * **RowClone Copy-and-Compare** (footnote 6) — in-DRAM copy shrinks the
//!   Copy-and-Compare cost and its MinWriteInterval.
//! * **Storage overhead** (Section 6.4) — PRIL SRAM and staging-region
//!   arithmetic for real module sizes.
//! * **Fault overhead** — MEMCON's refresh+test overhead as injected fault
//!   rates rise: aborts, torn reads, and ECC errors trigger the
//!   abort/retry backoff and the fail-safe high-refresh degradation, so
//!   overhead grows and LO-REF coverage shrinks with the fault rate.
//! * **Fleet scaling** — the paper's economic argument is per-module; the
//!   operator-level case multiplies across a rack. We sweep fleet sizes
//!   and roll up the aggregate refresh-operation savings.

use std::sync::Arc;

use dram::geometry::{ChipDensity, DramGeometry};
use faultinject::{FaultPlan, Site, SiteSpec};
use memcon::config::MemconConfig;
use memcon::cost::{CostModel, TestMode};
use memcon::engine::{MemconEngine, MemconReport, RecoveryStats};
use memcon::overhead::storage_overhead;
use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::energy::EnergyReport;
use memsim::system::System;
use memtrace::cpu::spec_tpc_pool;
use memtrace::workload::WorkloadProfile;

use crate::output::{heading, pct, RunOptions, TextTable};

/// Energy per (density, policy): total and refresh share.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Chip density.
    pub density: ChipDensity,
    /// Policy label.
    pub policy: &'static str,
    /// Energy breakdown.
    pub report: EnergyReport,
}

/// Runs the energy sweep on a memory-intensive single-core workload.
#[must_use]
pub fn compute_energy(opts: &RunOptions) -> Vec<EnergyRow> {
    let mut rows = Vec::new();
    for density in ChipDensity::ALL {
        for (policy, label) in [
            (RefreshPolicy::baseline_16ms(), "16 ms baseline"),
            (
                RefreshPolicy::Reduced {
                    baseline_interval_ms: 16.0,
                    reduction: 0.70,
                },
                "MEMCON (70% red)",
            ),
        ] {
            let config = SystemConfig::new(1, density, policy);
            let mut sys = System::new(config.clone(), vec![spec_tpc_pool()[0]], opts.seed);
            let stats = sys.run(opts.instructions);
            rows.push(EnergyRow {
                density,
                policy: label,
                report: EnergyReport::from_stats(&stats.ctrl, stats.total_cycles, &config.timing),
            });
        }
    }
    rows
}

/// Injected fault rates swept by the fault-overhead experiment.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

/// One point of the overhead-vs-fault-rate curve.
#[derive(Debug, Clone)]
pub struct FaultOverheadRow {
    /// Per-site injection rate of this run's plan (0 = no plan).
    pub rate: f64,
    /// The engine's report at that rate.
    pub report: MemconReport,
    /// Recovery accounting at that rate.
    pub recovery: RecoveryStats,
}

/// Sweeps the netflix trace through MEMCON at rising fault rates.
///
/// Each engine owns its plan explicitly ([`MemconEngine::set_fault_plan`]
/// rather than the process-global installer), so the sweep stays
/// bit-reproducible under figure-level fan-out. Rate 0 runs with no plan
/// at all — the organic baseline row.
#[must_use]
pub fn compute_fault_overhead(opts: &RunOptions) -> Vec<FaultOverheadRow> {
    let trace = crate::output::cached_trace(&WorkloadProfile::netflix(), opts);
    FAULT_RATES
        .iter()
        .map(|&rate| {
            let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
            if rate > 0.0 {
                // The sites that exercise the recovery machinery: aborts,
                // torn read-backs, and ECC errors (uncorrectables kept an
                // order of magnitude rarer, as in real modules).
                let plan = FaultPlan::new(0x0EC7)
                    .with_site(Site::TestPreempt, SiteSpec::rate(rate))
                    .with_site(Site::TornRead, SiteSpec::rate(rate))
                    .with_site(Site::EccCorrectable, SiteSpec::rate(rate))
                    .with_site(Site::EccUncorrectable, SiteSpec::rate(rate / 10.0));
                engine.set_fault_plan(Some(Arc::new(plan)));
            }
            let report = engine.run(&trace);
            FaultOverheadRow {
                rate,
                report,
                recovery: *engine.recovery_stats(),
            }
        })
        .collect()
}

/// Fleet sizes swept by the fleet-scaling experiment.
pub const FLEET_SIZES: [u64; 3] = [4, 16, 64];

/// One point of the savings-vs-fleet-size curve.
#[derive(Debug, Clone)]
pub struct FleetScalingRow {
    /// Shards in the fleet.
    pub nodes: u64,
    /// The fleet roll-up at that size.
    pub report: fleet::FleetReport,
}

/// Sweeps [`FLEET_SIZES`] through the sharded fleet scheduler. Every row
/// is a pure function of `(opts.seed, nodes)` — `opts.jobs` only
/// schedules — so the rendered table is bit-identical at any `--jobs`.
#[must_use]
pub fn compute_fleet_scaling(opts: &RunOptions) -> Vec<FleetScalingRow> {
    FLEET_SIZES
        .iter()
        .map(|&nodes| {
            let config = fleet::FleetConfig::small(nodes, opts.seed);
            let report = fleet::engine::run_fleet(&config, opts.jobs);
            FleetScalingRow { nodes, report }
        })
        .collect()
}

/// Renders all extension experiments.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let mut out = heading("Ext", "Extension experiments (energy, RowClone, storage)");

    // Energy.
    let mut t = TextTable::new(vec![
        "Density",
        "Policy",
        "Total (uJ)",
        "Refresh (uJ)",
        "Refresh share",
    ]);
    let energy = compute_energy(opts);
    for r in &energy {
        t.row(vec![
            r.density.to_string(),
            r.policy.to_string(),
            format!("{:.1}", r.report.total_nj() / 1000.0),
            format!("{:.1}", r.report.refresh_nj / 1000.0),
            pct(r.report.refresh_share()),
        ]);
    }
    out.push_str("\nDRAM energy (mcf, single core):\n");
    out.push_str(&t.render());

    // RowClone.
    let m = CostModel::paper_default();
    let mut t = TextTable::new(vec![
        "Copy-and-Compare variant",
        "Test cost",
        "MinWriteInterval",
    ]);
    t.row(vec![
        "through controller (paper)".to_string(),
        format!("{:.0} ns", m.test_cost_ns(TestMode::CopyAndCompare)),
        format!(
            "{:.0} ms",
            m.min_write_interval_ms(TestMode::CopyAndCompare)
        ),
    ]);
    t.row(vec![
        "in-DRAM copy (RowClone, footnote 6)".to_string(),
        format!("{:.0} ns", m.copy_and_compare_rowclone_ns()),
        format!("{:.0} ms", m.min_write_interval_rowclone_ms()),
    ]);
    out.push_str("\nRowClone-accelerated Copy-and-Compare:\n");
    out.push_str(&t.render());

    // Storage overhead.
    let mut t = TextTable::new(vec![
        "Memory",
        "Pages",
        "Write-map",
        "Write-buffer",
        "Staging",
    ]);
    for gb in [2u64, 8, 32] {
        let config = MemconConfig::paper_default().with_test_mode(TestMode::CopyAndCompare);
        let o = storage_overhead(&config, &DramGeometry::module_2gb(), gb << 30, 8192);
        t.row(vec![
            format!("{gb} GB"),
            o.pages.to_string(),
            format!("{} KB", o.write_map_bytes / 1024),
            format!("{:.1} KB", o.write_buffer_bytes as f64 / 1024.0),
            format!("{:.2}%", o.staging_fraction * 100.0),
        ]);
    }
    out.push_str("\nPRIL storage overhead (Section 6.4 arithmetic):\n");
    out.push_str(&t.render());

    // Fault overhead.
    let mut t = TextTable::new(vec![
        "Fault rate",
        "Norm. overhead",
        "LO-REF coverage",
        "Faults",
        "Retries",
        "Degraded rows",
    ]);
    for r in &compute_fault_overhead(opts) {
        t.row(vec![
            format!("{:.2}", r.rate),
            format!("{:.4}", r.report.normalized_refresh_and_test_time()),
            pct(r.report.lo_coverage),
            r.recovery.faults_injected.iter().sum::<u64>().to_string(),
            r.recovery.retries.to_string(),
            r.recovery.degraded_rows.to_string(),
        ]);
    }
    out.push_str("\nMEMCON overhead vs injected fault rate (netflix):\n");
    out.push_str(&t.render());

    // Fleet scaling.
    let mut t = TextTable::new(vec![
        "Fleet size",
        "Refresh ops",
        "Baseline ops",
        "Ops saved",
        "Reduction",
        "LO-REF coverage",
        "Failing tests",
    ]);
    for r in &compute_fleet_scaling(opts) {
        t.row(vec![
            r.nodes.to_string(),
            format!("{:.0}", r.report.refresh_ops),
            format!("{:.0}", r.report.baseline_ops),
            format!("{:.0}", r.report.baseline_ops - r.report.refresh_ops),
            pct(r.report.refresh_reduction),
            pct(r.report.lo_coverage),
            r.report.failing_tests.to_string(),
        ]);
    }
    out.push_str("\nAggregate refresh savings vs fleet size (Table-1 mix per node):\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcon_saves_energy_at_every_density() {
        let rows = compute_energy(&RunOptions::quick());
        for density in ChipDensity::ALL {
            let base = rows
                .iter()
                .find(|r| r.density == density && r.policy.contains("baseline"))
                .unwrap();
            let memcon = rows
                .iter()
                .find(|r| r.density == density && r.policy.contains("MEMCON"))
                .unwrap();
            assert!(
                memcon.report.total_nj() < base.report.total_nj(),
                "{density}: MEMCON {} >= baseline {}",
                memcon.report.total_nj(),
                base.report.total_nj()
            );
            assert!(memcon.report.refresh_nj < 0.5 * base.report.refresh_nj);
        }
    }

    #[test]
    fn render_contains_all_five_sections() {
        let s = render(&RunOptions::quick());
        assert!(s.contains("DRAM energy"));
        assert!(s.contains("RowClone"));
        assert!(s.contains("storage overhead"));
        assert!(s.contains("fault rate"));
        assert!(s.contains("fleet size"));
    }

    #[test]
    fn faults_degrade_coverage_and_raise_overhead() {
        let rows = compute_fault_overhead(&RunOptions::quick());
        assert_eq!(rows.len(), FAULT_RATES.len());
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert_eq!(first.recovery.faults_injected.iter().sum::<u64>(), 0);
        assert!(last.recovery.faults_injected.iter().sum::<u64>() > 0);
        assert!(last.recovery.degraded_rows > 0, "no row was ever pinned");
        // More faults mean more retry/pin work and less LO-REF residency.
        assert!(
            last.report.lo_coverage < first.report.lo_coverage,
            "coverage {} !< {}",
            last.report.lo_coverage,
            first.report.lo_coverage
        );
        assert!(
            last.report.normalized_refresh_and_test_time()
                >= first.report.normalized_refresh_and_test_time(),
            "overhead did not grow with the fault rate"
        );
        // Nothing must ever escape, at any rate.
        for r in &rows {
            assert_eq!(r.recovery.uncorrectable_escapes, 0);
        }
    }

    #[test]
    fn fleet_savings_grow_with_fleet_size() {
        let rows = compute_fleet_scaling(&RunOptions::quick());
        assert_eq!(rows.len(), FLEET_SIZES.len());
        let saved = |r: &FleetScalingRow| r.report.baseline_ops - r.report.refresh_ops;
        for pair in rows.windows(2) {
            assert!(
                saved(&pair[1]) > saved(&pair[0]),
                "aggregate savings must grow with fleet size ({} vs {} nodes)",
                pair[1].nodes,
                pair[0].nodes
            );
        }
        for r in &rows {
            assert!(r.report.refresh_reduction > 0.3, "{} nodes", r.nodes);
            assert_eq!(r.report.uncorrectable_escapes, 0);
        }
    }
}
