//! Extension experiments beyond the paper's figures: the quantified versions
//! of claims the paper makes in prose or leaves to future work.
//!
//! * **Energy** — the abstract claims refresh reduction "improves energy
//!   efficiency"; we quantify DRAM energy per density and refresh policy.
//! * **RowClone Copy-and-Compare** (footnote 6) — in-DRAM copy shrinks the
//!   Copy-and-Compare cost and its MinWriteInterval.
//! * **Storage overhead** (Section 6.4) — PRIL SRAM and staging-region
//!   arithmetic for real module sizes.

use dram::geometry::{ChipDensity, DramGeometry};
use memcon::config::MemconConfig;
use memcon::cost::{CostModel, TestMode};
use memcon::overhead::storage_overhead;
use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::energy::EnergyReport;
use memsim::system::System;
use memtrace::cpu::spec_tpc_pool;

use crate::output::{heading, pct, RunOptions, TextTable};

/// Energy per (density, policy): total and refresh share.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Chip density.
    pub density: ChipDensity,
    /// Policy label.
    pub policy: &'static str,
    /// Energy breakdown.
    pub report: EnergyReport,
}

/// Runs the energy sweep on a memory-intensive single-core workload.
#[must_use]
pub fn compute_energy(opts: &RunOptions) -> Vec<EnergyRow> {
    let mut rows = Vec::new();
    for density in ChipDensity::ALL {
        for (policy, label) in [
            (RefreshPolicy::baseline_16ms(), "16 ms baseline"),
            (
                RefreshPolicy::Reduced {
                    baseline_interval_ms: 16.0,
                    reduction: 0.70,
                },
                "MEMCON (70% red)",
            ),
        ] {
            let config = SystemConfig::new(1, density, policy);
            let mut sys = System::new(config.clone(), vec![spec_tpc_pool()[0]], opts.seed);
            let stats = sys.run(opts.instructions);
            rows.push(EnergyRow {
                density,
                policy: label,
                report: EnergyReport::from_stats(&stats.ctrl, stats.total_cycles, &config.timing),
            });
        }
    }
    rows
}

/// Renders all extension experiments.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let mut out = heading("Ext", "Extension experiments (energy, RowClone, storage)");

    // Energy.
    let mut t = TextTable::new(vec![
        "Density",
        "Policy",
        "Total (uJ)",
        "Refresh (uJ)",
        "Refresh share",
    ]);
    let energy = compute_energy(opts);
    for r in &energy {
        t.row(vec![
            r.density.to_string(),
            r.policy.to_string(),
            format!("{:.1}", r.report.total_nj() / 1000.0),
            format!("{:.1}", r.report.refresh_nj / 1000.0),
            pct(r.report.refresh_share()),
        ]);
    }
    out.push_str("\nDRAM energy (mcf, single core):\n");
    out.push_str(&t.render());

    // RowClone.
    let m = CostModel::paper_default();
    let mut t = TextTable::new(vec![
        "Copy-and-Compare variant",
        "Test cost",
        "MinWriteInterval",
    ]);
    t.row(vec![
        "through controller (paper)".to_string(),
        format!("{:.0} ns", m.test_cost_ns(TestMode::CopyAndCompare)),
        format!(
            "{:.0} ms",
            m.min_write_interval_ms(TestMode::CopyAndCompare)
        ),
    ]);
    t.row(vec![
        "in-DRAM copy (RowClone, footnote 6)".to_string(),
        format!("{:.0} ns", m.copy_and_compare_rowclone_ns()),
        format!("{:.0} ms", m.min_write_interval_rowclone_ms()),
    ]);
    out.push_str("\nRowClone-accelerated Copy-and-Compare:\n");
    out.push_str(&t.render());

    // Storage overhead.
    let mut t = TextTable::new(vec![
        "Memory",
        "Pages",
        "Write-map",
        "Write-buffer",
        "Staging",
    ]);
    for gb in [2u64, 8, 32] {
        let config = MemconConfig::paper_default().with_test_mode(TestMode::CopyAndCompare);
        let o = storage_overhead(&config, &DramGeometry::module_2gb(), gb << 30, 8192);
        t.row(vec![
            format!("{gb} GB"),
            o.pages.to_string(),
            format!("{} KB", o.write_map_bytes / 1024),
            format!("{:.1} KB", o.write_buffer_bytes as f64 / 1024.0),
            format!("{:.2}%", o.staging_fraction * 100.0),
        ]);
    }
    out.push_str("\nPRIL storage overhead (Section 6.4 arithmetic):\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcon_saves_energy_at_every_density() {
        let rows = compute_energy(&RunOptions::quick());
        for density in ChipDensity::ALL {
            let base = rows
                .iter()
                .find(|r| r.density == density && r.policy.contains("baseline"))
                .unwrap();
            let memcon = rows
                .iter()
                .find(|r| r.density == density && r.policy.contains("MEMCON"))
                .unwrap();
            assert!(
                memcon.report.total_nj() < base.report.total_nj(),
                "{density}: MEMCON {} >= baseline {}",
                memcon.report.total_nj(),
                base.report.total_nj()
            );
            assert!(memcon.report.refresh_nj < 0.5 * base.report.refresh_nj);
        }
    }

    #[test]
    fn render_contains_all_three_sections() {
        let s = render(&RunOptions::quick());
        assert!(s.contains("DRAM energy"));
        assert!(s.contains("RowClone"));
        assert!(s.contains("storage overhead"));
    }
}
