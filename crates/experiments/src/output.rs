//! Shared experiment options and table-rendering helpers.

/// Options controlling experiment fidelity vs runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Workload footprint scale (1.0 = the calibrated scaled-down default).
    pub scale: f64,
    /// Instructions per core for cycle simulations.
    pub instructions: u64,
    /// Number of multiprogrammed mixes for Figs. 15/16 (paper: 30).
    pub mixes: usize,
    /// Rows per bank of the chip-test module (Figs. 3/4).
    pub rows_per_bank: u32,
    /// Content snapshots per benchmark for Fig. 4 (paper: per 100 M
    /// instructions over 0.5 B ⇒ 5).
    pub snapshots: u32,
    /// Base random seed.
    pub seed: u64,
    /// Worker count for the parallel sweeps (`--jobs N` / `MEMCON_JOBS`;
    /// `0` resolves via [`memutil::par::jobs`], `1` is the exact
    /// sequential path). Rendered output is bit-identical at any value.
    pub jobs: usize,
}

impl RunOptions {
    /// Full-fidelity settings (used for EXPERIMENTS.md).
    #[must_use]
    pub fn full() -> Self {
        RunOptions {
            scale: 0.5,
            instructions: 300_000,
            mixes: 30,
            rows_per_bank: 2048,
            snapshots: 5,
            seed: 0xC0FFEE,
            jobs: 0,
        }
    }

    /// Reduced settings for unit tests and Criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        RunOptions {
            scale: 0.1,
            instructions: 60_000,
            mixes: 4,
            rows_per_bank: 256,
            snapshots: 2,
            seed: 0xC0FFEE,
            jobs: 0,
        }
    }

    /// This option set with an explicit worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::full()
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|&w| "-".repeat(w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The scaled chip-test geometry Figs. 3 and 4 run on: the paper's 2 GB
/// module shape (8 banks, 8 KB rows) with `opts.rows_per_bank` rows so the
/// sweep fits in host memory; failing-row *fractions* are scale-free.
#[must_use]
pub fn chip_test_geometry(opts: &RunOptions) -> dram::geometry::DramGeometry {
    dram::geometry::DramGeometry {
        rows_per_bank: opts.rows_per_bank,
        ..dram::geometry::DramGeometry::module_2gb()
    }
}

/// Generates (and memoizes) the write trace of `workload` at the options'
/// scale and seed. Figs. 7–14 and 19 all consume the identical trace; the
/// cache keeps `all` from regenerating it once per figure.
#[must_use]
pub fn cached_trace(
    workload: &memtrace::workload::WorkloadProfile,
    opts: &RunOptions,
) -> std::sync::Arc<memtrace::trace::WriteTrace> {
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};
    type Key = (String, u64, u64);
    type Cache = Mutex<Vec<(Key, Arc<memtrace::trace::WriteTrace>)>>;
    // Memo cache of a pure function of (workload, scale, seed): every
    // populator stores the identical trace, so the global cannot make runs
    // diverge. Append-only under the lock, so a poisoned guard is safe to
    // recover.
    // memlint: allow(global-mut-state): deterministic memo of a pure function
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let key: Key = (workload.name.clone(), opts.scale.to_bits(), opts.seed);
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    if let Some((_, hit)) = cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .find(|(k, _)| *k == key)
    {
        return Arc::clone(hit);
    }
    let trace = Arc::new(workload.clone().scaled(opts.scale).generate(opts.seed));
    cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push((key, Arc::clone(&trace)));
    trace
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with the given precision.
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Standard experiment heading.
#[must_use]
pub fn heading(id: &str, title: &str) -> String {
    format!("== {id}: {title} ==\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("long-name"));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[3].rfind("22").unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.756), "75.6%");
        assert_eq!(f(1.23456, 2), "1.23");
        assert!(heading("fig6", "MinWriteInterval").contains("fig6"));
    }

    #[test]
    fn options_presets() {
        assert!(RunOptions::full().rows_per_bank > RunOptions::quick().rows_per_bank);
        assert_eq!(RunOptions::default(), RunOptions::full());
    }
}
