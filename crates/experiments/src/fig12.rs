//! Fig. 12: coverage of write-interval time when predicting at a given
//! current interval length.
//!
//! Waiting longer before predicting loses the time already elapsed: coverage
//! decreases with CIL. Paper: 65–85 % average coverage at CIL 512–2048 ms.

use memtrace::stats::coverage_given_cil;
use memtrace::workload::WorkloadProfile;

use crate::fig11::SHOWN_CILS_MS;
use crate::output::{f, heading, RunOptions, TextTable};

/// Per-workload coverage curves.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// `(workload, [(cil, coverage)])`.
    pub rows: Vec<(String, Vec<(f64, f64)>)>,
}

impl Fig12 {
    /// Mean coverage at a given CIL.
    #[must_use]
    pub fn mean_at(&self, cil: f64) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|(_, pts)| pts.iter().find(|p| p.0 == cil).map(|p| p.1))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Computes coverage over intervals including censored tails (idle time at
/// the end of the trace is coverable too).
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig12 {
    let rows = WorkloadProfile::all()
        .into_iter()
        .map(|w| {
            let trace = crate::output::cached_trace(&w, opts);
            let pts = coverage_given_cil(&trace.intervals_with_tail(), 1024.0, &SHOWN_CILS_MS);
            (w.name, pts)
        })
        .collect();
    Fig12 { rows }
}

/// Renders Fig. 12.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Workload".to_string()];
    header.extend(SHOWN_CILS_MS.iter().map(|c| format!("{c:.0}ms")));
    let mut t = TextTable::new(header);
    for (name, pts) in &r.rows {
        let mut row = vec![name.clone()];
        row.extend(pts.iter().map(|p| f(p.1, 2)));
        t.row(row);
    }
    format!(
        "{}{}\nMean coverage at CIL 512/1024 ms: {:.2}/{:.2} (paper: 65-85% at 512-2048 ms)\n",
        heading("Fig 12", "Coverage of write-interval time vs CIL"),
        t.render(),
        r.mean_at(512.0),
        r.mean_at(1024.0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_high_and_decreasing() {
        let r = compute(&RunOptions::quick());
        for (name, pts) in &r.rows {
            for w in pts.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "{name}: coverage increased with CIL: {w:?}"
                );
            }
        }
        let at_1024 = r.mean_at(1024.0);
        assert!((0.5..1.0).contains(&at_1024), "coverage at 1024: {at_1024}");
    }
}
