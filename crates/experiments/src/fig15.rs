//! Fig. 15: MEMCON's performance improvement over the aggressive 16 ms
//! baseline, modelling 60 % and 75 % refresh reductions (the band measured
//! in Fig. 14) with 256 concurrent tests injected per 64 ms window.
//!
//! Paper: single-core 10/17/40 % (min, 60 % reduction) to 12/22/50 % (max,
//! 75 %) and four-core 10/23/52 % to 17/29/65 % for 8/16/32 Gb chips.

use dram::geometry::ChipDensity;
use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::system::{SimStats, System};
use memsim::testinject::TestInjectConfig;
use memtrace::cpu::{random_mixes, CpuWorkloadProfile};

use crate::output::{heading, pct, RunOptions, TextTable};

/// The refresh-reduction points evaluated (the Fig. 14 band).
pub const REDUCTIONS: [f64; 2] = [0.60, 0.75];

/// Runs one simulation; `reduction = None` is the 16 ms baseline.
#[must_use]
pub fn run_config(
    cores: usize,
    density: ChipDensity,
    reduction: Option<f64>,
    profiles: Vec<CpuWorkloadProfile>,
    opts: &RunOptions,
    mix_seed: u64,
) -> SimStats {
    let policy = match reduction {
        None => RefreshPolicy::baseline_16ms(),
        Some(r) => RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: r,
        },
    };
    let config = SystemConfig::new(cores, density, policy);
    let mut system = System::new(config, profiles, opts.seed ^ mix_seed);
    if reduction.is_some() {
        // MEMCON runs carry the online-testing traffic (Table 3's 256-test
        // operating point, as in the paper's full results).
        system = system.with_test_injection(TestInjectConfig::read_and_compare(256));
    }
    system.run(opts.instructions)
}

/// Mean speedups per (cores, density, reduction).
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// `(cores, density, reduction, mean speedup, max speedup)`.
    pub points: Vec<(usize, ChipDensity, f64, f64, f64)>,
}

impl Fig15 {
    /// Looks up the mean speedup of a configuration.
    #[must_use]
    pub fn mean(&self, cores: usize, density: ChipDensity, reduction: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.0 == cores && p.1 == density && p.2 == reduction)
            .map(|p| p.3)
    }
}

/// Runs the full sweep over `opts.mixes` workload mixes.
///
/// The six `(cores, density)` cells fan out across the [`memutil::par`]
/// pool; each cell runs its mixes and reduction points in order and the
/// cells are reduced in sweep order, so the figure is bit-identical to the
/// sequential nested loop at any worker count.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig15 {
    let mixes = random_mixes(opts.mixes, 4, opts.seed);
    let cells: Vec<(usize, ChipDensity)> = [1usize, 4]
        .iter()
        .flat_map(|&cores| ChipDensity::ALL.iter().map(move |&d| (cores, d)))
        .collect();
    let points = memutil::par::ordered_flat_map_with(opts.jobs, cells.len(), |ci| {
        let (cores, density) = cells[ci];
        // Baselines per mix, reused across the two reduction points.
        let baselines: Vec<SimStats> = mixes
            .iter()
            .enumerate()
            .map(|(i, mix)| {
                let profiles = mix[..cores].to_vec();
                run_config(cores, density, None, profiles, opts, i as u64)
            })
            .collect();
        let mut cell_points = Vec::with_capacity(REDUCTIONS.len());
        for reduction in REDUCTIONS {
            let mut speedups = Vec::new();
            for (i, mix) in mixes.iter().enumerate() {
                let profiles = mix[..cores].to_vec();
                let stats = run_config(cores, density, Some(reduction), profiles, opts, i as u64);
                speedups.push(stats.speedup_over(&baselines[i]));
            }
            let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
            let max = speedups.iter().cloned().fold(0.0, f64::max);
            cell_points.push((cores, density, reduction, mean, max));
        }
        cell_points
    });
    Fig15 { points }
}

/// Renders Fig. 15.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec![
        "Cores",
        "Density",
        "Reduction",
        "Mean speedup",
        "Mean improvement",
        "Max speedup",
    ]);
    for (cores, density, reduction, mean, max) in &r.points {
        t.row(vec![
            cores.to_string(),
            density.to_string(),
            pct(*reduction),
            format!("{mean:.3}"),
            pct(mean - 1.0),
            format!("{max:.3}"),
        ]);
    }
    format!(
        "{}{}\n(paper: 1-core 10/17/40% to 12/22/50%, 4-core 10/23/52% to\n\
         17/29/65% for 8/16/32 Gb; includes 256 injected tests per 64 ms)\n",
        heading("Fig 15", "MEMCON speedup over the 16 ms baseline"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shape_matches_paper() {
        let r = compute(&RunOptions::quick());
        for cores in [1usize, 4] {
            // Grows with density.
            let g8 = r.mean(cores, ChipDensity::Gb8, 0.75).unwrap();
            let g16 = r.mean(cores, ChipDensity::Gb16, 0.75).unwrap();
            let g32 = r.mean(cores, ChipDensity::Gb32, 0.75).unwrap();
            assert!(g8 > 1.0, "{cores}-core 8Gb speedup {g8}");
            assert!(g16 > g8, "{cores}-core: 16Gb {g16} <= 8Gb {g8}");
            assert!(g32 > g16, "{cores}-core: 32Gb {g32} <= 16Gb {g16}");
            // 75% reduction beats 60%.
            for d in ChipDensity::ALL {
                let lo = r.mean(cores, d, 0.60).unwrap();
                let hi = r.mean(cores, d, 0.75).unwrap();
                assert!(hi >= lo, "{cores}-core {d}: 75% {hi} < 60% {lo}");
            }
            // Magnitudes in the paper's ballpark at 32 Gb (tens of percent).
            assert!((1.2..2.0).contains(&g32), "{cores}-core 32Gb {g32}");
        }
    }
}
