//! Fig. 4: percentage of rows with data-dependent failures under program
//! content vs every possible content ("ALL FAIL").
//!
//! The paper fills a real chip with 20 SPEC CPU2006 memory images (5
//! snapshots each, one per 100 M instructions) and finds 0.38–5.6 % of rows
//! failing, against 13.5 % under exhaustive worst-case testing — a
//! 2.4×–35.2× gap that is MEMCON's headline motivation.

use dram::module::DramModule;
use dram::timing::TimingParams;
use failure_model::content::SpecBenchmark;
use failure_model::model::CouplingFailureModel;
use failure_model::params::FailureModelParams;
use failure_model::tester::ChipTester;

use crate::output::{heading, RunOptions, TextTable};

/// Per-benchmark failing-row statistics.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name (Fig. 4 x-axis).
    pub name: &'static str,
    /// Mean failing-row fraction over snapshots.
    pub mean: f64,
    /// Minimum over snapshots (error-bar bottom).
    pub min: f64,
    /// Maximum over snapshots (error-bar top).
    pub max: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One row per SPEC benchmark.
    pub benchmarks: Vec<BenchmarkRow>,
    /// The exhaustive worst-case failing-row fraction.
    pub all_fail: f64,
}

impl Fig4 {
    /// The smallest and largest gap between ALL-FAIL and program content
    /// (paper: 2.4×–35.2×).
    #[must_use]
    pub fn gap_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for b in &self.benchmarks {
            if b.mean > 0.0 {
                let gap = self.all_fail / b.mean;
                lo = lo.min(gap);
                hi = hi.max(gap);
            }
        }
        (lo, hi)
    }
}

/// Runs the Fig. 4 sweep at the 328 ms-equivalent test interval.
///
/// Benchmarks fan out across the [`memutil::par`] pool, each on its own
/// tester clone (sound because `fill_with` overwrites every row before each
/// snapshot); results are reduced in `SpecBenchmark::ALL` order, so the
/// figure is bit-identical to the sequential sweep at any worker count.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig4 {
    let geometry = crate::output::chip_test_geometry(opts);
    let interval_ms = 328.0;
    let module = DramModule::new(geometry, TimingParams::ddr3_1600(), opts.seed);
    let model = CouplingFailureModel::new(FailureModelParams::calibrated());
    let all_fail = model.worst_case_failing_row_fraction_with_jobs(&module, interval_ms, opts.jobs);

    // Hand the same model to the tester so the worst-case sweep's cell
    // cache is reused by every benchmark's idle sweep.
    let tester = ChipTester::with_model(module, model);
    let words = geometry.words_per_row();
    let benchmarks = memutil::par::ordered_map_with(opts.jobs, SpecBenchmark::ALL.len(), |bi| {
        let bench = SpecBenchmark::ALL[bi];
        let profile = bench.profile();
        let mut tester = tester.clone().with_jobs(1);
        let mut fracs = Vec::new();
        for snapshot in 0..opts.snapshots {
            tester.fill_with(|row| {
                profile.row_content(opts.seed ^ bench as u64, snapshot, row, words)
            });
            let _ = tester.idle_ms(interval_ms);
            fracs.push(tester.read_back().failing_row_fraction());
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        BenchmarkRow {
            name: bench.name(),
            mean,
            min: fracs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: fracs.iter().cloned().fold(0.0, f64::max),
        }
    });
    Fig4 {
        benchmarks,
        all_fail,
    }
}

/// Renders Fig. 4.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut t = TextTable::new(vec!["Benchmark", "Failing rows", "min", "max"]);
    for b in &r.benchmarks {
        t.row(vec![
            b.name.to_string(),
            format!("{:.2}%", b.mean * 100.0),
            format!("{:.2}%", b.min * 100.0),
            format!("{:.2}%", b.max * 100.0),
        ]);
    }
    t.row(vec![
        "ALL FAIL".to_string(),
        format!("{:.2}%", r.all_fail * 100.0),
        String::new(),
        String::new(),
    ]);
    let (lo, hi) = r.gap_range();
    format!(
        "{}{}\nGap between ALL-FAIL and program content: {:.1}x - {:.1}x\n\
         (paper: 13.5% ALL FAIL, 0.38-5.6% program content, gap 2.4x-35.2x)\n",
        heading("Fig 4", "Rows failing with program content vs all content"),
        t.render(),
        lo,
        hi
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_content_fails_far_less_than_all_fail() {
        let r = compute(&RunOptions::quick());
        assert!(r.all_fail > 0.05, "ALL FAIL {:.3}", r.all_fail);
        for b in &r.benchmarks {
            assert!(
                b.mean < r.all_fail,
                "{}: {} >= ALL FAIL {}",
                b.name,
                b.mean,
                r.all_fail
            );
            assert!(b.min <= b.mean && b.mean <= b.max);
        }
        let (lo, hi) = r.gap_range();
        assert!(lo > 1.5, "minimum gap {lo}");
        assert!(hi > 8.0, "maximum gap {hi}");
    }

    #[test]
    fn compute_is_jobs_invariant() {
        // The parallel sweep must be bit-identical to the sequential path
        // (jobs = 1) for every seed and worker count — floats compared by
        // bit pattern, not tolerance.
        for seed in [3u64, 17, 0xC0FFEE] {
            let base = RunOptions {
                rows_per_bank: 64,
                snapshots: 2,
                seed,
                ..RunOptions::quick()
            };
            let key = |r: &Fig4| -> Vec<(String, u64, u64, u64)> {
                let mut rows: Vec<_> = r
                    .benchmarks
                    .iter()
                    .map(|b| {
                        (
                            b.name.to_string(),
                            b.mean.to_bits(),
                            b.min.to_bits(),
                            b.max.to_bits(),
                        )
                    })
                    .collect();
                rows.push(("ALL FAIL".to_string(), r.all_fail.to_bits(), 0, 0));
                rows
            };
            let sequential = key(&compute(&base.with_jobs(1)));
            for jobs in [2usize, 8] {
                assert_eq!(
                    sequential,
                    key(&compute(&base.with_jobs(jobs))),
                    "seed {seed} diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn benchmarks_spread_over_a_band() {
        let r = compute(&RunOptions::quick());
        let means: Vec<f64> = r.benchmarks.iter().map(|b| b.mean).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 3.0 * min,
            "benchmark failing-row fractions too uniform: {min}..{max}"
        );
    }
}
