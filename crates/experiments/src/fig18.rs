//! Fig. 18: time MEMCON spends on refresh and testing, normalized to the
//! baseline's refresh time.
//!
//! Paper: the refresh share drops to roughly the complement of the refresh
//! reduction (~25–35 %), and testing time — even including mispredicted
//! tests — is negligible in comparison.

use crate::fig14;
use crate::output::{heading, RunOptions, TextTable};

/// Per-workload normalized time split.
#[derive(Debug, Clone)]
pub struct Fig18Row {
    /// Workload name.
    pub workload: String,
    /// Refresh time / baseline refresh time.
    pub refresh: f64,
    /// Correct-test time / baseline refresh time.
    pub test_correct: f64,
    /// Mispredicted-test time / baseline refresh time.
    pub test_mispredicted: f64,
}

/// Computes the split at the paper's default 1024 ms quantum.
#[must_use]
pub fn compute(opts: &RunOptions) -> Vec<Fig18Row> {
    let r = fig14::compute(opts);
    r.at_quantum(1024.0)
        .into_iter()
        .map(|run| {
            let base = run.report.baseline_refresh_time_ns;
            Fig18Row {
                workload: run.workload.clone(),
                refresh: run.report.refresh_time_ns / base,
                test_correct: run.report.test_time_correct_ns / base,
                test_mispredicted: run.report.test_time_mispredicted_ns / base,
            }
        })
        .collect()
}

/// Renders Fig. 18.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let rows = compute(opts);
    let mut t = TextTable::new(vec![
        "Workload",
        "Refresh",
        "Testing (correct)",
        "Testing (mispredicted)",
    ]);
    let mut total_test = 0.0;
    for r in &rows {
        total_test += r.test_correct + r.test_mispredicted;
        t.row(vec![
            r.workload.clone(),
            format!("{:.1}%", r.refresh * 100.0),
            format!("{:.4}%", r.test_correct * 100.0),
            format!("{:.4}%", r.test_mispredicted * 100.0),
        ]);
    }
    format!(
        "{}{}\nAverage testing share: {:.4}% of baseline refresh time\n\
         (paper: refresh ~25-35%, testing ~0.01%; our traces compress per-page\n\
         write rates into a 60 s window, inflating the testing share, which\n\
         nonetheless stays orders of magnitude below the refresh share)\n",
        heading(
            "Fig 18",
            "Time on refresh and testing, normalized to baseline refresh"
        ),
        t.render(),
        total_test / rows.len() as f64 * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_dominates_testing() {
        let rows = compute(&RunOptions::quick());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                (0.2..0.55).contains(&r.refresh),
                "{}: refresh share {}",
                r.workload,
                r.refresh
            );
            let testing = r.test_correct + r.test_mispredicted;
            assert!(
                testing < 0.05 * r.refresh,
                "{}: testing {} vs refresh {}",
                r.workload,
                testing,
                r.refresh
            );
        }
    }
}
