//! Fig. 16: comparison with other refresh mechanisms — a 32 ms baseline,
//! RAIDR, and the ideal 64 ms configuration — all normalized to the 16 ms
//! baseline.
//!
//! Paper findings to reproduce: MEMCON beats RAIDR (which must keep every
//! possibly-failing row — 16 % — at HI-REF), still gains over a 32 ms
//! baseline, and comes within a few percent of the 64 ms ideal.

use dram::geometry::ChipDensity;
use memcon::raidr::Raidr;
use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::system::{SimStats, System};
use memsim::testinject::TestInjectConfig;
use memtrace::cpu::random_mixes;

use crate::output::{heading, pct, RunOptions, TextTable};

/// The compared mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Fixed 32 ms refresh (a less aggressive baseline).
    Fixed32,
    /// RAIDR: 16 % of rows at 16 ms, the rest at 64 ms, from a one-time
    /// worst-case profile.
    Raidr,
    /// MEMCON at its measured refresh reduction, with test traffic.
    Memcon,
    /// The ideal 64 ms system with no testing overhead.
    Ideal64,
}

impl Mechanism {
    /// All mechanisms in presentation order.
    pub const ALL: [Mechanism; 4] = [
        Mechanism::Fixed32,
        Mechanism::Raidr,
        Mechanism::Memcon,
        Mechanism::Ideal64,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Fixed32 => "32 ms",
            Mechanism::Raidr => "RAIDR",
            Mechanism::Memcon => "MEMCON",
            Mechanism::Ideal64 => "64 ms (ideal)",
        }
    }
}

/// The refresh-operation reduction MEMCON achieves (Fig. 14's mean at the
/// 1024 ms quantum); computed once from the engine.
#[must_use]
pub fn memcon_reduction(opts: &RunOptions) -> f64 {
    crate::fig14::compute(opts).mean_reduction_at(1024.0)
}

/// RAIDR's static refresh reduction at the paper's 16 % HI-row modelling.
#[must_use]
pub fn raidr_reduction(opts: &RunOptions) -> f64 {
    Raidr::from_random_profile(100_000, 0.16, 16.0, 64.0, opts.seed)
        .report()
        .refresh_reduction
}

/// Mean speedups per (cores, density, mechanism), vs the 16 ms baseline.
#[derive(Debug, Clone)]
pub struct Fig16 {
    /// `(cores, density, mechanism, mean speedup)`.
    pub points: Vec<(usize, ChipDensity, Mechanism, f64)>,
    /// MEMCON reduction used.
    pub memcon_reduction: f64,
    /// RAIDR reduction used.
    pub raidr_reduction: f64,
}

impl Fig16 {
    /// Looks up a configuration's mean speedup.
    #[must_use]
    pub fn mean(&self, cores: usize, density: ChipDensity, m: Mechanism) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.0 == cores && p.1 == density && p.2 == m)
            .map(|p| p.3)
    }
}

fn policy_of(m: Mechanism, memcon_red: f64, raidr_red: f64) -> RefreshPolicy {
    match m {
        Mechanism::Fixed32 => RefreshPolicy::Fixed { interval_ms: 32.0 },
        Mechanism::Raidr => RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: raidr_red,
        },
        Mechanism::Memcon => RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: memcon_red,
        },
        Mechanism::Ideal64 => RefreshPolicy::Fixed { interval_ms: 64.0 },
    }
}

/// Runs the comparison sweep.
///
/// After the (shared, memoized) Fig. 14 engine runs fix the MEMCON
/// reduction, the six `(cores, density)` cells fan out across the
/// [`memutil::par`] pool and are reduced in sweep order — bit-identical to
/// the sequential nested loop at any worker count.
#[must_use]
pub fn compute(opts: &RunOptions) -> Fig16 {
    let memcon_red = memcon_reduction(opts);
    let raidr_red = raidr_reduction(opts);
    let mixes = random_mixes(opts.mixes, 4, opts.seed);
    let cells: Vec<(usize, ChipDensity)> = [1usize, 4]
        .iter()
        .flat_map(|&cores| ChipDensity::ALL.iter().map(move |&d| (cores, d)))
        .collect();
    let points = memutil::par::ordered_flat_map_with(opts.jobs, cells.len(), |ci| {
        let (cores, density) = cells[ci];
        let baselines: Vec<SimStats> = mixes
            .iter()
            .enumerate()
            .map(|(i, mix)| {
                let config = SystemConfig::new(cores, density, RefreshPolicy::baseline_16ms());
                System::new(config, mix[..cores].to_vec(), opts.seed ^ i as u64)
                    .run(opts.instructions)
            })
            .collect();
        let mut cell_points = Vec::with_capacity(Mechanism::ALL.len());
        for m in Mechanism::ALL {
            let mut speedups = Vec::new();
            for (i, mix) in mixes.iter().enumerate() {
                let config = SystemConfig::new(cores, density, policy_of(m, memcon_red, raidr_red));
                let mut system = System::new(config, mix[..cores].to_vec(), opts.seed ^ i as u64);
                if m == Mechanism::Memcon {
                    system = system.with_test_injection(TestInjectConfig::read_and_compare(256));
                }
                let stats = system.run(opts.instructions);
                speedups.push(stats.speedup_over(&baselines[i]));
            }
            cell_points.push((
                cores,
                density,
                m,
                speedups.iter().sum::<f64>() / speedups.len() as f64,
            ));
        }
        cell_points
    });
    Fig16 {
        points,
        memcon_reduction: memcon_red,
        raidr_reduction: raidr_red,
    }
}

/// Renders Fig. 16.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let r = compute(opts);
    let mut header = vec!["Cores".to_string(), "Density".to_string()];
    header.extend(Mechanism::ALL.iter().map(|m| m.label().to_string()));
    let mut t = TextTable::new(header);
    for cores in [1usize, 4] {
        for density in ChipDensity::ALL {
            let mut row = vec![cores.to_string(), density.to_string()];
            for m in Mechanism::ALL {
                let cell = r
                    .mean(cores, density, m)
                    .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"));
                row.push(cell);
            }
            t.row(row);
        }
    }
    format!(
        "{}{}\nMEMCON models its measured {} refresh reduction (RAIDR: {}).\n\
         (paper: MEMCON > RAIDR > 32 ms everywhere; MEMCON within 3-5% of 64 ms ideal)\n",
        heading(
            "Fig 16",
            "Speedup over 16 ms baseline vs other refresh mechanisms"
        ),
        t.render(),
        pct(r.memcon_reduction),
        pct(r.raidr_reduction),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let r = compute(&RunOptions::quick());
        assert!(
            r.memcon_reduction > r.raidr_reduction,
            "MEMCON must out-reduce RAIDR"
        );
        for cores in [1usize, 4] {
            for d in ChipDensity::ALL {
                let m32 = r.mean(cores, d, Mechanism::Fixed32).unwrap();
                let raidr = r.mean(cores, d, Mechanism::Raidr).unwrap();
                let memcon = r.mean(cores, d, Mechanism::Memcon).unwrap();
                let ideal = r.mean(cores, d, Mechanism::Ideal64).unwrap();
                assert!(
                    memcon >= raidr - 0.01,
                    "{cores}c {d}: MEMCON {memcon} < RAIDR {raidr}"
                );
                assert!(
                    memcon > m32 - 0.02,
                    "{cores}c {d}: MEMCON {memcon} vs 32ms {m32}"
                );
                // Within a few percent of ideal.
                assert!(
                    ideal - memcon < 0.10 * ideal,
                    "{cores}c {d}: MEMCON {memcon} too far from ideal {ideal}"
                );
            }
        }
    }
}
