//! Table 1: the evaluated long-running workloads.

use memtrace::workload::WorkloadProfile;

use crate::output::{heading, RunOptions, TextTable};

/// The workload roster (straight from the profiles).
#[must_use]
pub fn compute(_opts: &RunOptions) -> Vec<WorkloadProfile> {
    WorkloadProfile::all()
}

/// Renders Table 1.
#[must_use]
pub fn render(opts: &RunOptions) -> String {
    let mut t = TextTable::new(vec![
        "Application",
        "Type",
        "Time (s)",
        "Mem (GB)",
        "Threads",
    ]);
    for w in compute(opts) {
        t.row(vec![
            w.name.clone(),
            w.kind.clone(),
            format!("{:.1}", w.duration_s),
            format!("{:.1}", w.mem_gb),
            w.threads.to_string(),
        ]);
    }
    format!(
        "{}{}",
        heading("Table 1", "Evaluated long-running workloads"),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_12_workloads() {
        let s = render(&RunOptions::quick());
        for name in ["ACBrother", "Netflix", "SystemMgt", "VideoEnc"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert_eq!(s.lines().count(), 15); // heading + header + rule + 12
    }
}
