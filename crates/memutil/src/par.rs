//! A std-only, scoped, work-stealing thread pool with **deterministic
//! ordered reduction**.
//!
//! The MEMCON reproduction's hot loops — per-(rank, bank) failure-model
//! sweeps, the chip tester's golden-vs-readback diff, and the experiment
//! suite's seed/pattern grids — are all *index-shaped*: evaluate a pure
//! function over `0..len` and combine the results in index order. This
//! module parallelizes exactly that shape while keeping the output
//! **bit-identical to the sequential path at any worker count**:
//!
//! * the index range is split into fixed-size chunks; chunk boundaries
//!   depend only on `len` and the worker count, never on timing,
//! * workers own per-worker deques of chunk ids (round-robin seeded) and
//!   steal from the busiest sibling when their own deque drains,
//! * every chunk's results are tagged with the chunk id and reassembled in
//!   chunk order after the scope joins — an *ordered reduction*, so
//!   floating-point accumulation in the caller happens in the same order
//!   the sequential loop would have used.
//!
//! `jobs = 1` (or a single-item range, or a call from inside a worker)
//! bypasses the pool entirely and runs the plain sequential loop, so the
//! sequential path is not merely equivalent but *the same code*.
//!
//! # Worker-count resolution
//!
//! [`jobs`] resolves, in priority order: the value installed by
//! [`set_jobs`] (e.g. from a `--jobs N` flag), the `MEMCON_JOBS`
//! environment variable, and finally [`std::thread::available_parallelism`].
//!
//! # Nested scopes
//!
//! The pool is scoped and non-reentrant: a parallel call issued from inside
//! a worker is **rejected** and degrades to the inline sequential loop (see
//! [`in_worker`]). This keeps the thread count bounded by one pool at a
//! time and makes composition safe: when the experiments suite fans out
//! per-figure, the figures' own inner sweeps automatically run inline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel meaning "no explicit worker count installed".
const JOBS_UNSET: usize = 0;

/// Number of per-worker slots tracked by [`PoolStats::worker_chunks`].
/// Workers beyond the slot count fold in modulo — wide enough for any
/// realistic `--jobs` while keeping the counter block fixed-size.
const STAT_WORKER_SLOTS: usize = 16;

// The pool's scheduling counters are the one sanctioned process-global
// mutable block outside the registries: they are timing-class diagnostics
// (see `PoolStats` below) and never feed deterministic output.
static STAT_SCOPES: AtomicU64 = AtomicU64::new(0); // memlint: allow(global-mut-state): timing-class diagnostic counter
static STAT_INLINE_RUNS: AtomicU64 = AtomicU64::new(0); // memlint: allow(global-mut-state): timing-class diagnostic counter
static STAT_CHUNKS_RUN: AtomicU64 = AtomicU64::new(0); // memlint: allow(global-mut-state): timing-class diagnostic counter
static STAT_CHUNKS_STOLEN: AtomicU64 = AtomicU64::new(0); // memlint: allow(global-mut-state): timing-class diagnostic counter
#[allow(clippy::declare_interior_mutable_const)]
// memlint: allow(global-mut-state): timing-class diagnostic counters
static STAT_WORKER_CHUNKS: [AtomicU64; STAT_WORKER_SLOTS] = {
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; STAT_WORKER_SLOTS]
};

/// Process-lifetime scheduling counters of the pool, for telemetry.
///
/// These describe *how* work was scheduled, never *what* it computed:
/// steal counts and per-worker chunk tallies legitimately vary from run to
/// run, so consumers must report them as timing-class (non-deterministic)
/// metrics, outside any byte-diff determinism gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Parallel scopes that actually spawned workers.
    pub scopes: u64,
    /// Calls that ran the inline sequential path (jobs/len 1, nested).
    pub inline_runs: u64,
    /// Chunks executed by pool workers.
    pub chunks_run: u64,
    /// Chunks executed after being stolen from a sibling's deque.
    pub chunks_stolen: u64,
    /// Chunks executed per worker index (indices fold modulo the slot
    /// count).
    pub worker_chunks: [u64; STAT_WORKER_SLOTS],
}

/// Snapshot of the process-lifetime [`PoolStats`].
#[must_use]
pub fn pool_stats() -> PoolStats {
    let mut worker_chunks = [0u64; STAT_WORKER_SLOTS];
    for (slot, counter) in worker_chunks.iter_mut().zip(&STAT_WORKER_CHUNKS) {
        *slot = counter.load(Ordering::Relaxed);
    }
    PoolStats {
        scopes: STAT_SCOPES.load(Ordering::Relaxed),
        inline_runs: STAT_INLINE_RUNS.load(Ordering::Relaxed),
        chunks_run: STAT_CHUNKS_RUN.load(Ordering::Relaxed),
        chunks_stolen: STAT_CHUNKS_STOLEN.load(Ordering::Relaxed),
        worker_chunks,
    }
}

/// Zeroes the process-lifetime [`PoolStats`] (tests and report scoping).
pub fn reset_pool_stats() {
    STAT_SCOPES.store(0, Ordering::Relaxed);
    STAT_INLINE_RUNS.store(0, Ordering::Relaxed);
    STAT_CHUNKS_RUN.store(0, Ordering::Relaxed);
    STAT_CHUNKS_STOLEN.store(0, Ordering::Relaxed);
    for counter in &STAT_WORKER_CHUNKS {
        counter.store(0, Ordering::Relaxed);
    }
}

/// Process-global worker count installed by [`set_jobs`] (0 = unset).
/// Configuration, not computed state: set once from the CLI before any
/// parallel work, and the same value on every worker makes runs
/// jobs-invariant rather than jobs-dependent.
// memlint: allow(global-mut-state): CLI-installed configuration knob
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(JOBS_UNSET);

std::thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a pool worker. Parallel calls made while
/// this is `true` run inline (nested scopes are rejected).
#[must_use]
pub fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// Installs an explicit worker count for subsequent [`jobs`]-resolved
/// parallel calls. `None` (or `Some(0)`) reverts to automatic resolution
/// (`MEMCON_JOBS`, then available parallelism).
pub fn set_jobs(jobs: Option<usize>) {
    CONFIGURED_JOBS.store(jobs.unwrap_or(JOBS_UNSET), Ordering::Relaxed);
}

/// The resolved worker count: [`set_jobs`] value, else `MEMCON_JOBS`, else
/// [`std::thread::available_parallelism`] (else 1).
#[must_use]
pub fn jobs() -> usize {
    let configured = CONFIGURED_JOBS.load(Ordering::Relaxed);
    if configured != JOBS_UNSET {
        return configured;
    }
    if let Ok(v) = std::env::var("MEMCON_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..len` with the resolved [`jobs`] worker count,
/// returning results in index order. See [`ordered_map_with`].
pub fn ordered_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    ordered_map_with(jobs(), len, f)
}

/// Maps `f` over `0..len` on a scoped work-stealing pool of `jobs`
/// workers, returning `vec![f(0), f(1), …, f(len-1)]`.
///
/// `jobs = 0` means "resolve automatically" (see [`jobs`]) — callers that
/// thread an optional `--jobs` override through their APIs can pass it
/// straight down.
///
/// The output is **bit-identical** to the sequential
/// `(0..len).map(f).collect()` for any `jobs`: scheduling decides only
/// *when* an index is evaluated, never the result order. With `jobs == 1`,
/// from inside a pool worker (nested scopes are rejected), or for
/// single-item ranges, the sequential loop runs inline on the caller.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (workers are joined before the
/// panic resumes, so no work is leaked).
pub fn ordered_map_with<T, F>(jobs: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = if jobs == 0 { self::jobs() } else { jobs };
    let workers = jobs.min(len);
    if workers <= 1 || in_worker() {
        STAT_INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
        return (0..len).map(f).collect();
    }
    STAT_SCOPES.fetch_add(1, Ordering::Relaxed);

    // Chunk geometry depends only on (len, workers): deterministic.
    let chunk = chunk_size(len, workers);
    let n_chunks = len.div_ceil(chunk);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n_chunks).filter(|c| c % workers == w).collect()))
        .collect();

    let mut pieces: Vec<(usize, Vec<T>)> = Vec::with_capacity(n_chunks);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut done: Vec<(usize, Vec<T>)> = Vec::new();
                    while let Some((c, stolen)) = claim_chunk(queues, w) {
                        STAT_CHUNKS_RUN.fetch_add(1, Ordering::Relaxed);
                        STAT_WORKER_CHUNKS[w % STAT_WORKER_SLOTS].fetch_add(1, Ordering::Relaxed);
                        if stolen {
                            STAT_CHUNKS_STOLEN.fetch_add(1, Ordering::Relaxed);
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(len);
                        done.push((c, (start..end).map(f).collect()));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(done) => pieces.extend(done),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    // Ordered reduction: reassemble in chunk order.
    pieces.sort_unstable_by_key(|&(c, _)| c);
    debug_assert_eq!(pieces.len(), n_chunks, "every chunk exactly once");
    let mut out = Vec::with_capacity(len);
    for (_, piece) in pieces {
        out.extend(piece);
    }
    out
}

/// Maps `f` (returning a `Vec` per index) over `0..len` and concatenates
/// the pieces in index order — the parallel equivalent of the sequential
/// `flat_map` idiom used by per-(rank, bank) sweeps.
pub fn ordered_flat_map_with<T, F>(jobs: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    let mut out = Vec::new();
    for piece in ordered_map_with(jobs, len, f) {
        out.extend(piece);
    }
    out
}

/// Chunk size targeting ~4 stealable chunks per worker (floor 1), so the
/// pool load-balances without shredding cache locality.
fn chunk_size(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.saturating_mul(4).max(1)).max(1)
}

/// Pops a chunk id: own deque front first, then steal from the sibling
/// with the longest deque (back side). The flag reports whether the chunk
/// was stolen. `None` when every deque is empty — no new work is ever
/// generated mid-run, so an empty sweep is terminal.
fn claim_chunk(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<(usize, bool)> {
    if let Some(c) = queues[own]
        .lock()
        .expect("worker deque poisoned")
        .pop_front()
    {
        return Some((c, false));
    }
    // Steal from the fullest victim to halve the largest backlog.
    let mut best: Option<(usize, usize)> = None;
    for (w, q) in queues.iter().enumerate() {
        if w == own {
            continue;
        }
        let backlog = q.lock().expect("worker deque poisoned").len();
        if backlog > 0 && best.is_none_or(|(_, b)| backlog > b) {
            best = Some((w, backlog));
        }
    }
    let (victim, _) = best?;
    queues[victim]
        .lock()
        .expect("worker deque poisoned")
        .pop_back()
        .map(|c| (c, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range_yields_empty_vec() {
        let out: Vec<u64> = ordered_map_with(4, 0, |i| i as u64);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = ordered_map_with(8, 1, |i| {
            assert_eq!(std::thread::current().id(), caller, "must not spawn");
            i * 10
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn jobs_one_is_the_sequential_path() {
        let caller = std::thread::current().id();
        let out = ordered_map_with(1, 100, |i| {
            assert_eq!(std::thread::current().id(), caller, "must not spawn");
            i * i
        });
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        // The determinism contract: same bits at any jobs value, including
        // worker counts above the chunk count.
        let f = |i: usize| (i as f64).sqrt().sin() * 1e9;
        let seq: Vec<f64> = (0..1000).map(f).collect();
        for jobs in [2, 3, 4, 8, 64] {
            let par = ordered_map_with(jobs, 1000, f);
            assert!(
                seq.iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "jobs={jobs} diverged from sequential"
            );
        }
    }

    #[test]
    fn flat_map_preserves_order() {
        let out = ordered_flat_map_with(4, 10, |i| vec![i * 2, i * 2 + 1]);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn work_is_distributed_across_threads() {
        use std::collections::HashSet;
        use std::sync::Barrier;
        // 4 items at 4 workers = 1 chunk per worker, and each worker pops
        // its own deque before stealing — so the barrier can only release
        // when all 4 chunks run on 4 distinct live threads.
        let barrier = Barrier::new(4);
        let ids = Mutex::new(HashSet::new());
        let _ = ordered_map_with(4, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            barrier.wait();
            i
        });
        assert_eq!(ids.into_inner().unwrap().len(), 4);
    }

    #[test]
    fn panic_propagates_from_worker() {
        let result = std::panic::catch_unwind(|| {
            let _ = ordered_map_with(4, 100, |i| {
                assert!(i != 37, "injected failure at 37");
                i
            });
        });
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "payload: {msg}");
    }

    #[test]
    fn nested_scope_is_rejected_and_runs_inline() {
        let out = ordered_map_with(4, 8, |i| {
            assert!(in_worker(), "outer closure must be on a pool worker");
            let worker = std::thread::current().id();
            // The nested call must not spawn: every inner index runs on
            // this same worker thread, inline.
            let inner = ordered_map_with(4, 16, move |j| {
                assert_eq!(std::thread::current().id(), worker, "nested spawn");
                j + i
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, (0..8).map(|i| 120 + 16 * i).collect::<Vec<_>>());
        assert!(!in_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn jobs_resolution_priority() {
        // set_jobs wins over the environment/auto path.
        set_jobs(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs(None);
        assert!(jobs() >= 1);
    }

    #[test]
    fn chunking_covers_range_exactly() {
        for len in [1usize, 2, 7, 64, 1000, 1023] {
            for workers in [1usize, 2, 4, 9] {
                let c = chunk_size(len, workers);
                assert!(c >= 1);
                let n_chunks = len.div_ceil(c);
                assert!(n_chunks * c >= len);
                assert!((n_chunks - 1) * c < len);
            }
        }
    }
}
