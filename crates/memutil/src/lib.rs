//! Dependency-free support library that lets the MEMCON workspace build and
//! test **hermetically offline**.
//!
//! The seed repository depended on `rand`, `serde`/`serde_json`, `criterion`,
//! and `proptest` — none of which resolve in the offline build environment.
//! This crate provides the small slices of those libraries the reproduction
//! actually uses:
//!
//! * [`rng`] — `SplitMix64` and `xoshiro256**` PRNGs behind a
//!   rand-0.8-compatible trait surface (`Rng`, `SeedableRng`, `SmallRng`,
//!   `SliceRandom`), so the simulation code keeps its idiomatic
//!   `rng.gen_range(..)` / `rng.gen::<f64>()` call sites,
//! * [`json`] — a minimal JSON value type with an emitter (and a parser used
//!   by tests), for the experiment figure outputs and `trace-gen`,
//! * [`bench`] — a `std::time`-based measurement harness replacing Criterion
//!   for the `crates/bench` suite,
//! * [`par`] — a scoped work-stealing thread pool with deterministic
//!   ordered reduction (the rayon-free parallel substrate for the failure
//!   model, chip tester, and experiments suite),
//! * [`calq`] — a deterministic calendar-queue scheduler (plus its
//!   linear-scan slow reference) backing the refresh due-page planes in
//!   `memcon` and `memsim`,
//! * [`codec`] — a little-endian binary encoder/decoder used by the durable
//!   state store (`crates/store`) and the engine snapshot serializers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod calq;
pub mod codec;
pub mod json;
pub mod par;
pub mod rng;
