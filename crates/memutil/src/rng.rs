//! Seedable pseudo-random number generation with a rand-0.8-compatible
//! surface.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state mixer (Steele et al.), used for
//!   seeding and for cheap decorrelated streams,
//! * [`Xoshiro256StarStar`] — `xoshiro256**` (Blackman & Vigna), the
//!   general-purpose generator; [`SmallRng`] aliases it so call sites read
//!   exactly as they did under `rand::rngs::SmallRng`.
//!
//! The trait surface mirrors the subset of `rand` 0.8 the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//! float ranges), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`SliceRandom`] (`shuffle`/`choose`). Sampling is deterministic for a
//! given seed across platforms; no global or thread-local state exists, so
//! every stream must be explicitly seeded — which is exactly what a
//! reproducible simulator wants.

use std::ops::{Range, RangeInclusive};

/// A source of raw 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from raw random bits (the analogue of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Bias-free uniform integer in `[0, span)` via Lemire's multiply-shift
/// rejection method. `span` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty float range");
        let u: f64 = f64::from_rng(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range over empty float range");
        let u: f64 = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// Random operations on slices (the analogue of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// `SplitMix64` (Steele, Lea, Flood): one 64-bit word of state, equidistant
/// jumps through a bijective mix. Used for seeding and cheap seed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator starting at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// `xoshiro256**` (Blackman & Vigna): 256-bit state, excellent statistical
/// quality, sub-nanosecond generation. The workspace's general-purpose PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Expose the 256-bit internal state so a generator mid-stream can be
    /// persisted (durable snapshots) and resumed bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a persisted [`state`](Self::state). The
    /// all-zero state is a fixed point of xoshiro and is rejected.
    pub fn from_state(s: [u64; 4]) -> Result<Self, String> {
        if s == [0, 0, 0, 0] {
            return Err("xoshiro256**: all-zero state is invalid".to_string());
        }
        Ok(Xoshiro256StarStar { s })
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256StarStar {
    /// Expands the seed through [`SplitMix64`] as the xoshiro authors
    /// recommend, guaranteeing a non-zero state for every seed.
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

/// The workspace's default small, fast generator (drop-in for
/// `rand::rngs::SmallRng`).
pub type SmallRng = Xoshiro256StarStar;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c test run.
        let mut rng = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first[0], 6457827717110365317);
        assert_eq!(first[1], 3203168211198807973);
        assert_eq!(first[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        assert_ne!(r.s, [0; 4], "SplitMix expansion avoids the all-zero state");
        let words: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains_uniformly() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket {i} count {c} far from uniform 10000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_returns_none_on_empty() {
        let mut r = SmallRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut r), None);
        let one = [9u8];
        assert_eq!(one.choose(&mut r), Some(&9));
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn sample(mut rng: impl Rng) -> f64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(8);
        let x = sample(&mut r);
        let y = sample(&mut r);
        assert_ne!(x, y);
    }
}
