//! Deterministic calendar queue — a bucket-wheel scheduler for "which ids
//! are due by time `t`" queries whose cost tracks the number of *due* ids,
//! not the total population.
//!
//! Built for the MEMCON refresh planes (per-page HI-REF/LO-REF refresh due
//! times in `memcon`, per-row multi-rate bins in `memsim`): populations are
//! large, per-tick due sets are small, and every consumer must be
//! bit-reproducible. The design is the classic calendar queue with lazy
//! deletion:
//!
//! * an id's authoritative due time lives in a flat `due` array
//!   (`u64::MAX` = unscheduled) — O(1) schedule/unschedule/query,
//! * buckets hold `(id, due)` entries placed at `slot(due) % n_buckets`;
//!   rescheduling leaves the old entry behind as a *stale* entry, dropped
//!   when its bucket is swept (entry due ≠ authoritative due),
//! * [`CalendarQueue::pop_due`] sweeps the wheel from the last sweep
//!   position to `slot(now)`, so the amortized cost per pop is the number
//!   of due ids plus the slots crossed — independent of population size.
//!   A time jump of more than one revolution degenerates to a single full
//!   sweep of every bucket (still one pass, never per-slot).
//!
//! Determinism: pops are emitted sorted by `(due, id)`; there are no hash
//! containers, no wall-clock reads, and no dependence on insertion order.
//! Entries scheduled beyond one wheel revolution are re-examined once per
//! revolution and kept — correct, with O(1) churn per revolution per entry.
//!
//! [`ScanQueue`] is the retained slow reference: the same contract
//! implemented as a full linear scan of the `due` array per pop. The
//! property tests in this module (and the consumers' equivalence suites)
//! pin the wheel bit-identical to it.

/// Sentinel in the due array: id is not scheduled.
const UNSCHEDULED: u64 = u64::MAX;

/// A `(due, id)` pair emitted by [`CalendarQueue::pop_due`] /
/// [`ScanQueue::pop_due`], ascending in `(due, id)`.
pub type DueEntry = (u64, u64);

/// Calendar-queue scheduler over ids `0..n_ids`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalendarQueue {
    slot_ns: u64,
    bucket_mask: u64,
    buckets: Vec<Vec<(u64, u64)>>, // (id, due) entries, lazily deleted
    due: Vec<u64>,
    cursor: u64, // absolute slot index of the next unfinished sweep slot
    len: usize,
    scratch: Vec<DueEntry>,
}

impl CalendarQueue {
    /// Creates a queue for ids `0..n_ids` with the given slot width (ticks
    /// per bucket) and at least `min_buckets` buckets (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `slot_ns` is zero.
    #[must_use]
    pub fn new(n_ids: usize, slot_ns: u64, min_buckets: usize) -> Self {
        assert!(slot_ns > 0, "calendar queue slot width must be positive");
        let n_buckets = min_buckets.max(2).next_power_of_two();
        CalendarQueue {
            slot_ns,
            bucket_mask: n_buckets as u64 - 1,
            buckets: vec![Vec::new(); n_buckets],
            due: vec![UNSCHEDULED; n_ids],
            cursor: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of currently scheduled ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no id is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id's scheduled due time, if any.
    #[must_use]
    pub fn due_of(&self, id: u64) -> Option<u64> {
        match self.due[id as usize] {
            UNSCHEDULED => None,
            due => Some(due),
        }
    }

    #[inline]
    fn slot_of(&self, t: u64) -> u64 {
        t / self.slot_ns
    }

    /// Schedules (or reschedules) `id` to come due at `due`. A due time
    /// earlier than the last [`CalendarQueue::pop_due`] horizon is emitted
    /// on the next pop.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `due` is `u64::MAX` (the
    /// unscheduled sentinel).
    pub fn schedule(&mut self, id: u64, due: u64) {
        assert!(due != UNSCHEDULED, "u64::MAX is the unscheduled sentinel");
        if self.due[id as usize] == UNSCHEDULED {
            self.len += 1;
        }
        self.due[id as usize] = due;
        // Late schedules (due slot already swept past) park in the cursor
        // slot so the next sweep finds them immediately.
        let slot = self.slot_of(due).max(self.cursor);
        let bucket = (slot & self.bucket_mask) as usize;
        self.buckets[bucket].push((id, due));
    }

    /// Unschedules `id`; returns whether it was scheduled. The bucket entry
    /// is left behind and lazily dropped on sweep.
    pub fn unschedule(&mut self, id: u64) -> bool {
        if self.due[id as usize] == UNSCHEDULED {
            return false;
        }
        self.due[id as usize] = UNSCHEDULED;
        self.len -= 1;
        true
    }

    /// Pops every id due at or before `now`, appending `(due, id)` pairs to
    /// `out` in ascending `(due, id)` order and unscheduling them. `now`
    /// should be monotone across calls (an older `now` simply finds nothing
    /// new).
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<DueEntry>) {
        let mut collected = std::mem::take(&mut self.scratch);
        collected.clear();
        let target = self.slot_of(now);
        if target >= self.cursor + self.bucket_mask + 1 {
            // Jumped a full revolution or more: one pass over every bucket.
            for bucket in &mut self.buckets {
                Self::sweep_bucket(bucket, &mut self.due, &mut self.len, now, &mut collected);
            }
            self.cursor = target;
        } else {
            // Finished slots strictly before `target`, then the partial
            // current slot (kept entries there are re-examined next call).
            let mut slot = self.cursor;
            while slot <= target {
                let bucket = &mut self.buckets[(slot & self.bucket_mask) as usize];
                Self::sweep_slot(
                    bucket,
                    &mut self.due,
                    &mut self.len,
                    slot,
                    now,
                    self.slot_ns,
                    &mut collected,
                );
                slot += 1;
            }
            self.cursor = target;
        }
        collected.sort_unstable();
        out.extend_from_slice(&collected);
        self.scratch = collected;
    }

    /// Full-revolution sweep: collect live entries due by `now`, drop stale
    /// ones, keep the rest.
    fn sweep_bucket(
        bucket: &mut Vec<(u64, u64)>,
        due: &mut [u64],
        len: &mut usize,
        now: u64,
        collected: &mut Vec<DueEntry>,
    ) {
        bucket.retain(|&(id, entry_due)| {
            if due[id as usize] != entry_due {
                return false; // stale (rescheduled/unscheduled/popped)
            }
            if entry_due <= now {
                due[id as usize] = UNSCHEDULED;
                *len -= 1;
                collected.push((entry_due, id));
                return false;
            }
            true
        });
    }

    /// Single-slot sweep: additionally keeps live future-revolution entries
    /// that merely share the bucket modulo the wheel size.
    #[allow(clippy::too_many_arguments)]
    fn sweep_slot(
        bucket: &mut Vec<(u64, u64)>,
        due: &mut [u64],
        len: &mut usize,
        slot: u64,
        now: u64,
        slot_ns: u64,
        collected: &mut Vec<DueEntry>,
    ) {
        bucket.retain(|&(id, entry_due)| {
            if due[id as usize] != entry_due {
                return false; // stale
            }
            // Live: due in this slot (or a late-parked earlier one) and
            // within the horizon → emit; otherwise it belongs to the partial
            // current slot or a later revolution → keep.
            if entry_due / slot_ns <= slot && entry_due <= now {
                due[id as usize] = UNSCHEDULED;
                *len -= 1;
                collected.push((entry_due, id));
                return false;
            }
            true
        });
    }
}

/// Slow reference: the same scheduling contract as [`CalendarQueue`],
/// implemented as a full linear scan of the due array on every pop —
/// O(population) per tick, trivially correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanQueue {
    due: Vec<u64>,
    len: usize,
}

impl ScanQueue {
    /// Creates a scan-based queue for ids `0..n_ids`.
    #[must_use]
    pub fn new(n_ids: usize) -> Self {
        ScanQueue {
            due: vec![UNSCHEDULED; n_ids],
            len: 0,
        }
    }

    /// Number of currently scheduled ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no id is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id's scheduled due time, if any.
    #[must_use]
    pub fn due_of(&self, id: u64) -> Option<u64> {
        match self.due[id as usize] {
            UNSCHEDULED => None,
            due => Some(due),
        }
    }

    /// Schedules (or reschedules) `id` to come due at `due`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `due` is `u64::MAX`.
    pub fn schedule(&mut self, id: u64, due: u64) {
        assert!(due != UNSCHEDULED, "u64::MAX is the unscheduled sentinel");
        if self.due[id as usize] == UNSCHEDULED {
            self.len += 1;
        }
        self.due[id as usize] = due;
    }

    /// Unschedules `id`; returns whether it was scheduled.
    pub fn unschedule(&mut self, id: u64) -> bool {
        if self.due[id as usize] == UNSCHEDULED {
            return false;
        }
        self.due[id as usize] = UNSCHEDULED;
        self.len -= 1;
        true
    }

    /// Pops every id due at or before `now` (linear scan), appending
    /// ascending `(due, id)` pairs to `out`.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<DueEntry>) {
        let start = out.len();
        for (id, slot) in self.due.iter_mut().enumerate() {
            if *slot != UNSCHEDULED && *slot <= now {
                out.push((*slot, id as u64));
                *slot = UNSCHEDULED;
                self.len -= 1;
            }
        }
        out[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng, SmallRng};

    #[test]
    fn pops_in_due_then_id_order() {
        let mut q = CalendarQueue::new(16, 10, 8);
        q.schedule(3, 25);
        q.schedule(1, 25);
        q.schedule(7, 5);
        let mut out = Vec::new();
        q.pop_due(30, &mut out);
        assert_eq!(out, vec![(5, 7), (25, 1), (25, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn future_entries_stay() {
        let mut q = CalendarQueue::new(4, 10, 4);
        q.schedule(0, 15);
        q.schedule(1, 500); // many revolutions out
        let mut out = Vec::new();
        q.pop_due(20, &mut out);
        assert_eq!(out, vec![(15, 0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.due_of(1), Some(500));
        out.clear();
        q.pop_due(499, &mut out);
        assert!(out.is_empty());
        q.pop_due(500, &mut out);
        assert_eq!(out, vec![(500, 1)]);
    }

    #[test]
    fn reschedule_leaves_no_duplicate() {
        let mut q = CalendarQueue::new(4, 10, 4);
        q.schedule(2, 15);
        q.schedule(2, 35); // stale (2,15) entry remains in its bucket
        q.schedule(2, 15); // back to the original due — identical twin entry
        let mut out = Vec::new();
        q.pop_due(100, &mut out);
        assert_eq!(out, vec![(15, 2)], "lazy deletion must deduplicate");
        assert!(q.is_empty());
    }

    #[test]
    fn unschedule_is_lazy_but_final() {
        let mut q = CalendarQueue::new(4, 10, 4);
        q.schedule(1, 15);
        assert!(q.unschedule(1));
        assert!(!q.unschedule(1));
        let mut out = Vec::new();
        q.pop_due(100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn late_schedule_is_emitted_next_pop() {
        let mut q = CalendarQueue::new(4, 10, 4);
        let mut out = Vec::new();
        q.pop_due(1000, &mut out); // cursor far ahead
        q.schedule(3, 50); // already past
        out.clear();
        q.pop_due(1001, &mut out);
        assert_eq!(out, vec![(50, 3)]);
    }

    #[test]
    fn deep_time_jump_is_single_pass() {
        let mut q = CalendarQueue::new(64, 10, 8);
        for id in 0..64u64 {
            q.schedule(id, 10 + id * 7);
        }
        let mut out = Vec::new();
        q.pop_due(1_000_000, &mut out);
        assert_eq!(out.len(), 64);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert!(q.is_empty());
    }

    /// Seeded equivalence property: wheel vs linear-scan reference over
    /// random schedule/unschedule/pop interleavings with monotone now.
    #[test]
    fn prop_matches_scan_reference() {
        for seed in [0xCA1E_0001u64, 0xCA1E_0002, 0xCA1E_0003] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n_ids = 48usize;
            let mut wheel = CalendarQueue::new(n_ids, 16, 8);
            let mut scan = ScanQueue::new(n_ids);
            let mut now = 0u64;
            for _ in 0..2000 {
                match rng.gen_range(0u32..10) {
                    0..=4 => {
                        let id = rng.gen_range(0u64..n_ids as u64);
                        let due = now + rng.gen_range(0u64..400);
                        wheel.schedule(id, due);
                        scan.schedule(id, due);
                    }
                    5 => {
                        let id = rng.gen_range(0u64..n_ids as u64);
                        assert_eq!(wheel.unschedule(id), scan.unschedule(id));
                    }
                    6 => {
                        // occasional deep jump past a full revolution
                        now += rng.gen_range(0u64..1000);
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        wheel.pop_due(now, &mut a);
                        scan.pop_due(now, &mut b);
                        assert_eq!(a, b, "deep pop diverged at now={now}");
                    }
                    _ => {
                        now += rng.gen_range(0u64..40);
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        wheel.pop_due(now, &mut a);
                        scan.pop_due(now, &mut b);
                        assert_eq!(a, b, "pop diverged at now={now}");
                    }
                }
                assert_eq!(wheel.len(), scan.len());
                let probe = rng.gen_range(0u64..n_ids as u64);
                assert_eq!(wheel.due_of(probe), scan.due_of(probe));
            }
        }
    }
}
