//! A `std::time`-based benchmark harness with a Criterion-shaped API.
//!
//! The `crates/bench` suite was written against Criterion
//! (`benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`). Criterion cannot be fetched in the
//! hermetic offline build, so this module re-implements the narrow API
//! surface those benches use over `std::time::Instant`: per-benchmark
//! warmup, a bounded number of timed samples, and a median-of-samples
//! report with optional element/byte throughput.
//!
//! This is a measurement harness, not a statistics package — no outlier
//! rejection or regression testing. Medians over ≥10 samples are stable
//! enough to compare hot-path changes, which is what the suite is for.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted for API
/// compatibility; every batch is measured individually here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining an optional function name with a
/// parameter value (Criterion-shaped; used by parameter sweeps).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying only the parameter value (`from_parameter(64)` →
    /// `"64"`).
    #[must_use]
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// An id with both a function name and a parameter (`"sort/64"`).
    #[must_use]
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    time_budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, time_budget: Duration) -> Self {
        Bencher {
            samples: Vec::with_capacity(target_samples),
            target_samples,
            time_budget,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget_start = Instant::now();
        // Warmup: one untimed run (also primes caches/allocations).
        let input = setup();
        let _ = std::hint::black_box(routine(input));
        while self.samples.len() < self.target_samples && budget_start.elapsed() < self.time_budget
        {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            let _ = std::hint::black_box(out);
            self.samples.push(dt);
        }
    }
}

/// One benchmark's reported result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Optional throughput declared by the benchmark.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    fn render(&self) -> String {
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.1} Melem/s)", n as f64 / self.median_ns * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / self.median_ns * 1e9 / (1 << 20) as f64
                )
            }
        });
        format!(
            "{:<44} median {:>14} ns/iter  min {:>14} ns  n={}{}",
            self.name,
            group_digits(self.median_ns),
            group_digits(self.min_ns),
            self.samples,
            rate.unwrap_or_default()
        )
    }
}

fn group_digits(ns: f64) -> String {
    let raw = format!("{:.0}", ns.max(0.0));
    let mut out = String::new();
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// The harness: collects results and prints a summary (Criterion-shaped).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    time_budget: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            time_budget: Duration::from_secs(3),
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.time_budget = budget;
        self
    }

    /// Applies a substring filter from the command line (`cargo bench foo`
    /// passes `foo`; harness flags like `--bench` are ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.run(name, None, None, body);
        self
    }

    fn run(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut body: impl FnMut(&mut Bencher),
    ) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher::new(sample_size.unwrap_or(self.sample_size), self.time_budget);
        body(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{name:<44} (no samples collected)");
            return;
        }
        let mut ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9)
            .collect();
        ns.sort_by(f64::total_cmp);
        let result = BenchResult {
            name,
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            samples: ns.len(),
            throughput,
        };
        println!("{}", result.render());
        self.results.push(result);
    }

    /// Prints the closing line and returns the collected results.
    pub fn final_summary(&mut self) -> Vec<BenchResult> {
        println!("{} benchmarks measured", self.results.len());
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group (id is `group/function`).
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        self.criterion
            .run(id, self.throughput, self.sample_size, body);
        self
    }

    /// Runs one benchmark over an explicit input (id is
    /// `group/id`; the input is passed by reference to the body).
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run(full, self.throughput, self.sample_size, |b| body(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Defines a bench group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            let _ = criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let results = c.final_summary();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].samples, 5);
        assert!(results[0].median_ns >= 0.0);
    }

    #[test]
    fn groups_prefix_names_and_carry_throughput() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(100));
            g.bench_function("inner", |b| b.iter(|| std::hint::black_box(42)));
            g.finish();
        }
        let results = c.final_summary();
        assert_eq!(results[0].name, "grp/inner");
        assert_eq!(results[0].throughput, Some(Throughput::Elements(100)));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.final_summary()[0].samples, 3);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1234567.0), "1,234,567");
        assert_eq!(group_digits(12.0), "12");
        assert_eq!(group_digits(0.4), "0");
    }
}
