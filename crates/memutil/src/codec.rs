//! Minimal little-endian binary codec shared by snapshot and WAL encoders.
//!
//! The durability layer persists engine state as flat streams of fixed-width
//! integers (floats travel as IEEE-754 bit patterns). Keeping the codec here,
//! below every other crate, lets `memcon` encode its own state without the
//! store crate needing to know engine internals.

/// Append-only encoder producing a flat little-endian byte stream.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create an encoder with a pre-sized buffer.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are persisted as raw bit patterns so round-trips are exact.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed slice of u64 values.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.u64(*x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder and return the byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based decoder over a byte slice; every read is bounds-checked and
/// returns a descriptive error instead of panicking on truncated input.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor has consumed the whole slice.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current cursor offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "codec: truncated input reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a bool byte, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("codec: invalid bool byte {v}")),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4, "u32")?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8, "u64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` persisted as its bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| "codec: byte length overflow".to_string())?;
        self.take(len, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| "codec: invalid utf-8 string".to_string())
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, String> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| "codec: slice length overflow".to_string())?;
        if self.remaining() < len.saturating_mul(8) {
            return Err(format!(
                "codec: truncated u64 slice: claimed {len} entries, {} bytes remain",
                self.remaining()
            ));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Assert the stream is fully consumed (catches layout drift).
    pub fn finish(self, what: &str) -> Result<(), String> {
        if self.is_done() {
            Ok(())
        } else {
            Err(format!(
                "codec: {} bytes of trailing garbage after {what}",
                self.remaining()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.bool(false);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.125);
        e.bytes(b"hello");
        e.str("memcon");
        e.u64_slice(&[1, 2, 3]);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.str().unwrap(), "memcon");
        assert_eq!(d.u64_vec().unwrap(), vec![1, 2, 3]);
        d.finish("round trip").unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert!(d.u64().is_err());
        let mut d = Dec::new(&[8, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5e-300, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut e = Enc::new();
            e.f64(v);
            let b = e.into_bytes();
            let got = Dec::new(&b).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut e = Enc::new();
        e.u64(1);
        e.u8(9);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        d.u64().unwrap();
        assert!(d.finish("partial").is_err());
    }
}
