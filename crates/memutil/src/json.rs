//! A minimal JSON value type with an emitter and a small parser.
//!
//! The workspace needs JSON in exactly two places — the `trace-gen` export
//! format and the experiment figure outputs — so this module implements just
//! enough of RFC 8259 to serve them: objects (insertion-ordered), arrays,
//! strings with escaping, integers emitted losslessly, finite floats, bools,
//! and null. The parser exists primarily so tests can round-trip what the
//! emitter produces.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, emitted without a decimal point.
    Int(i64),
    /// An unsigned integer, emitted without a decimal point.
    UInt(u64),
    /// A finite float. Non-finite values are emitted as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    #[must_use]
    pub fn arr() -> Self {
        Json::Arr(Vec::new())
    }

    /// Adds (or replaces) `key` on an object, builder-style.
    ///
    /// On a non-object this is a no-op (and a `debug_assert!` failure in
    /// debug builds — it is always a caller bug).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Adds (or replaces) `key` on an object in place.
    ///
    /// On a non-object this is a no-op (and a `debug_assert!` failure in
    /// debug builds — it is always a caller bug).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(fields) = self else {
            debug_assert!(false, "Json::set on a non-object");
            return;
        };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }

    /// Appends to an array, builder-style.
    ///
    /// On a non-array this returns `self` unchanged (and is a
    /// `debug_assert!` failure in debug builds — it is always a caller bug).
    #[must_use]
    pub fn push(mut self, value: impl Into<Json>) -> Self {
        let Json::Arr(items) = &mut self else {
            debug_assert!(false, "Json::push on a non-array");
            return self;
        };
        items.push(value.into());
        self
    }

    /// Looks up a key on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a u64 if it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, i));
            }
            Json::UInt(u) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, u));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is shortest-round-trip in Rust; add `.0`
                    // when it printed as an integer so the value re-parses
                    // as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (used by tests to round-trip emitter output).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn itoa_buffer() -> String {
    String::with_capacity(20)
}

fn write_display<T: fmt::Display>(buf: &mut String, value: T) -> &str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{value}");
    buf
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}
impl From<i32> for Json {
    fn from(i: i32) -> Self {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Self {
        Json::UInt(u64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Self {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl From<&BTreeMap<String, f64>> for Json {
    fn from(m: &BTreeMap<String, f64>) -> Self {
        Json::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                .collect(),
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_compact_objects_in_insertion_order() {
        let j = Json::obj()
            .field("name", "fig14")
            .field("reduction", 0.75)
            .field("pages", 8192u64)
            .field("ok", true);
        assert_eq!(
            j.emit(),
            r#"{"name":"fig14","reduction":0.75,"pages":8192,"ok":true}"#
        );
    }

    #[test]
    fn integers_are_lossless() {
        let big = u64::MAX;
        let j = Json::obj().field("x", big);
        assert_eq!(j.emit(), format!("{{\"x\":{big}}}"));
        let back = Json::parse(&j.emit()).unwrap();
        assert_eq!(back.get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_reparse_as_floats() {
        let j = Json::Float(2.0);
        assert_eq!(j.emit(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).emit(), "null");
        assert_eq!(Json::Float(f64::INFINITY).emit(), "null");
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — unicode";
        let emitted = Json::Str(nasty.to_string()).emit();
        assert_eq!(Json::parse(&emitted).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn arrays_and_nesting_round_trip() {
        let j = Json::arr()
            .push(1u64)
            .push(Json::obj().field("xs", vec![1.5f64, 2.5, -3.0]))
            .push(Json::Null);
        let back = Json::parse(&j.emit()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("true false").is_err());
    }

    #[test]
    fn parser_accepts_whitespace() {
        let j = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
        );
        assert_eq!(j.get("b"), Some(&Json::Null));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut j = Json::obj().field("k", 1u64);
        j.set("k", 2u64);
        assert_eq!(j.emit(), r#"{"k":2}"#);
    }

    #[test]
    fn negative_integers_parse_as_int() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("-42").unwrap().as_f64(), Some(-42.0));
    }
}
