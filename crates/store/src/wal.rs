//! WAL record framing and the truncating recovery scan.
//!
//! Every record travels as one frame:
//!
//! ```text
//! [ payload_len: u32 LE ][ crc32(payload): u32 LE ][ payload ... ]
//! ```
//!
//! The scan walks a segment front to back and stops at the first frame
//! that is incomplete, fails its checksum, or decodes to garbage. Bytes
//! from that point on are a *torn tail*: the scan reports how many, and
//! the store truncates the file back to the last valid record. A torn
//! tail can only lose suffix records — everything before it was verified
//! by checksum — which is exactly the contract an append-only log with
//! crash-mid-write semantics can honor.

use crate::record::Record;

/// Frame header size: payload length + checksum.
pub const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, the zlib/gzip polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Builds the on-disk frame for `payload`.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning one WAL segment.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Records recovered, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (truncation point for repair).
    pub valid_len: u64,
    /// Whether the segment ended in a torn/corrupt tail.
    pub torn: bool,
}

/// Scans a whole segment image, stopping at the first torn or corrupt
/// frame. Pure — the store layers file IO and fault injection on top.
#[must_use]
pub fn scan_bytes(buf: &[u8]) -> ScanResult {
    let mut out = ScanResult::default();
    let mut pos = 0usize;
    while buf.len() - pos >= FRAME_HEADER {
        let mut word = [0u8; 4];
        word.copy_from_slice(&buf[pos..pos + 4]);
        let len = u32::from_le_bytes(word) as usize;
        word.copy_from_slice(&buf[pos + 4..pos + 8]);
        let want_crc = u32::from_le_bytes(word);
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            break; // length field is garbage
        };
        if end > buf.len() {
            break; // incomplete frame: torn mid-append
        }
        let payload = &buf[pos + FRAME_HEADER..end];
        if crc32(payload) != want_crc {
            break; // checksum mismatch: corrupt record
        }
        let Ok(record) = Record::decode(payload) else {
            break; // checksummed but undecodable: treat as corrupt
        };
        out.records.push(record);
        pos = end;
    }
    out.valid_len = pos as u64;
    out.torn = pos < buf.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn log_of(records: &[Record]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&frame(&r.encode()));
        }
        buf
    }

    fn sample(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Progress {
                quantum: i,
                now_ns: i * 7,
            })
            .collect()
    }

    #[test]
    fn scan_round_trips_a_clean_log() {
        let records = sample(25);
        let buf = log_of(&records);
        let scan = scan_bytes(&buf);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert!(!scan.torn);
    }

    #[test]
    fn scan_truncates_at_every_possible_torn_offset() {
        let records = sample(4);
        let buf = log_of(&records);
        let frame_len = frame(&records[0].encode()).len();
        for cut in 0..buf.len() {
            let scan = scan_bytes(&buf[..cut]);
            let whole = cut / frame_len;
            assert_eq!(scan.records.len(), whole, "cut={cut}");
            assert_eq!(scan.valid_len as usize, whole * frame_len, "cut={cut}");
            assert_eq!(scan.torn, cut % frame_len != 0, "cut={cut}");
            assert_eq!(scan.records[..], records[..whole]);
        }
    }

    #[test]
    fn scan_stops_at_a_corrupt_checksum_mid_log() {
        let records = sample(6);
        let mut buf = log_of(&records);
        let frame_len = frame(&records[0].encode()).len();
        // Flip one payload bit in the third record.
        buf[2 * frame_len + FRAME_HEADER] ^= 0x01;
        let scan = scan_bytes(&buf);
        assert_eq!(scan.records, records[..2]);
        assert!(scan.torn);
        assert_eq!(scan.valid_len as usize, 2 * frame_len);
    }

    #[test]
    fn scan_stops_at_a_corrupt_length_field() {
        let records = sample(3);
        let mut buf = log_of(&records);
        // Smash the second frame's length to a huge value.
        let frame_len = frame(&records[0].encode()).len();
        buf[frame_len] = 0xFF;
        buf[frame_len + 1] = 0xFF;
        buf[frame_len + 2] = 0xFF;
        buf[frame_len + 3] = 0xFF;
        let scan = scan_bytes(&buf);
        assert_eq!(scan.records, records[..1]);
        assert!(scan.torn);
    }

    #[test]
    fn empty_input_scans_clean() {
        let scan = scan_bytes(&[]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.torn);
    }
}
