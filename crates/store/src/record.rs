//! Typed WAL records: the MEMCON state transitions worth journaling.
//!
//! Records are compact tagged binary values (one tag byte, then
//! little-endian fields via [`memutil::codec`]). The WAL is an *audit
//! trail with a testable tail*: recovery state itself travels in
//! snapshots, while records document every transition between snapshot
//! points and give the torn-tail machinery real frames to truncate.

use memutil::codec::{Dec, Enc};

/// A single journaled MEMCON state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A profiling run started.
    RunBegin {
        /// Pages under management.
        n_pages: u64,
        /// Planned run horizon in trace nanoseconds.
        duration_ns: u64,
        /// Test-quantum length in nanoseconds.
        quantum_ns: u64,
    },
    /// A retention test was dispatched to a test slot.
    TestStarted {
        /// Page under test.
        page: u64,
        /// Quantum index at dispatch.
        quantum: u64,
    },
    /// A retention test completed and its verdict was recorded.
    TestCompleted {
        /// Page under test.
        page: u64,
        /// Verdict discriminant (pass / fail / ambiguous).
        verdict: u8,
        /// Completion time in trace nanoseconds.
        end_ns: u64,
    },
    /// A page changed refresh bin.
    BinChanged {
        /// The page.
        page: u64,
        /// New bin discriminant.
        state: u8,
        /// Transition time in trace nanoseconds.
        at_ns: u64,
    },
    /// A page was pinned to HI-REF (escape response).
    PinHigh {
        /// The page.
        page: u64,
        /// Pin time in trace nanoseconds.
        at_ns: u64,
    },
    /// A HI-REF pin was released after re-test.
    PinReleased {
        /// The page.
        page: u64,
        /// Release time in trace nanoseconds.
        at_ns: u64,
    },
    /// A page entered the PRIL write-interval tracker.
    PrilEntered {
        /// The page.
        page: u64,
        /// Quantum index at entry.
        quantum: u64,
    },
    /// A page aged out of PRIL tracking as a test candidate.
    PrilEvicted {
        /// The page.
        page: u64,
        /// Quantum index at eviction.
        quantum: u64,
    },
    /// Quantum-boundary progress marker (pairs with cadence snapshots).
    Progress {
        /// Quantum index just completed.
        quantum: u64,
        /// Trace time in nanoseconds.
        now_ns: u64,
    },
    /// Fleet epoch barrier marker.
    EpochSample {
        /// Epoch index just completed.
        epoch: u64,
    },
    /// The run finished cleanly.
    RunFinished {
        /// Final trace time in nanoseconds.
        at_ns: u64,
    },
    /// A recovery replayed this store (journaled *after* recovery, in the
    /// fresh post-recovery segment).
    RecoveryEvent {
        /// Records replayed from the WAL tail.
        replayed_records: u64,
        /// Bytes discarded from a torn or corrupt tail.
        truncated_bytes: u64,
    },
}

const TAG_RUN_BEGIN: u8 = 0;
const TAG_TEST_STARTED: u8 = 1;
const TAG_TEST_COMPLETED: u8 = 2;
const TAG_BIN_CHANGED: u8 = 3;
const TAG_PIN_HIGH: u8 = 4;
const TAG_PIN_RELEASED: u8 = 5;
const TAG_PRIL_ENTERED: u8 = 6;
const TAG_PRIL_EVICTED: u8 = 7;
const TAG_PROGRESS: u8 = 8;
const TAG_EPOCH_SAMPLE: u8 = 9;
const TAG_RUN_FINISHED: u8 = 10;
const TAG_RECOVERY_EVENT: u8 = 11;

impl Record {
    /// Encode to the tagged binary payload framed by the WAL.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(32);
        match *self {
            Record::RunBegin {
                n_pages,
                duration_ns,
                quantum_ns,
            } => {
                e.u8(TAG_RUN_BEGIN);
                e.u64(n_pages);
                e.u64(duration_ns);
                e.u64(quantum_ns);
            }
            Record::TestStarted { page, quantum } => {
                e.u8(TAG_TEST_STARTED);
                e.u64(page);
                e.u64(quantum);
            }
            Record::TestCompleted {
                page,
                verdict,
                end_ns,
            } => {
                e.u8(TAG_TEST_COMPLETED);
                e.u64(page);
                e.u8(verdict);
                e.u64(end_ns);
            }
            Record::BinChanged { page, state, at_ns } => {
                e.u8(TAG_BIN_CHANGED);
                e.u64(page);
                e.u8(state);
                e.u64(at_ns);
            }
            Record::PinHigh { page, at_ns } => {
                e.u8(TAG_PIN_HIGH);
                e.u64(page);
                e.u64(at_ns);
            }
            Record::PinReleased { page, at_ns } => {
                e.u8(TAG_PIN_RELEASED);
                e.u64(page);
                e.u64(at_ns);
            }
            Record::PrilEntered { page, quantum } => {
                e.u8(TAG_PRIL_ENTERED);
                e.u64(page);
                e.u64(quantum);
            }
            Record::PrilEvicted { page, quantum } => {
                e.u8(TAG_PRIL_EVICTED);
                e.u64(page);
                e.u64(quantum);
            }
            Record::Progress { quantum, now_ns } => {
                e.u8(TAG_PROGRESS);
                e.u64(quantum);
                e.u64(now_ns);
            }
            Record::EpochSample { epoch } => {
                e.u8(TAG_EPOCH_SAMPLE);
                e.u64(epoch);
            }
            Record::RunFinished { at_ns } => {
                e.u8(TAG_RUN_FINISHED);
                e.u64(at_ns);
            }
            Record::RecoveryEvent {
                replayed_records,
                truncated_bytes,
            } => {
                e.u8(TAG_RECOVERY_EVENT);
                e.u64(replayed_records);
                e.u64(truncated_bytes);
            }
        }
        e.into_bytes()
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a description when the payload is truncated, carries an
    /// unknown tag, or has trailing bytes — all treated as corruption by
    /// the recovery scan.
    pub fn decode(payload: &[u8]) -> Result<Record, String> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            TAG_RUN_BEGIN => Record::RunBegin {
                n_pages: d.u64()?,
                duration_ns: d.u64()?,
                quantum_ns: d.u64()?,
            },
            TAG_TEST_STARTED => Record::TestStarted {
                page: d.u64()?,
                quantum: d.u64()?,
            },
            TAG_TEST_COMPLETED => Record::TestCompleted {
                page: d.u64()?,
                verdict: d.u8()?,
                end_ns: d.u64()?,
            },
            TAG_BIN_CHANGED => Record::BinChanged {
                page: d.u64()?,
                state: d.u8()?,
                at_ns: d.u64()?,
            },
            TAG_PIN_HIGH => Record::PinHigh {
                page: d.u64()?,
                at_ns: d.u64()?,
            },
            TAG_PIN_RELEASED => Record::PinReleased {
                page: d.u64()?,
                at_ns: d.u64()?,
            },
            TAG_PRIL_ENTERED => Record::PrilEntered {
                page: d.u64()?,
                quantum: d.u64()?,
            },
            TAG_PRIL_EVICTED => Record::PrilEvicted {
                page: d.u64()?,
                quantum: d.u64()?,
            },
            TAG_PROGRESS => Record::Progress {
                quantum: d.u64()?,
                now_ns: d.u64()?,
            },
            TAG_EPOCH_SAMPLE => Record::EpochSample { epoch: d.u64()? },
            TAG_RUN_FINISHED => Record::RunFinished { at_ns: d.u64()? },
            TAG_RECOVERY_EVENT => Record::RecoveryEvent {
                replayed_records: d.u64()?,
                truncated_bytes: d.u64()?,
            },
            tag => return Err(format!("record: unknown tag {tag}")),
        };
        d.finish("record")?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::RunBegin {
                n_pages: 4096,
                duration_ns: 1_000_000_000,
                quantum_ns: 64_000_000,
            },
            Record::TestStarted {
                page: 7,
                quantum: 3,
            },
            Record::TestCompleted {
                page: 7,
                verdict: 1,
                end_ns: 123_456,
            },
            Record::BinChanged {
                page: 9,
                state: 2,
                at_ns: 42,
            },
            Record::PinHigh { page: 1, at_ns: 5 },
            Record::PinReleased { page: 1, at_ns: 9 },
            Record::PrilEntered {
                page: 20,
                quantum: 1,
            },
            Record::PrilEvicted {
                page: 20,
                quantum: 2,
            },
            Record::Progress {
                quantum: 11,
                now_ns: 999,
            },
            Record::EpochSample { epoch: 6 },
            Record::RunFinished { at_ns: 777 },
            Record::RecoveryEvent {
                replayed_records: 12,
                truncated_bytes: 34,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_tags_truncation_and_trailing_bytes() {
        assert!(Record::decode(&[200]).is_err(), "unknown tag");
        assert!(Record::decode(&[]).is_err(), "empty payload");
        let mut bytes = Record::EpochSample { epoch: 1 }.encode();
        bytes.pop();
        assert!(Record::decode(&bytes).is_err(), "truncated field");
        let mut bytes = Record::EpochSample { epoch: 1 }.encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err(), "trailing byte");
    }
}
