//! Binary snapshot files: atomically published, checksum-verified.
//!
//! A snapshot captures the complete engine state at a WAL rotation point.
//! On-disk layout (all little-endian):
//!
//! ```text
//! [ magic: u64 ][ seq: u64 ][ wal_bound: u64 ][ len: u64 ]
//! [ crc32(payload): u32 ][ payload ... ]
//! ```
//!
//! `wal_bound` names the first WAL segment whose records postdate this
//! snapshot; segments below the bound are logically dead (rotation prunes
//! them, and recovery ignores any stragglers an interrupted prune left
//! behind). Publication is write-temp → fsync → rename, so a crash at any
//! point leaves either the old snapshot set or the old set plus one new
//! complete file — never a half-written current snapshot.

use memutil::codec::{Dec, Enc};

use crate::wal::crc32;

/// `MCSNAP01` in ASCII: identifies (and versions) snapshot files.
pub const SNAP_MAGIC: u64 = 0x4D43_534E_4150_3031;

/// A decoded, checksum-verified snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic snapshot sequence number within the store.
    pub seq: u64,
    /// First WAL segment index whose records postdate this snapshot.
    pub wal_bound: u64,
    /// Opaque engine-defined state blob.
    pub payload: Vec<u8>,
}

/// Encodes a snapshot file image. The checksum covers the `seq`,
/// `wal_bound`, and `len` header words *and* the payload, so any flipped
/// bit outside the magic is caught at decode.
#[must_use]
pub fn encode(seq: u64, wal_bound: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::with_capacity(36 + payload.len());
    e.u64(SNAP_MAGIC);
    e.u64(seq);
    e.u64(wal_bound);
    e.u64(payload.len() as u64);
    e.u32(header_crc(seq, wal_bound, payload));
    let mut out = e.into_bytes();
    out.extend_from_slice(payload);
    out
}

fn header_crc(seq: u64, wal_bound: u64, payload: &[u8]) -> u32 {
    let mut h = Enc::with_capacity(24 + payload.len());
    h.u64(seq);
    h.u64(wal_bound);
    h.u64(payload.len() as u64);
    let mut covered = h.into_bytes();
    covered.extend_from_slice(payload);
    crc32(&covered)
}

/// Decodes and verifies a snapshot file image.
///
/// # Errors
///
/// Returns a description when the magic, length, or checksum does not
/// hold — the caller treats the file as corrupt and falls back to the
/// previous snapshot (or refuses recovery), never loading a bad image.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
    let mut d = Dec::new(bytes);
    let magic = d.u64()?;
    if magic != SNAP_MAGIC {
        return Err(format!("snapshot: bad magic {magic:#018x}"));
    }
    let seq = d.u64()?;
    let wal_bound = d.u64()?;
    let len = d.u64()?;
    let want_crc = d.u32()?;
    let len_usize = usize::try_from(len).map_err(|_| "snapshot: length overflow".to_string())?;
    if d.remaining() != len_usize {
        return Err(format!(
            "snapshot: payload length {len} does not match {} trailing bytes",
            d.remaining()
        ));
    }
    let payload = bytes[bytes.len() - len_usize..].to_vec();
    if header_crc(seq, wal_bound, &payload) != want_crc {
        return Err("snapshot: checksum mismatch".to_string());
    }
    Ok(Snapshot {
        seq,
        wal_bound,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let img = encode(3, 7, b"engine-state");
        let snap = decode(&img).unwrap();
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.wal_bound, 7);
        assert_eq!(snap.payload, b"engine-state");
    }

    #[test]
    fn empty_payload_round_trips() {
        let img = encode(0, 0, &[]);
        assert_eq!(decode(&img).unwrap().payload, Vec::<u8>::new());
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let img = encode(5, 9, b"some state bytes");
        for i in 0..img.len() {
            let mut bad = img.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
        // Truncation at any point is detected too.
        for cut in 0..img.len() {
            assert!(decode(&img[..cut]).is_err(), "truncation to {cut} loaded");
        }
    }
}
