//! Durable state store for MEMCON: append-only WAL + atomic snapshots.
//!
//! The paper's thesis is that retention knowledge is expensive to acquire
//! and therefore worth keeping; this crate makes it survive a process
//! death. The shape follows proven WAL practice:
//!
//! * **WAL** — typed state-transition [`Record`]s, each framed
//!   `[len][crc32][payload]` ([`wal`]), appended to numbered segment
//!   files (`wal-<seq>.wal`).
//! * **Snapshots** — opaque engine-state blobs published atomically
//!   (write-temp → fsync → rename, [`snapshot`]) as `snap-<seq>.snap`.
//!   Each snapshot names a `wal_bound`: the first segment whose records
//!   postdate it. Publication rotates the WAL to that bound and prunes
//!   dead segments, so WAL growth is bounded by snapshot cadence.
//! * **Recovery** — [`Store::open`] loads the newest snapshot that
//!   passes its checksum (corrupt ones are reported and deleted, never
//!   loaded), replays the WAL tail above the bound, detects torn or
//!   corrupt tails, truncates the file back to the last valid record,
//!   and reports exactly what it replayed and what it discarded.
//!
//! Three [`DurabilityMode`]s trade safety for speed: `InMemory` (no file
//! IO at all — benches and tests), `Buffered` (files, no fsync — crash
//! consistency relies on the OS), `Strict` (fsync per append and through
//! every snapshot publication step).
//!
//! Fault injection: the store consults the `store.torn_write`,
//! `store.corrupt_record` (append path) and `store.short_read` (recovery
//! scan) sites of an attached [`FaultSession`], so the chaos machinery
//! can exercise every recovery branch deterministically.
//!
//! Telemetry: `store.wal.appends`, `store.wal.bytes`,
//! `store.snap.published`, `store.recovery.replayed_records`, and
//! `store.recovery.truncated_bytes` — all [`telemetry::Class::Deterministic`]
//! (counts of deterministic events), though they describe the durability
//! plane itself: a crashed-and-recovered run legitimately differs from an
//! uninterrupted one in `store.*` (it did extra durability work), which is
//! why the crash gate compares deterministic sections *minus* `store.*`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod record;
pub mod snapshot;
pub mod wal;

pub use record::Record;
pub use snapshot::Snapshot;
pub use wal::{crc32, scan_bytes, ScanResult};

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use faultinject::{FaultPlan, FaultSession, Site};

const WAL_APPENDS: &str = "store.wal.appends";
const WAL_BYTES: &str = "store.wal.bytes";
const SNAPS_PUBLISHED: &str = "store.snap.published";
const RECOVERY_REPLAYED: &str = "store.recovery.replayed_records";
const RECOVERY_TRUNCATED: &str = "store.recovery.truncated_bytes";

/// How many of the newest snapshots survive pruning: the current one plus
/// one fallback in case the newest is found corrupt at recovery.
const KEEP_SNAPSHOTS: u64 = 2;

/// Durability/performance trade-off, selectable per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// All state kept in process memory; no files are touched. Recovery
    /// across processes is impossible — the mode for benches and tests
    /// that want the append path without IO.
    InMemory,
    /// Real files, no fsync: survives process death (the OS flushes),
    /// not power loss. The default.
    #[default]
    Buffered,
    /// fsync per append and through every snapshot publication step
    /// (temp file, rename, containing directory).
    Strict,
}

impl DurabilityMode {
    /// Stable lowercase name (CLI flags, config files).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DurabilityMode::InMemory => "in-memory",
            DurabilityMode::Buffered => "buffered",
            DurabilityMode::Strict => "strict",
        }
    }

    /// Parses [`as_str`](Self::as_str) names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<DurabilityMode> {
        match name {
            "in-memory" => Some(DurabilityMode::InMemory),
            "buffered" => Some(DurabilityMode::Buffered),
            "strict" => Some(DurabilityMode::Strict),
            _ => None,
        }
    }
}

/// Errors surfaced by the store. Corruption is *not* an error at the WAL
/// tail (that is truncated and reported via [`Recovered`]); it is an
/// error when it would mean loading bad state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// File IO failed (path and OS error inside).
    Io(String),
    /// A structural invariant does not hold (bad directory layout,
    /// undecodable snapshot set, refusing to overwrite an existing store).
    Corrupt(String),
    /// The requested state cannot be persisted or recovered (e.g. an
    /// engine whose oracle does not support snapshotting).
    Unsupported(String),
    /// An injected torn write: only a prefix of the frame reached the
    /// file. The store is in the same state a kill mid-append leaves on
    /// disk; the caller treats this as the crash it simulates.
    TornWrite,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store io error: {m}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Unsupported(m) => write!(f, "store unsupported: {m}"),
            StoreError::TornWrite => write!(f, "store: injected torn write"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{what} {}: {e}", path.display()))
}

/// What [`Store::open`] found and repaired.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Newest snapshot that passed verification, if any.
    pub snapshot: Option<Snapshot>,
    /// WAL records above the snapshot bound, in append order.
    pub tail: Vec<Record>,
    /// `tail.len()` as a counter (mirrors the telemetry metric).
    pub replayed_records: u64,
    /// Bytes discarded from torn/corrupt tails (and any segments beyond
    /// the first torn one).
    pub truncated_bytes: u64,
    /// Segments below the snapshot bound left behind by an interrupted
    /// rotation/prune; ignored and deleted.
    pub stale_segments: u64,
    /// Corrupt snapshot files skipped (and deleted) before a valid one
    /// was found.
    pub snapshots_skipped: u64,
}

/// An open durable store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    mode: DurabilityMode,
    seg_seq: u64,
    seg_file: Option<File>,
    snap_seq: u64,
    mem_segments: BTreeMap<u64, Vec<u8>>,
    mem_snaps: BTreeMap<u64, Vec<u8>>,
    faults: Option<FaultSession>,
}

impl Store {
    /// Creates a fresh store in `dir` (created if absent). Refuses to
    /// build over an existing store's files — recovery must be explicit,
    /// via [`Store::open`].
    pub fn create(dir: &Path, mode: DurabilityMode) -> Result<Store, StoreError> {
        if mode != DurabilityMode::InMemory {
            fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, &e))?;
            let (segs, snaps, _) = list_store_files(dir)?;
            if !segs.is_empty() || !snaps.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "{} already holds store files; open it instead of creating over it",
                    dir.display()
                )));
            }
        }
        Ok(Store {
            dir: dir.to_path_buf(),
            mode,
            seg_seq: 0,
            seg_file: None,
            snap_seq: 0,
            mem_segments: BTreeMap::new(),
            mem_snaps: BTreeMap::new(),
            faults: None,
        })
    }

    /// Opens an existing store, running recovery: load the newest valid
    /// snapshot, replay the WAL tail, truncate torn/corrupt tails in
    /// place, delete stale pre-bound segments and corrupt snapshots.
    ///
    /// `plan` arms the `store.short_read` site during the scan (and stays
    /// attached for subsequent appends); pass `None` for a clean open.
    ///
    /// In `InMemory` mode there is nothing on disk to recover: the result
    /// is a fresh store and an empty [`Recovered`].
    pub fn open(
        dir: &Path,
        mode: DurabilityMode,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<(Store, Recovered), StoreError> {
        let mut faults = plan.map(FaultSession::with_plan);
        if mode == DurabilityMode::InMemory {
            let mut store = Store::create(dir, mode)?;
            store.faults = faults;
            return Ok((store, Recovered::default()));
        }
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, &e))?;
        let (segs, snaps, tmps) = list_store_files(dir)?;
        for tmp in tmps {
            // Interrupted snapshot publications: never renamed, never valid.
            fs::remove_file(&tmp).map_err(|e| io_err("remove tmp", &tmp, &e))?;
        }
        let mut out = Recovered::default();

        // Newest snapshot that verifies wins; corrupt ones are reported
        // and deleted so they can never shadow a good one again.
        let mut best: Option<Snapshot> = None;
        for (&seq, path) in snaps.iter().rev() {
            let bytes = fs::read(path).map_err(|e| io_err("read snapshot", path, &e))?;
            match snapshot::decode(&bytes) {
                Ok(snap) if snap.seq == seq => {
                    best = Some(snap);
                    break;
                }
                Ok(_) | Err(_) => {
                    out.snapshots_skipped += 1;
                    fs::remove_file(path).map_err(|e| io_err("remove snapshot", path, &e))?;
                }
            }
        }
        let bound = best.as_ref().map_or(0, |s| s.wal_bound);

        // Stale segments below the bound: leftovers of an interrupted
        // prune. Their records are all covered by the snapshot.
        for (&seq, path) in &segs {
            if seq < bound {
                out.stale_segments += 1;
                fs::remove_file(path).map_err(|e| io_err("remove stale segment", path, &e))?;
            }
        }

        // Replay live segments in order; stop at the first torn tail and
        // repair the files so a re-open sees a clean log.
        let mut torn_at: Option<u64> = None;
        for (&seq, path) in &segs {
            if seq < bound {
                continue;
            }
            if let Some(first_torn) = torn_at {
                // Everything after a torn segment is unreachable history.
                let len = fs::metadata(path)
                    .map_err(|e| io_err("stat segment", path, &e))?
                    .len();
                out.truncated_bytes += len;
                fs::remove_file(path).map_err(|e| io_err("remove segment", path, &e))?;
                debug_assert!(seq > first_torn);
                continue;
            }
            let bytes = fs::read(path).map_err(|e| io_err("read segment", path, &e))?;
            let mut scan = wal::scan_bytes(&bytes);
            // Injected short read: the scan "sees" EOF early — keep only
            // the records before the firing index and re-derive the valid
            // byte length of that shorter prefix.
            if let Some(session) = faults.as_mut() {
                for i in 0..scan.records.len() {
                    if session.fires(Site::StoreShortRead) {
                        scan.valid_len = scan.records[..i]
                            .iter()
                            .map(|r| (wal::FRAME_HEADER + r.encode().len()) as u64)
                            .sum();
                        scan.records.truncate(i);
                        scan.torn = true;
                        break;
                    }
                }
            }
            if scan.torn {
                out.truncated_bytes += bytes.len() as u64 - scan.valid_len;
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("open segment for repair", path, &e))?;
                f.set_len(scan.valid_len)
                    .map_err(|e| io_err("truncate segment", path, &e))?;
                torn_at = Some(seq);
            }
            out.tail.append(&mut scan.records);
        }
        out.replayed_records = out.tail.len() as u64;
        if telemetry::enabled() {
            telemetry::count(RECOVERY_REPLAYED, out.replayed_records);
            telemetry::count(RECOVERY_TRUNCATED, out.truncated_bytes);
        }

        // Position past everything seen: appends go to a fresh segment,
        // so replayed history is never re-scanned as live tail twice once
        // the next snapshot prunes it.
        let seg_seq = segs.keys().next_back().map_or(bound, |&s| s + 1).max(bound);
        let snap_seq = best.as_ref().map_or(0, |s| s.seq + 1);
        out.snapshot = best;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                mode,
                seg_seq,
                seg_file: None,
                snap_seq,
                mem_segments: BTreeMap::new(),
                mem_snaps: BTreeMap::new(),
                faults,
            },
            out,
        ))
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability mode this store was opened with.
    #[must_use]
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Current WAL segment index.
    #[must_use]
    pub fn wal_seq(&self) -> u64 {
        self.seg_seq
    }

    /// Sequence number the next snapshot will carry.
    #[must_use]
    pub fn snap_seq(&self) -> u64 {
        self.snap_seq
    }

    /// Attaches (or clears) the fault session consulted by the append
    /// path (`store.torn_write`, `store.corrupt_record`) and recovery
    /// scans run through this handle.
    pub fn set_fault_session(&mut self, session: Option<FaultSession>) {
        self.faults = session;
    }

    /// Appends one record to the current WAL segment.
    ///
    /// # Errors
    ///
    /// IO failures, or [`StoreError::TornWrite`] when the armed
    /// `store.torn_write` site fires (the on-disk state then ends
    /// mid-frame, exactly like a crash during the write).
    pub fn append(&mut self, rec: &Record) -> Result<(), StoreError> {
        let mut frame = wal::frame(&rec.encode());
        let mut torn = false;
        if let Some(session) = self.faults.as_mut() {
            if session.fires(Site::StoreTornWrite) {
                torn = true;
            } else if session.fires(Site::StoreCorruptRecord) {
                // Latent corruption: flip a checksum bit. The append
                // "succeeds"; recovery must catch it, truncate, report.
                frame[4] ^= 0x01;
            }
        }
        let write_len = if torn {
            (frame.len() / 2).max(1)
        } else {
            frame.len()
        };
        match self.mode {
            DurabilityMode::InMemory => {
                self.mem_segments
                    .entry(self.seg_seq)
                    .or_default()
                    .extend_from_slice(&frame[..write_len]);
            }
            DurabilityMode::Buffered | DurabilityMode::Strict => {
                let strict = self.mode == DurabilityMode::Strict;
                let path = segment_path(&self.dir, self.seg_seq);
                if self.seg_file.is_none() {
                    let f = OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .map_err(|e| io_err("open segment", &path, &e))?;
                    self.seg_file = Some(f);
                }
                if let Some(f) = self.seg_file.as_mut() {
                    f.write_all(&frame[..write_len])
                        .map_err(|e| io_err("append", &path, &e))?;
                    if strict {
                        f.sync_data().map_err(|e| io_err("fsync", &path, &e))?;
                    }
                }
            }
        }
        if torn {
            return Err(StoreError::TornWrite);
        }
        if telemetry::enabled() {
            telemetry::count(WAL_APPENDS, 1);
            telemetry::count(WAL_BYTES, frame.len() as u64);
        }
        Ok(())
    }

    /// Publishes `payload` as the next snapshot — atomically (write-temp,
    /// fsync, rename) — then rotates the WAL past it and prunes segments
    /// the new snapshot covers plus all but the newest two snapshots.
    pub fn publish_snapshot(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let new_bound = self.seg_seq + 1;
        let image = snapshot::encode(self.snap_seq, new_bound, payload);
        match self.mode {
            DurabilityMode::InMemory => {
                self.mem_snaps.insert(self.snap_seq, image);
                let keep = self.snap_seq.saturating_sub(KEEP_SNAPSHOTS - 1);
                self.mem_snaps.retain(|&s, _| s >= keep);
                self.mem_segments.retain(|&s, _| s >= new_bound);
            }
            DurabilityMode::Buffered | DurabilityMode::Strict => {
                let strict = self.mode == DurabilityMode::Strict;
                let tmp = self.dir.join(format!("snap-{:08}.snap.tmp", self.snap_seq));
                let fin = snapshot_path(&self.dir, self.snap_seq);
                {
                    let mut f = File::create(&tmp).map_err(|e| io_err("create tmp", &tmp, &e))?;
                    f.write_all(&image)
                        .map_err(|e| io_err("write snapshot", &tmp, &e))?;
                    if strict {
                        f.sync_all()
                            .map_err(|e| io_err("fsync snapshot", &tmp, &e))?;
                    }
                }
                fs::rename(&tmp, &fin).map_err(|e| io_err("publish snapshot", &fin, &e))?;
                if strict {
                    let d = File::open(&self.dir).map_err(|e| io_err("open dir", &self.dir, &e))?;
                    d.sync_all()
                        .map_err(|e| io_err("fsync dir", &self.dir, &e))?;
                }
                // Prune: segments the snapshot covers, snapshots beyond
                // the keep window. A crash between rename and here only
                // leaves stragglers that recovery ignores and deletes.
                let (segs, snaps, _) = list_store_files(&self.dir)?;
                for (&seq, path) in &segs {
                    if seq < new_bound {
                        fs::remove_file(path).map_err(|e| io_err("prune segment", path, &e))?;
                    }
                }
                let keep = self.snap_seq.saturating_sub(KEEP_SNAPSHOTS - 1);
                for (&seq, path) in &snaps {
                    if seq < keep {
                        fs::remove_file(path).map_err(|e| io_err("prune snapshot", path, &e))?;
                    }
                }
            }
        }
        self.snap_seq += 1;
        self.seg_file = None;
        self.seg_seq = new_bound;
        if telemetry::enabled() {
            telemetry::count(SNAPS_PUBLISHED, 1);
        }
        Ok(())
    }

    /// Flushes OS buffers for the current segment (meaningful in
    /// `Buffered` mode before an orderly shutdown).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(f) = self.seg_file.as_mut() {
            let path = segment_path(&self.dir, self.seg_seq);
            f.sync_data().map_err(|e| io_err("fsync", &path, &e))?;
        }
        Ok(())
    }

    /// In-memory segment images (only populated in `InMemory` mode) —
    /// lets tests and benches run the scan without touching disk.
    #[must_use]
    pub fn mem_segment(&self, seq: u64) -> Option<&[u8]> {
        self.mem_segments.get(&seq).map(Vec::as_slice)
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.wal"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:08}.snap"))
}

type StoreFiles = (BTreeMap<u64, PathBuf>, BTreeMap<u64, PathBuf>, Vec<PathBuf>);

/// Classifies `dir` entries into (wal segments, snapshots, leftover temp
/// files), keyed and ordered by sequence number.
fn list_store_files(dir: &Path) -> Result<StoreFiles, StoreError> {
    let mut segs = BTreeMap::new();
    let mut snaps = BTreeMap::new();
    let mut tmps = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", dir, &e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            tmps.push(path);
        } else if let Some(seq) = parse_seq(name, "wal-", ".wal") {
            segs.insert(seq, path);
        } else if let Some(seq) = parse_seq(name, "snap-", ".snap") {
            snaps.insert(seq, path);
        }
    }
    tmps.sort();
    Ok((segs, snaps, tmps))
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// A per-process-unique scratch directory for store tests and harnesses:
/// `<tmp>/memcon-store-scratch/<label>-<pid>`. Callers pass a unique
/// label (their test name), the pid isolates concurrent `cargo test`
/// processes, so parallel test threads never collide. Any leftover from
/// a previous crashed run is removed first.
#[must_use]
pub fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("memcon-store-scratch")
        .join(format!("{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultinject::{Schedule, SiteSpec};

    fn progress(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Progress {
                quantum: i,
                now_ns: i * 1000,
            })
            .collect()
    }

    fn cleanup(dir: &Path) {
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn buffered_store_round_trips_snapshot_and_tail() {
        let dir = scratch_dir("round-trip");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            for r in progress(5) {
                s.append(&r).unwrap();
            }
            s.publish_snapshot(b"state-at-5").unwrap();
            for r in progress(3) {
                s.append(&r).unwrap();
            }
        }
        let (s, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        let snap = rec.snapshot.expect("snapshot survives");
        assert_eq!(snap.payload, b"state-at-5");
        assert_eq!(rec.tail, progress(3));
        assert_eq!(rec.replayed_records, 3);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.stale_segments, 0);
        assert!(s.wal_seq() > snap.wal_bound - 1);
        cleanup(&dir);
    }

    #[test]
    fn strict_mode_round_trips_too() {
        let dir = scratch_dir("strict");
        {
            let mut s = Store::create(&dir, DurabilityMode::Strict).unwrap();
            for r in progress(4) {
                s.append(&r).unwrap();
            }
            s.publish_snapshot(b"strict-state").unwrap();
            s.append(&Record::RunFinished { at_ns: 9 }).unwrap();
        }
        let (_, rec) = Store::open(&dir, DurabilityMode::Strict, None).unwrap();
        assert_eq!(rec.snapshot.unwrap().payload, b"strict-state");
        assert_eq!(rec.tail, vec![Record::RunFinished { at_ns: 9 }]);
        cleanup(&dir);
    }

    #[test]
    fn empty_wal_recovers_to_nothing() {
        let dir = scratch_dir("empty-wal");
        drop(Store::create(&dir, DurabilityMode::Buffered).unwrap());
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
        cleanup(&dir);
    }

    #[test]
    fn snapshot_only_store_recovers_without_tail() {
        let dir = scratch_dir("snap-only");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            for r in progress(2) {
                s.append(&r).unwrap();
            }
            s.publish_snapshot(b"just-me").unwrap();
        }
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.snapshot.unwrap().payload, b"just-me");
        assert!(rec.tail.is_empty(), "pre-snapshot records were pruned");
        cleanup(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported_then_reopens_clean() {
        let dir = scratch_dir("torn-tail");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            for r in progress(6) {
                s.append(&r).unwrap();
            }
        }
        // Tear the tail mid-record by hand.
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        let frame_len = wal::frame(&progress(1)[0].encode()).len();
        let cut = 5 * frame_len + 3;
        fs::write(&seg, &bytes[..cut]).unwrap();

        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.tail, progress(5), "last record lost, rest intact");
        assert_eq!(rec.truncated_bytes, 3);
        assert_eq!(fs::metadata(&seg).unwrap().len() as usize, 5 * frame_len);

        let (_, again) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(again.truncated_bytes, 0, "repair is persistent");
        assert_eq!(again.tail, progress(5));
        cleanup(&dir);
    }

    #[test]
    fn stale_pre_bound_segment_from_failed_rotation_is_ignored() {
        let dir = scratch_dir("stale-seg");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            for r in progress(3) {
                s.append(&r).unwrap();
            }
            s.publish_snapshot(b"bound-1").unwrap();
            s.append(&Record::EpochSample { epoch: 1 }).unwrap();
        }
        // Re-create the pre-bound segment an interrupted prune would
        // leave behind (same seq as the pruned one: a duplicate).
        let mut stale = Vec::new();
        for r in progress(3) {
            stale.extend_from_slice(&wal::frame(&r.encode()));
        }
        fs::write(segment_path(&dir, 0), &stale).unwrap();

        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.stale_segments, 1);
        assert_eq!(
            rec.tail,
            vec![Record::EpochSample { epoch: 1 }],
            "stale duplicate records never replay"
        );
        assert!(!segment_path(&dir, 0).exists(), "stale segment deleted");
        cleanup(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_and_is_never_loaded() {
        let dir = scratch_dir("corrupt-snap");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            s.append(&progress(1)[0]).unwrap();
            s.publish_snapshot(b"good-old").unwrap();
            s.append(&Record::EpochSample { epoch: 7 }).unwrap();
            s.publish_snapshot(b"bad-new").unwrap();
        }
        // Corrupt the newest snapshot's payload.
        let newest = snapshot_path(&dir, 1);
        let mut img = fs::read(&newest).unwrap();
        let last = img.len() - 1;
        img[last] ^= 0xFF;
        fs::write(&newest, &img).unwrap();

        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.snapshots_skipped, 1);
        let snap = rec.snapshot.expect("fallback snapshot");
        assert_eq!(snap.payload, b"good-old", "corrupt image never loads");
        assert!(!newest.exists(), "corrupt snapshot deleted");
        cleanup(&dir);
    }

    #[test]
    fn create_refuses_to_overwrite_an_existing_store() {
        let dir = scratch_dir("no-clobber");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            s.append(&progress(1)[0]).unwrap();
        }
        assert!(matches!(
            Store::create(&dir, DurabilityMode::Buffered),
            Err(StoreError::Corrupt(_))
        ));
        cleanup(&dir);
    }

    #[test]
    fn in_memory_mode_touches_no_files() {
        let dir = scratch_dir("in-memory");
        let mut s = Store::create(&dir, DurabilityMode::InMemory).unwrap();
        for r in progress(10) {
            s.append(&r).unwrap();
        }
        s.publish_snapshot(b"ram-only").unwrap();
        s.append(&Record::RunFinished { at_ns: 1 }).unwrap();
        assert!(!dir.exists(), "no directory was created");
        assert!(s.mem_segment(0).is_none(), "rotation pruned segment 0");
        let tail = s.mem_segment(1).expect("post-snapshot segment");
        let scan = wal::scan_bytes(tail);
        assert_eq!(scan.records, vec![Record::RunFinished { at_ns: 1 }]);
    }

    #[test]
    fn injected_torn_write_leaves_a_truncatable_tail() {
        let dir = scratch_dir("fault-torn");
        let plan = Arc::new(FaultPlan::new(0xF00D).with_site(
            Site::StoreTornWrite,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::OneShot { at: 3 },
            },
        ));
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            s.set_fault_session(Some(FaultSession::with_plan(plan)));
            let mut torn = 0;
            for r in progress(5) {
                match s.append(&r) {
                    Ok(()) => {}
                    Err(StoreError::TornWrite) => {
                        torn += 1;
                        break; // a real crash stops here
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert_eq!(torn, 1);
        }
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.tail, progress(3), "prefix before the tear survives");
        assert!(rec.truncated_bytes > 0, "partial frame was truncated away");
        cleanup(&dir);
    }

    #[test]
    fn injected_corrupt_record_is_caught_at_recovery_never_loaded() {
        let dir = scratch_dir("fault-corrupt");
        let plan = Arc::new(FaultPlan::new(0xF00D).with_site(
            Site::StoreCorruptRecord,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::OneShot { at: 2 },
            },
        ));
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            s.set_fault_session(Some(FaultSession::with_plan(plan)));
            for r in progress(5) {
                s.append(&r).unwrap(); // corruption is latent: appends succeed
            }
        }
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.tail, progress(2), "scan stops at the corrupt record");
        assert!(rec.truncated_bytes > 0);
        cleanup(&dir);
    }

    #[test]
    fn injected_short_read_truncates_the_scan_early() {
        let dir = scratch_dir("fault-short");
        {
            let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            for r in progress(6) {
                s.append(&r).unwrap();
            }
        }
        let plan = Arc::new(FaultPlan::new(0xF00D).with_site(
            Site::StoreShortRead,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::OneShot { at: 4 },
            },
        ));
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, Some(plan)).unwrap();
        assert_eq!(rec.tail, progress(4), "EOF injected before record 4");
        assert!(rec.truncated_bytes > 0);
        // The repair truncated the file: a clean re-open agrees.
        let (_, again) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(again.tail, progress(4));
        assert_eq!(again.truncated_bytes, 0);
        cleanup(&dir);
    }

    #[test]
    fn durability_mode_names_round_trip() {
        for mode in [
            DurabilityMode::InMemory,
            DurabilityMode::Buffered,
            DurabilityMode::Strict,
        ] {
            assert_eq!(DurabilityMode::from_name(mode.as_str()), Some(mode));
        }
        assert_eq!(DurabilityMode::from_name("yolo"), None);
    }

    #[test]
    fn rotation_bounds_wal_growth_across_many_snapshots() {
        let dir = scratch_dir("rotation");
        let mut s = Store::create(&dir, DurabilityMode::Buffered).unwrap();
        for round in 0..10u64 {
            for r in progress(20) {
                s.append(&r).unwrap();
            }
            s.publish_snapshot(format!("round-{round}").as_bytes())
                .unwrap();
        }
        let (segs, snaps, _) = list_store_files(&dir).unwrap();
        assert!(segs.is_empty(), "every segment was covered and pruned");
        assert_eq!(snaps.len() as u64, KEEP_SNAPSHOTS);
        let (_, rec) = Store::open(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(rec.snapshot.unwrap().payload, b"round-9");
        cleanup(&dir);
    }
}
