//! MEMCON online-test traffic injection (paper Table 3).
//!
//! The paper models "256–1024 concurrent tests every 64 ms": each test reads
//! its row into the controller twice (128 blocks per pass; Copy-and-Compare
//! adds a 128-block write pass) and otherwise leaves the row idle. The
//! injector spreads the resulting block accesses uniformly over the window
//! and contends with demand traffic like any other requester.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::controller::MemoryController;
use crate::request::{MemRequest, RequestId, Requester};

/// Configuration of the injected test traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestInjectConfig {
    /// Tests performed per window (paper: 256, 512, or 1024).
    pub concurrent_tests: u32,
    /// Window length in milliseconds (paper: 64 ms, the LO-REF interval).
    pub window_ms: f64,
    /// Read-blocks per test (2 × 128 for both test modes).
    pub read_blocks_per_test: u32,
    /// Write-blocks per test (0 for Read-and-Compare, 128 for
    /// Copy-and-Compare).
    pub write_blocks_per_test: u32,
}

impl TestInjectConfig {
    /// Read-and-Compare traffic at the given test count.
    #[must_use]
    pub fn read_and_compare(concurrent_tests: u32) -> Self {
        TestInjectConfig {
            concurrent_tests,
            window_ms: 64.0,
            read_blocks_per_test: 256,
            write_blocks_per_test: 0,
        }
    }

    /// Copy-and-Compare traffic at the given test count.
    #[must_use]
    pub fn copy_and_compare(concurrent_tests: u32) -> Self {
        TestInjectConfig {
            concurrent_tests,
            window_ms: 64.0,
            read_blocks_per_test: 256,
            write_blocks_per_test: 128,
        }
    }

    /// Total block accesses injected per window.
    #[must_use]
    pub fn blocks_per_window(&self) -> u64 {
        u64::from(self.concurrent_tests)
            * u64::from(self.read_blocks_per_test + self.write_blocks_per_test)
    }
}

/// Uniform-rate injector of test-block requests.
#[derive(Debug)]
pub struct TestTrafficInjector {
    config: TestInjectConfig,
    interval_cycles: f64,
    next_emit: f64,
    rng: SmallRng,
    n_banks: usize,
    rows_per_bank: u32,
    write_ratio: f64,
    /// A request rejected by a full queue, retried next cycle.
    held: Option<MemRequest>,
    /// Requests successfully injected.
    pub injected: u64,
}

impl TestTrafficInjector {
    /// Creates an injector for a device with `n_banks` banks of
    /// `rows_per_bank` rows, with cycle time `tck_ns`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration injects nothing (zero tests) — use
    /// `Option<TestTrafficInjector>` for that.
    #[must_use]
    pub fn new(
        config: TestInjectConfig,
        n_banks: usize,
        rows_per_bank: u32,
        tck_ns: f64,
        seed: u64,
    ) -> Self {
        let blocks = config.blocks_per_window();
        assert!(blocks > 0, "injector configured with zero traffic");
        let window_cycles = config.window_ms * 1.0e6 / tck_ns;
        let total = u64::from(config.read_blocks_per_test + config.write_blocks_per_test);
        TestTrafficInjector {
            config,
            interval_cycles: window_cycles / blocks as f64,
            next_emit: 0.0,
            rng: SmallRng::seed_from_u64(seed),
            n_banks,
            rows_per_bank,
            write_ratio: f64::from(config.write_blocks_per_test) / total as f64,
            held: None,
            injected: 0,
        }
    }

    /// The injector's configuration.
    #[must_use]
    pub fn config(&self) -> &TestInjectConfig {
        &self.config
    }

    /// Injects due test requests at cycle `now`.
    ///
    /// Queue rejections come back as typed
    /// [`EnqueueError`](crate::controller::EnqueueError)s: a full queue
    /// (or a fault-injected bounce) holds the request for retry next cycle;
    /// a fault-injected silent drop counts as injected — the command was
    /// accepted and then lost, exactly what the [`Site::SimCmdDrop`]
    /// site models.
    ///
    /// [`Site::SimCmdDrop`]: faultinject::Site::SimCmdDrop
    pub fn step(&mut self, now: u64, controller: &mut MemoryController, next_id: &mut RequestId) {
        // Retry a previously rejected request first.
        if let Some(req) = self.held.take() {
            match controller.enqueue(req) {
                Ok(()) => self.injected += 1,
                Err(e) => {
                    self.held = Some(e.into_request());
                    return;
                }
            }
        }
        while self.next_emit <= now as f64 {
            self.next_emit += self.interval_cycles;
            let id = *next_id;
            *next_id += 1;
            let req = MemRequest {
                id,
                requester: Requester::TestEngine,
                bank: self.rng.gen_range(0..self.n_banks),
                row: self.rng.gen_range(0..self.rows_per_bank),
                block: self.rng.gen_range(0..128),
                is_write: self.rng.gen::<f64>() < self.write_ratio,
                arrive_cycle: now,
            };
            match controller.enqueue(req) {
                Ok(()) => self.injected += 1,
                Err(e) => {
                    self.held = Some(e.into_request());
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RefreshPolicy, SystemConfig};
    use dram::geometry::ChipDensity;

    #[test]
    fn traffic_volume_matches_table3() {
        let c = TestInjectConfig::read_and_compare(256);
        assert_eq!(c.blocks_per_window(), 256 * 256);
        let cc = TestInjectConfig::copy_and_compare(1024);
        assert_eq!(cc.blocks_per_window(), 1024 * 384);
    }

    #[test]
    fn injection_rate_is_uniform() {
        let cfg = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::None);
        let mut ctrl = crate::controller::MemoryController::new(&cfg);
        let inject_cfg = TestInjectConfig::read_and_compare(256);
        let mut inj = TestTrafficInjector::new(inject_cfg, 8, 1024, 1.25, 7);
        let mut next_id = 0;
        // Run 1 ms worth of cycles (800,000), draining the controller.
        let cycles = 800_000u64;
        for now in 0..cycles {
            ctrl.tick(now);
            let _ = ctrl.drain_completions();
            inj.step(now, &mut ctrl, &mut next_id);
        }
        // Expected: 256 tests x 256 blocks / 64 ms = 1024 blocks per ms.
        let expected = 1024.0;
        let got = inj.injected as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.05,
            "injected {got} vs expected {expected}"
        );
    }

    #[test]
    fn copy_mode_mixes_writes() {
        let cfg = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::None);
        let mut ctrl = crate::controller::MemoryController::new(&cfg);
        let mut inj =
            TestTrafficInjector::new(TestInjectConfig::copy_and_compare(1024), 8, 1024, 1.25, 8);
        let mut next_id = 0;
        let mut writes = 0u64;
        let mut total = 0u64;
        for now in 0..400_000 {
            ctrl.tick(now);
            for c in ctrl.drain_completions() {
                total += 1;
                if c.is_write {
                    writes += 1;
                }
            }
            inj.step(now, &mut ctrl, &mut next_id);
        }
        assert!(total > 1000);
        let ratio = writes as f64 / total as f64;
        // 128 of 384 blocks are writes.
        assert!((ratio - 1.0 / 3.0).abs() < 0.05, "write ratio {ratio}");
    }

    #[test]
    fn held_request_is_not_lost() {
        let mut cfg = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::None);
        cfg.queue_capacity = 1;
        let mut ctrl = crate::controller::MemoryController::new(&cfg);
        let mut inj =
            TestTrafficInjector::new(TestInjectConfig::read_and_compare(1024), 8, 64, 1.25, 9);
        let mut next_id = 0;
        for now in 0..200_000 {
            ctrl.tick(now);
            let _ = ctrl.drain_completions();
            inj.step(now, &mut ctrl, &mut next_id);
        }
        // All generated ids were either injected or exactly one is held.
        let held = u64::from(inj.held.is_some());
        assert_eq!(inj.injected + held, next_id);
    }

    #[test]
    #[should_panic(expected = "zero traffic")]
    fn zero_tests_panics() {
        let cfg = TestInjectConfig {
            concurrent_tests: 0,
            window_ms: 64.0,
            read_blocks_per_test: 256,
            write_blocks_per_test: 0,
        };
        let _ = TestTrafficInjector::new(cfg, 8, 64, 1.25, 0);
    }
}
