//! System configuration (paper Table 2).
//!
//! > Processor: 1–4 cores, 4 GHz, 4-wide, 128-entry instruction window.
//! > LLC: 64 B lines, 512 KB per core (implicit in the CPU profiles' MPKI).
//! > Main memory: 8 GB DDR3-1600 DIMM.
//! > Baseline `tREFI`/`tRFC`: 1.95 µs / 350 ns; MEMCON `tREFI`: LO-REF
//! > 7.8 µs, HI-REF 1.95 µs; `tRFC`: 350/530/890 ns for 8/16/32 Gb chips.

use dram::geometry::{ChipDensity, DramGeometry};
use dram::timing::TimingParams;

/// Refresh policy for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// No refresh at all (the ideal bound; also used in unit tests).
    None,
    /// Every row refreshed at the given per-row interval (e.g. the 16 ms
    /// aggressive baseline, or the 32/64 ms comparison points of Fig. 16).
    Fixed {
        /// Per-row refresh interval in milliseconds.
        interval_ms: f64,
    },
    /// The paper's MEMCON/RAIDR modelling: refresh-operation count reduced
    /// by `reduction` relative to a fixed baseline (`tREFI` stretched by
    /// `1/(1−reduction)`).
    Reduced {
        /// The baseline per-row interval being reduced from, in ms.
        baseline_interval_ms: f64,
        /// Fraction of refresh operations eliminated (0–1).
        reduction: f64,
    },
}

impl RefreshPolicy {
    /// The aggressive 16 ms baseline of the paper's main evaluation.
    #[must_use]
    pub fn baseline_16ms() -> Self {
        RefreshPolicy::Fixed { interval_ms: 16.0 }
    }

    /// Effective `tREFI` in controller cycles, or `None` when refresh is
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if a `Reduced` policy has `reduction` outside `[0, 1)`.
    #[must_use]
    pub fn trefi_cycles(&self, timing: &TimingParams) -> Option<u64> {
        match *self {
            RefreshPolicy::None => None,
            RefreshPolicy::Fixed { interval_ms } => {
                Some(timing.trefi_cycles_for_interval(interval_ms))
            }
            RefreshPolicy::Reduced {
                baseline_interval_ms,
                reduction,
            } => {
                assert!(
                    (0.0..1.0).contains(&reduction),
                    "reduction must be in [0, 1), got {reduction}"
                );
                let base = timing.trefi_cycles_for_interval(baseline_interval_ms) as f64;
                Some((base / (1.0 - reduction)).round() as u64)
            }
        }
    }
}

/// Full system configuration for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// CPU clock in GHz (Table 2: 4 GHz).
    pub cpu_ghz: f64,
    /// Fetch/retire width per CPU cycle (Table 2: 4).
    pub width: u32,
    /// Instruction-window (ROB) capacity (Table 2: 128).
    pub window: u32,
    /// DRAM chip density (sets `tRFC`).
    pub density: ChipDensity,
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// DRAM timing.
    pub timing: TimingParams,
    /// Refresh policy.
    pub refresh: RefreshPolicy,
    /// Per-bank request-queue capacity.
    pub queue_capacity: usize,
}

impl SystemConfig {
    /// Single-core Table-2 configuration with the aggressive 16 ms baseline
    /// at 8 Gb density.
    #[must_use]
    pub fn single_core_baseline() -> Self {
        SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::baseline_16ms())
    }

    /// Four-core Table-2 configuration with the 16 ms baseline at 8 Gb.
    #[must_use]
    pub fn four_core_baseline() -> Self {
        SystemConfig::new(4, ChipDensity::Gb8, RefreshPolicy::baseline_16ms())
    }

    /// A Table-2 configuration with the given core count, density, and
    /// refresh policy.
    #[must_use]
    pub fn new(cores: usize, density: ChipDensity, refresh: RefreshPolicy) -> Self {
        SystemConfig {
            cores,
            cpu_ghz: 4.0,
            width: 4,
            window: 128,
            density,
            geometry: DramGeometry::dimm_8gb(density),
            timing: TimingParams::ddr3_1600_density(density),
            refresh,
            queue_capacity: 32,
        }
    }

    /// CPU cycles per DRAM controller cycle (5 for 4 GHz over DDR3-1600's
    /// 800 MHz).
    #[must_use]
    pub fn cpu_cycles_per_dram_cycle(&self) -> u64 {
        (self.cpu_ghz * self.timing.tck_ns).round() as u64
    }

    /// Maximum instructions retirable per DRAM cycle (width × clock ratio).
    #[must_use]
    pub fn retire_budget_per_dram_cycle(&self) -> u64 {
        u64::from(self.width) * self.cpu_cycles_per_dram_cycle()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("need at least one core".into());
        }
        if self.width == 0 || self.window == 0 {
            return Err("width and window must be non-zero".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be non-zero".into());
        }
        self.geometry.validate()?;
        self.timing.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_baseline_trefi() {
        let c = SystemConfig::single_core_baseline();
        // 16 ms baseline: tREFI = 1.95 us = 1563 cycles at 1.25 ns.
        assert_eq!(c.refresh.trefi_cycles(&c.timing), Some(1563));
        // tRFC 350 ns = 280 cycles at 8 Gb.
        assert_eq!(c.timing.trfc_cycles(), 280);
    }

    #[test]
    fn reduced_policy_stretches_trefi() {
        let c = SystemConfig::new(
            1,
            ChipDensity::Gb8,
            RefreshPolicy::Reduced {
                baseline_interval_ms: 16.0,
                reduction: 0.75,
            },
        );
        // 75% fewer refreshes than the 16 ms baseline = 64 ms worth: 7.8 us.
        let trefi = c.refresh.trefi_cycles(&c.timing).unwrap();
        assert_eq!(trefi, 4 * 1563);
    }

    #[test]
    fn none_policy_disables_refresh() {
        let c = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::None);
        assert_eq!(c.refresh.trefi_cycles(&c.timing), None);
    }

    #[test]
    fn density_scales_trfc() {
        for (d, cycles) in [
            (ChipDensity::Gb8, 280),
            (ChipDensity::Gb16, 424),
            (ChipDensity::Gb32, 712),
        ] {
            let c = SystemConfig::new(1, d, RefreshPolicy::baseline_16ms());
            assert_eq!(c.timing.trfc_cycles(), cycles, "{d}");
        }
    }

    #[test]
    fn clock_ratio() {
        let c = SystemConfig::single_core_baseline();
        assert_eq!(c.cpu_cycles_per_dram_cycle(), 5);
        assert_eq!(c.retire_budget_per_dram_cycle(), 20);
    }

    #[test]
    fn presets_validate() {
        assert!(SystemConfig::single_core_baseline().validate().is_ok());
        assert!(SystemConfig::four_core_baseline().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "reduction must be in")]
    fn bad_reduction_panics() {
        let c = SystemConfig::new(
            1,
            ChipDensity::Gb8,
            RefreshPolicy::Reduced {
                baseline_interval_ms: 16.0,
                reduction: 1.0,
            },
        );
        let _ = c.refresh.trefi_cycles(&c.timing);
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut c = SystemConfig::single_core_baseline();
        c.cores = 0;
        assert!(c.validate().is_err());
    }
}
