//! DRAM energy accounting (DRAMPower-style, IDD-based).
//!
//! The paper motivates MEMCON with *performance and energy efficiency*: every
//! eliminated refresh saves the energy of an activate/precharge cycle across
//! the chip. This module turns the simulator's operation counts into energy,
//! using the standard current-based (IDD) estimation over DDR3 datasheet
//! values, so the refresh-reduction experiments can also report energy
//! savings.
//!
//! Per-operation energies follow the usual derivation from IDD currents at
//! VDD = 1.5 V for a DDR3-1600 x8 device (values in the range published in
//! Micron DDR3 datasheets and the DRAMPower model); background power is
//! charged per cycle and scales with how long the rank is active.

use crate::controller::CtrlStats;
use dram::timing::TimingParams;

/// Energy cost parameters, in nanojoules per operation (whole-rank, i.e.
/// all chips of the DIMM together).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One ACT + PRE pair (row cycle).
    pub activate_nj: f64,
    /// One read burst (64 B on the bus plus array access).
    pub read_nj: f64,
    /// One write burst.
    pub write_nj: f64,
    /// One all-bank refresh command (scales with density via `tRFC`).
    pub refresh_nj: f64,
    /// Background power in watts (standby, clocking, DLL).
    pub background_w: f64,
}

impl EnergyParams {
    /// DDR3-1600 x8 DIMM estimates. `trfc_ns` scales refresh energy with
    /// chip density (the refresh command works proportionally longer).
    #[must_use]
    pub fn ddr3_1600(timing: &TimingParams) -> Self {
        EnergyParams {
            activate_nj: 2.5,
            read_nj: 3.5,
            write_nj: 3.7,
            // ~0.6 nJ per ns of tRFC at DIMM level: 350 ns -> ~210 nJ,
            // 890 ns -> ~534 nJ, consistent with IDD5/tRFC scaling.
            refresh_nj: 0.6 * timing.trfc_ns,
            background_w: 0.9,
        }
    }
}

/// Energy breakdown of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Activate/precharge energy, nJ.
    pub activate_nj: f64,
    /// Read energy, nJ.
    pub read_nj: f64,
    /// Write energy, nJ.
    pub write_nj: f64,
    /// Refresh energy, nJ.
    pub refresh_nj: f64,
    /// Background energy, nJ.
    pub background_nj: f64,
}

impl EnergyReport {
    /// Computes the breakdown from controller statistics.
    #[must_use]
    pub fn from_stats(stats: &CtrlStats, total_cycles: u64, timing: &TimingParams) -> Self {
        let p = EnergyParams::ddr3_1600(timing);
        EnergyReport {
            activate_nj: stats.acts as f64 * p.activate_nj,
            read_nj: stats.reads as f64 * p.read_nj,
            write_nj: stats.writes as f64 * p.write_nj,
            refresh_nj: stats.refreshes as f64 * p.refresh_nj,
            background_nj: total_cycles as f64 * timing.tck_ns * p.background_w,
        }
    }

    /// Total energy, nJ.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Refresh share of total energy.
    #[must_use]
    pub fn refresh_share(&self) -> f64 {
        let t = self.total_nj();
        if t <= 0.0 {
            0.0
        } else {
            self.refresh_nj / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RefreshPolicy, SystemConfig};
    use crate::system::System;
    use dram::geometry::ChipDensity;
    use memtrace::cpu::spec_tpc_pool;

    fn run(policy: RefreshPolicy, density: ChipDensity) -> (EnergyReport, u64) {
        let config = SystemConfig::new(1, density, policy);
        let mut sys = System::new(config.clone(), vec![spec_tpc_pool()[0]], 5);
        let stats = sys.run(120_000);
        (
            EnergyReport::from_stats(&stats.ctrl, stats.total_cycles, &config.timing),
            stats.total_cycles,
        )
    }

    #[test]
    fn refresh_energy_scales_with_density_and_rate() {
        let (base8, _) = run(RefreshPolicy::baseline_16ms(), ChipDensity::Gb8);
        let (base32, _) = run(RefreshPolicy::baseline_16ms(), ChipDensity::Gb32);
        assert!(
            base32.refresh_nj > 2.0 * base8.refresh_nj,
            "32 Gb refresh energy {} vs 8 Gb {}",
            base32.refresh_nj,
            base8.refresh_nj
        );
        let (reduced, _) = run(
            RefreshPolicy::Reduced {
                baseline_interval_ms: 16.0,
                reduction: 0.75,
            },
            ChipDensity::Gb32,
        );
        // 75% fewer refresh ops and a shorter run: refresh energy collapses.
        assert!(
            reduced.refresh_nj < 0.35 * base32.refresh_nj,
            "reduced {} vs baseline {}",
            reduced.refresh_nj,
            base32.refresh_nj
        );
        // Total energy drops too (less refresh + shorter runtime).
        assert!(reduced.total_nj() < base32.total_nj());
    }

    #[test]
    fn refresh_share_is_substantial_at_32gb_baseline() {
        let (report, _) = run(RefreshPolicy::baseline_16ms(), ChipDensity::Gb32);
        // The motivation for the whole line of work: refresh is a large
        // energy consumer at high density and aggressive rates.
        let share = report.refresh_share();
        assert!(
            share > 0.15,
            "refresh energy share {share} unexpectedly small"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (r, _) = run(RefreshPolicy::baseline_16ms(), ChipDensity::Gb8);
        let sum = r.activate_nj + r.read_nj + r.write_nj + r.refresh_nj + r.background_nj;
        assert!((sum - r.total_nj()).abs() < 1e-9);
        assert!(r.total_nj() > 0.0);
    }

    #[test]
    fn no_refresh_means_zero_refresh_energy() {
        let (r, _) = run(RefreshPolicy::None, ChipDensity::Gb8);
        assert_eq!(r.refresh_nj, 0.0);
    }
}
