//! FR-FCFS memory controller over timing-checked bank state machines.
//!
//! Scheduling policy (one command per controller cycle, as on a real command
//! bus):
//!
//! 1. a due refresh wins: open banks are precharged, then the rank is
//!    refreshed and blacked out for `tRFC`,
//! 2. otherwise FR-FCFS: the oldest **row-hit** request of the round-robin
//!    bank scan issues first; a bank whose queue head conflicts with its open
//!    row is precharged; an idle bank with waiting requests is activated.
//!
//! Column commands contend for the shared data bus (one burst at a time);
//! activates additionally respect the rank-level `tRRD` minimum spacing and
//! the `tFAW` four-activate window.
//!
//! Every command leaves through one choke point ([`MemoryController`]
//! internally routes all bank commands through a single issue helper), which
//! feeds the optional command-trace recorder and — under the
//! `strict-invariants` feature — the online [`crate::protocol`] auditor,
//! which panics on the first protocol violation with a cycle-accurate
//! diagnostic.

use std::collections::VecDeque;
use std::fmt;

use dram::bank::{Bank, BURST_CYCLES};
use dram::command::DramCommand;
use dram::timing::TimingParams;
use faultinject::{FaultSession, Site};

use crate::config::SystemConfig;
use crate::protocol::CmdRecord;
#[cfg(feature = "strict-invariants")]
use crate::protocol::ProtocolChecker;
use crate::refresh::RefreshScheduler;
use crate::request::{Completion, MemRequest, Requester};

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Row activations (row-buffer misses).
    pub acts: u64,
    /// Column accesses issued (every column command necessarily hits an
    /// open row; compare against `acts` for the hit/miss ratio:
    /// `1 - acts / column_accesses`).
    pub column_accesses: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Cycles the rank spent blacked out by refresh.
    pub refresh_blackout_cycles: u64,
    /// Enqueue attempts rejected because a bank queue was full (retries of
    /// the same request count once per attempt).
    pub rejected: u64,
    /// `ACT` attempts deferred by the rank-level `tRRD` minimum spacing
    /// (one count per blocked bank per cycle).
    pub trrd_stalls: u64,
    /// `ACT` attempts deferred by the `tFAW` four-activate window.
    pub tfaw_stalls: u64,
    /// Commands eaten or bounced by the fault injector
    /// ([`Site::SimCmdDrop`]).
    pub faults_dropped: u64,
    /// Commands duplicated by the fault injector ([`Site::SimCmdDup`]).
    pub faults_duplicated: u64,
    /// `ACT`s forced through a `tRRD`/`tFAW` block by the fault injector
    /// ([`Site::SimTimingViolation`]) — each is a real protocol violation
    /// the [`crate::protocol::ProtocolChecker`] audit must flag.
    pub faults_timing: u64,
    /// Extra refresh-blackout cycles added by the fault injector
    /// ([`Site::SimRefreshOverrun`]).
    pub faults_refresh_overrun_cycles: u64,
}

/// Why [`MemoryController::enqueue`] refused a request. Both variants hand
/// the request back so no access is ever silently lost by the *caller*; the
/// fault injector may still swallow test-engine commands (see
/// [`MemoryController::enqueue`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target bank queue is full; retry next cycle.
    QueueFull(MemRequest),
    /// The fault injector dropped the command. Demand requests are bounced
    /// (a core must never lose a load), so the caller retries like a full
    /// queue.
    FaultDropped(MemRequest),
}

impl EnqueueError {
    /// The rejected request, handed back for retry.
    #[must_use]
    pub fn into_request(self) -> MemRequest {
        match self {
            EnqueueError::QueueFull(r) | EnqueueError::FaultDropped(r) => r,
        }
    }
}

impl fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::QueueFull(r) => write!(f, "bank {} queue is full", r.bank),
            EnqueueError::FaultDropped(r) => {
                write!(f, "fault injector dropped the command for bank {}", r.bank)
            }
        }
    }
}

impl std::error::Error for EnqueueError {}

/// Row hits may bypass an older row-conflict request for at most this many
/// cycles; past it, the bank is drained toward the starved request (10 µs at
/// DDR3-1600 — generous next to normal service times, tight next to a
/// simulation).
pub const STARVATION_LIMIT_CYCLES: u64 = 8_000;

/// The rank-level constraint that deferred an `ACT`.
enum ActBlock {
    Trrd,
    Tfaw,
}

/// The memory controller for one rank-set of DDR3 banks.
#[derive(Debug)]
pub struct MemoryController {
    timing: TimingParams,
    banks: Vec<Bank>,
    queues: Vec<VecDeque<MemRequest>>,
    capacity: usize,
    /// Cycle at which the last scheduled data burst leaves the bus; a new
    /// column command may issue once its own data window starts after this.
    bus_data_end: u64,
    refresh: RefreshScheduler,
    refresh_in_progress_until: u64,
    rr_start: usize,
    /// Recent `ACT` cycles on the rank (at most 4 kept), for `tRRD`/`tFAW`.
    act_history: VecDeque<u64>,
    /// Fault-injection session (None when no plan is installed); the
    /// controller owns its decision streams, so parallel harnesses stay
    /// deterministic per controller.
    faults: Option<FaultSession>,
    /// Command-trace recorder; `None` until enabled.
    recorder: Option<Vec<CmdRecord>>,
    #[cfg(feature = "strict-invariants")]
    checker: ProtocolChecker,
    /// Completions drained by the system each cycle.
    completions: Vec<Completion>,
    /// Aggregate statistics.
    pub stats: CtrlStats,
}

impl MemoryController {
    /// Builds a controller from a system configuration.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let n_banks = usize::from(config.geometry.ranks) * usize::from(config.geometry.banks);
        let refresh = RefreshScheduler::new(config.refresh, &config.timing);
        #[cfg(feature = "strict-invariants")]
        let checker = {
            let c = ProtocolChecker::new(config.timing, n_banks);
            match refresh.trefi_cycles() {
                Some(trefi) => c.with_refresh_obligation(trefi),
                None => c,
            }
        };
        MemoryController {
            timing: config.timing,
            banks: (0..n_banks).map(|_| Bank::new()).collect(),
            queues: (0..n_banks).map(|_| VecDeque::new()).collect(),
            capacity: config.queue_capacity,
            bus_data_end: 0,
            refresh,
            refresh_in_progress_until: 0,
            rr_start: 0,
            act_history: VecDeque::new(),
            faults: FaultSession::begin(),
            recorder: None,
            #[cfg(feature = "strict-invariants")]
            checker,
            completions: Vec::new(),
            stats: CtrlStats::default(),
        }
    }

    /// Starts (or stops) recording every issued command for offline auditing
    /// with [`crate::protocol::ProtocolChecker::audit`]. Enabling clears any
    /// previously captured trace.
    pub fn record_commands(&mut self, enable: bool) {
        self.recorder = enable.then(Vec::new);
    }

    /// Takes the captured command trace (empty if recording is disabled),
    /// leaving recording on if it was on.
    pub fn take_command_trace(&mut self) -> Vec<CmdRecord> {
        match &mut self.recorder {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// The timing parameters this controller schedules against.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Effective refresh-command interval, if refresh is enabled (what an
    /// offline audit should pass as the `tREFI` obligation).
    #[must_use]
    pub fn trefi_cycles(&self) -> Option<u64> {
        self.refresh.trefi_cycles()
    }

    /// Routes one bank command through the single issue choke point: the
    /// bank automaton applies it, the recorder and (under
    /// `strict-invariants`) the online protocol auditor observe it.
    ///
    /// Returns `None` if the bank rejected a command the scheduler believed
    /// legal — a scheduler bug, surfaced loudly in debug builds and skipped
    /// (leaving state untouched) in release builds.
    fn issue_checked(&mut self, bank: usize, cmd: DramCommand, row: u32, now: u64) -> Option<u64> {
        match self.banks[bank].issue(cmd, row, now, &self.timing) {
            Ok(done) => {
                #[cfg(feature = "strict-invariants")]
                if let Err(e) = self.banks[bank].check_invariants() {
                    // memlint: allow (deliberate strict-invariants abort)
                    panic!("bank {bank} invariant violation after {cmd} at cycle {now}: {e}");
                }
                self.observe(CmdRecord::bank_cmd(now, bank, row, cmd));
                Some(done)
            }
            Err(e) => {
                debug_assert!(false, "scheduler issued illegal {cmd} on bank {bank}: {e}");
                None
            }
        }
    }

    /// Feeds a just-issued command to the recorder and the online auditor.
    fn observe(&mut self, rec: CmdRecord) {
        if let Some(trace) = &mut self.recorder {
            trace.push(rec);
        }
        #[cfg(feature = "strict-invariants")]
        if let Err(v) = self.checker.observe(rec) {
            panic!("DDR3 protocol violation: {v}"); // memlint: allow (deliberate strict-invariants abort)
        }
    }

    /// Which rank-level activate constraint (`tRRD` minimum spacing or the
    /// `tFAW` four-activate window) blocks an `ACT` at `now`, if any.
    fn rank_act_blocked(&self, now: u64) -> Option<ActBlock> {
        if let Some(&last) = self.act_history.back() {
            if now < last + self.timing.trrd_cycles() {
                return Some(ActBlock::Trrd);
            }
        }
        let window_start = now.saturating_sub(self.timing.tfaw_cycles() - 1);
        let recent = self
            .act_history
            .iter()
            .filter(|&&c| c >= window_start)
            .count();
        (recent >= 4).then_some(ActBlock::Tfaw)
    }

    /// Records an `ACT` in the rank activate history (only the last four
    /// matter for `tRRD`/`tFAW`).
    fn note_act(&mut self, now: u64) {
        self.act_history.push_back(now);
        while self.act_history.len() > 4 {
            self.act_history.pop_front();
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// Whether bank `bank` can accept another request.
    #[must_use]
    pub fn can_accept(&self, bank: usize) -> bool {
        self.queues[bank].len() < self.capacity
    }

    /// Total queued requests across banks.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Replaces the fault-injection session (tests and harnesses that
    /// install a plan after construction).
    pub fn set_fault_session(&mut self, session: Option<FaultSession>) {
        self.faults = session;
    }

    /// Enqueues a request, handing it back with a typed reason if it cannot
    /// be accepted.
    ///
    /// With an active [`FaultPlan`](faultinject::FaultPlan), the
    /// [`Site::SimCmdDrop`] site swallows test-engine commands outright
    /// (modeling a lost controller command — the test traffic layer never
    /// awaits individual completions) and bounces demand commands back as
    /// [`EnqueueError::FaultDropped`]; [`Site::SimCmdDup`] enqueues a
    /// test-engine command twice when the queue has room.
    ///
    /// # Errors
    ///
    /// The rejected request is handed back so the issuer can retry.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), EnqueueError> {
        if let Some(faults) = &mut self.faults {
            if faults.fires(Site::SimCmdDrop) {
                self.stats.faults_dropped += 1;
                if req.requester == Requester::TestEngine {
                    return Ok(()); // command lost in flight
                }
                return Err(EnqueueError::FaultDropped(req));
            }
            if faults.fires(Site::SimCmdDup)
                && req.requester == Requester::TestEngine
                && self.queues[req.bank].len() + 2 <= self.capacity
            {
                self.stats.faults_duplicated += 1;
                self.queues[req.bank].push_back(req);
                self.queues[req.bank].push_back(req);
                return Ok(());
            }
        }
        if self.can_accept(req.bank) {
            self.queues[req.bank].push_back(req);
            Ok(())
        } else {
            self.stats.rejected += 1;
            Err(EnqueueError::QueueFull(req))
        }
    }

    /// Drains the completions produced so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Refresh-operation count so far.
    #[must_use]
    pub fn refreshes_issued(&self) -> u64 {
        self.refresh.issued
    }

    fn issue_column(&mut self, bank: usize, queue_idx: usize, now: u64) {
        let Some(req) = self.queues[bank].remove(queue_idx) else {
            debug_assert!(false, "column issue with stale queue index {queue_idx}");
            return;
        };
        let cmd = if req.is_write {
            DramCommand::Write
        } else {
            DramCommand::Read
        };
        let Some(done) = self.issue_checked(bank, cmd, req.row, now) else {
            // Unreachable by construction (the scheduler checked legality);
            // requeue at the front so the request is not lost.
            self.queues[bank].push_front(req);
            return;
        };
        self.bus_data_end = done;
        self.stats.column_accesses += 1;
        if req.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.completions.push(Completion {
            id: req.id,
            requester: req.requester,
            is_write: req.is_write,
            done_cycle: done,
        });
    }

    /// Advances the controller by one cycle, possibly issuing one command.
    pub fn tick(&mut self, now: u64) {
        if now < self.refresh_in_progress_until {
            self.stats.refresh_blackout_cycles += 1;
            return;
        }

        if self.refresh.due(now) {
            // Drain: precharge any open bank as soon as legal.
            let mut all_idle = true;
            let mut latest_ready = now;
            for b in 0..self.banks.len() {
                if self.banks[b].open_row().is_some() {
                    all_idle = false;
                    if self.banks[b].check(DramCommand::Precharge, now).is_ok() {
                        let _ = self.issue_checked(b, DramCommand::Precharge, 0, now);
                        // One command per cycle.
                        return;
                    }
                } else {
                    latest_ready =
                        latest_ready.max(self.banks[b].ready_cycle(DramCommand::Refresh));
                }
            }
            if all_idle && latest_ready <= now {
                let mut end = self.refresh.start(now, self.timing.trfc_cycles());
                if self
                    .faults
                    .as_mut()
                    .is_some_and(|f| f.fires(Site::SimRefreshOverrun))
                {
                    // Slow-silicon refresh: the blackout overruns the
                    // datasheet tRFC by half. Commands merely wait longer, so
                    // no protocol rule is violated — the cost shows up as
                    // extra blackout cycles.
                    let extra = self.timing.trfc_cycles() / 2;
                    self.stats.faults_refresh_overrun_cycles += extra;
                    end += extra;
                }
                for b in &mut self.banks {
                    b.block_until(end);
                }
                self.observe(CmdRecord::rank_cmd(now, DramCommand::Refresh));
                self.refresh_in_progress_until = end;
                self.stats.refreshes = self.refresh.issued;
                self.stats.refresh_blackout_cycles += 1; // the issuing cycle
                return;
            }
            // Waiting for tRAS/tRP to drain; issue nothing else so the
            // refresh is not postponed indefinitely.
            return;
        }

        // FR-FCFS round-robin over banks.
        let n = self.banks.len();
        // Bus model: a burst occupies [issue+CL, issue+CL+BURST); a new
        // column command may issue when its data window starts at or after
        // the previous burst's end.
        if now + self.timing.tcl_cycles() < self.bus_data_end {
            // No column command can go this cycle; ACT/PRE still can.
            self.act_or_pre_pass(now);
            return;
        }
        // Pass 1: oldest row-hit column command anywhere. Banks whose
        // oldest request has starved past the limit stop accepting younger
        // hits so pass 2 can precharge toward the starved row.
        for i in 0..n {
            let bank = (self.rr_start + i) % n;
            let Some(open) = self.banks[bank].open_row() else {
                continue;
            };
            if self.front_is_starved(bank, open, now) {
                continue;
            }
            if let Some(idx) = self.queues[bank].iter().position(|r| r.row == open) {
                let cmd = if self.queues[bank][idx].is_write {
                    DramCommand::Write
                } else {
                    DramCommand::Read
                };
                if self.banks[bank].check(cmd, now).is_ok() {
                    self.issue_column(bank, idx, now);
                    self.rr_start = (bank + 1) % n;
                    return;
                }
            }
        }
        // Pass 2: activate idle banks or precharge banks with no pending
        // row hits.
        self.act_or_pre_pass(now);
    }

    /// Activates an idle bank for its oldest request, or precharges a bank
    /// whose open row serves none of its queued requests (FR-FCFS keeps the
    /// row open while hits remain).
    fn act_or_pre_pass(&mut self, now: u64) {
        let n = self.banks.len();
        for i in 0..n {
            let bank = (self.rr_start + i) % n;
            let Some(head) = self.queues[bank].front().copied() else {
                continue;
            };
            match self.banks[bank].open_row() {
                None => {
                    #[allow(unused_mut)]
                    let mut blocked = self.rank_act_blocked(now);
                    #[allow(unused_mut, unused_variables)]
                    let mut forced = false;
                    #[cfg(not(feature = "strict-invariants"))]
                    if blocked.is_some()
                        && self
                            .faults
                            .as_mut()
                            .is_some_and(|f| f.fires(Site::SimTimingViolation))
                    {
                        // Force the ACT through the rank constraint: a real
                        // DDR3 tRRD/tFAW violation that the offline
                        // ProtocolChecker audit must flag. (The online
                        // strict-invariants checker would abort the process
                        // on the spot, so this site is compiled out there.)
                        forced = true;
                        blocked = None;
                    }
                    match blocked {
                        Some(ActBlock::Trrd) => self.stats.trrd_stalls += 1,
                        Some(ActBlock::Tfaw) => self.stats.tfaw_stalls += 1,
                        None => {
                            if self.banks[bank].check(DramCommand::Activate, now).is_ok() {
                                // The fault only counts when the ACT really
                                // issues (the bank automaton may still veto
                                // it, e.g. mid-tRP): `faults_timing` is the
                                // audit's expected-violation floor.
                                if forced {
                                    self.stats.faults_timing += 1;
                                }
                                let _ =
                                    self.issue_checked(bank, DramCommand::Activate, head.row, now);
                                self.note_act(now);
                                self.stats.acts += 1;
                                self.rr_start = (bank + 1) % n;
                                return;
                            }
                        }
                    }
                }
                Some(open) => {
                    let any_hit = self.queues[bank].iter().any(|r| r.row == open);
                    let drain = !any_hit || self.front_is_starved(bank, open, now);
                    if drain && self.banks[bank].check(DramCommand::Precharge, now).is_ok() {
                        let _ = self.issue_checked(bank, DramCommand::Precharge, 0, now);
                        self.rr_start = (bank + 1) % n;
                        return;
                    }
                }
            }
        }
    }

    /// Whether `bank`'s oldest request targets a different row and has
    /// waited past the starvation limit.
    fn front_is_starved(&self, bank: usize, open_row: u32, now: u64) -> bool {
        self.queues[bank].front().is_some_and(|front| {
            front.row != open_row
                && now.saturating_sub(front.arrive_cycle) > STARVATION_LIMIT_CYCLES
        })
    }

    /// Burst length exposure for tests.
    #[must_use]
    pub fn burst_cycles() -> u64 {
        BURST_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RefreshPolicy, SystemConfig};
    use crate::request::Requester;
    use dram::geometry::ChipDensity;

    fn config(policy: RefreshPolicy) -> SystemConfig {
        SystemConfig::new(1, ChipDensity::Gb8, policy)
    }

    fn req(id: u64, bank: usize, row: u32, block: u32, is_write: bool) -> MemRequest {
        MemRequest {
            id,
            requester: Requester::Core(0),
            bank,
            row,
            block,
            is_write,
            arrive_cycle: 0,
        }
    }

    fn run_until_complete(ctrl: &mut MemoryController, max_cycles: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in 0..max_cycles {
            ctrl.tick(now);
            done.extend(ctrl.drain_completions());
            if ctrl.queued() == 0 && !done.is_empty() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = MemoryController::new(&cfg);
        ctrl.enqueue(req(1, 0, 10, 0, false)).unwrap();
        let done = run_until_complete(&mut ctrl, 1000);
        assert_eq!(done.len(), 1);
        // ACT at 0, RD at tRCD (9), data at 9 + tCL (11) + burst (4) = 24.
        assert_eq!(done[0].done_cycle, 24);
        assert_eq!(ctrl.stats.acts, 1);
        assert_eq!(ctrl.stats.reads, 1);
    }

    #[test]
    fn row_hits_are_prioritized() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = MemoryController::new(&cfg);
        // Same bank: row 5 first, then row 9, then row 5 again. FR-FCFS
        // should serve both row-5 requests before opening row 9.
        ctrl.enqueue(req(1, 0, 5, 0, false)).unwrap();
        ctrl.enqueue(req(2, 0, 9, 0, false)).unwrap();
        ctrl.enqueue(req(3, 0, 5, 1, false)).unwrap();
        let done = run_until_complete(&mut ctrl, 10_000);
        assert_eq!(done.len(), 3);
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(ctrl.stats.acts, 2, "row 5 opened once, row 9 once");
    }

    #[test]
    fn banks_operate_in_parallel() {
        let cfg = config(RefreshPolicy::None);
        // Two requests to different banks should overlap: total time well
        // under 2x the single-request latency plus a burst.
        let mut ctrl = MemoryController::new(&cfg);
        ctrl.enqueue(req(1, 0, 10, 0, false)).unwrap();
        ctrl.enqueue(req(2, 1, 20, 0, false)).unwrap();
        let done = run_until_complete(&mut ctrl, 1000);
        assert_eq!(done.len(), 2);
        let last = done.iter().map(|c| c.done_cycle).max().unwrap();
        assert!(last <= 24 + 8, "banks should overlap, finished at {last}");
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut cfg = config(RefreshPolicy::None);
        cfg.queue_capacity = 2;
        let mut ctrl = MemoryController::new(&cfg);
        assert!(ctrl.enqueue(req(1, 0, 1, 0, false)).is_ok());
        assert!(ctrl.enqueue(req(2, 0, 2, 0, false)).is_ok());
        assert!(ctrl.enqueue(req(3, 0, 3, 0, false)).is_err());
        assert_eq!(ctrl.stats.rejected, 1);
    }

    #[test]
    fn refresh_happens_at_trefi_rate() {
        let cfg = config(RefreshPolicy::baseline_16ms());
        let mut ctrl = MemoryController::new(&cfg);
        let horizon = 1563 * 100;
        for now in 0..horizon {
            ctrl.tick(now);
        }
        let issued = ctrl.refreshes_issued();
        assert!(
            (97..=100).contains(&issued),
            "expected ~100 refreshes, got {issued}"
        );
    }

    #[test]
    fn refresh_drains_open_rows_first() {
        let cfg = config(RefreshPolicy::baseline_16ms());
        let mut ctrl = MemoryController::new(&cfg);
        // Occupy a bank just before the refresh deadline.
        ctrl.enqueue(req(1, 0, 10, 0, false)).unwrap();
        let mut completions = Vec::new();
        for now in 0..20_000 {
            ctrl.tick(now);
            completions.extend(ctrl.drain_completions());
        }
        assert_eq!(completions.len(), 1);
        assert!(ctrl.refreshes_issued() > 0);
    }

    #[test]
    fn reads_stall_during_refresh_blackout() {
        let cfg = config(RefreshPolicy::baseline_16ms());
        let trefi = 1563u64;
        let mut ctrl = MemoryController::new(&cfg);
        // Let the first refresh start, then enqueue; the read must wait
        // until the blackout ends.
        for now in 0..=trefi {
            ctrl.tick(now);
        }
        assert!(ctrl.refreshes_issued() >= 1);
        ctrl.enqueue(req(1, 0, 10, 0, false)).unwrap();
        let mut done = Vec::new();
        for now in (trefi + 1)..(trefi + 2000) {
            ctrl.tick(now);
            done.extend(ctrl.drain_completions());
            if !done.is_empty() {
                break;
            }
        }
        // tRFC = 280 cycles blackout; completion must come after it.
        assert!(
            done[0].done_cycle >= trefi + 280,
            "done at {}",
            done[0].done_cycle
        );
    }

    #[test]
    fn no_refresh_policy_never_refreshes() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = MemoryController::new(&cfg);
        for now in 0..100_000 {
            ctrl.tick(now);
        }
        assert_eq!(ctrl.refreshes_issued(), 0);
    }

    use faultinject::{FaultPlan, FaultSession, SiteSpec};
    use std::sync::Arc;

    fn faulted(cfg: &SystemConfig, site: Site) -> MemoryController {
        let mut ctrl = MemoryController::new(cfg);
        let plan = Arc::new(FaultPlan::new(0xFA11).with_site(site, SiteSpec::rate(1.0)));
        ctrl.set_fault_session(Some(FaultSession::with_plan(plan)));
        ctrl
    }

    #[test]
    fn injected_drops_swallow_test_commands_and_bounce_demand() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = faulted(&cfg, Site::SimCmdDrop);
        let mut test_req = req(1, 0, 1, 0, false);
        test_req.requester = Requester::TestEngine;
        assert!(ctrl.enqueue(test_req).is_ok(), "swallowed, not rejected");
        assert_eq!(ctrl.queued(), 0, "the command was lost in flight");
        match ctrl.enqueue(req(2, 0, 1, 0, false)) {
            Err(EnqueueError::FaultDropped(r)) => assert_eq!(r.id, 2),
            other => panic!("demand request must bounce, got {other:?}"),
        }
        assert_eq!(ctrl.stats.faults_dropped, 2);
        assert_eq!(ctrl.stats.rejected, 0, "fault drops are not queue-fulls");
    }

    #[test]
    fn injected_duplicates_double_test_commands_only() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = faulted(&cfg, Site::SimCmdDup);
        let mut test_req = req(1, 0, 1, 0, false);
        test_req.requester = Requester::TestEngine;
        ctrl.enqueue(test_req).unwrap();
        assert_eq!(ctrl.queued(), 2, "test command duplicated");
        assert_eq!(ctrl.stats.faults_duplicated, 1);
        ctrl.enqueue(req(2, 1, 1, 0, false)).unwrap();
        assert_eq!(ctrl.queued(), 3, "demand commands never duplicate");
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[test]
    fn injected_timing_violations_are_flagged_by_the_offline_audit() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = faulted(&cfg, Site::SimTimingViolation);
        ctrl.record_commands(true);
        // Requests on many banks provoke back-to-back ACTs that tRRD would
        // normally space out; the injector forces them through.
        for (i, b) in (0..8).enumerate() {
            ctrl.enqueue(req(i as u64, b, 10, 0, false)).unwrap();
        }
        let done = run_until_complete(&mut ctrl, 10_000);
        assert_eq!(done.len(), 8);
        assert!(ctrl.stats.faults_timing > 0, "no violation was injected");
        let trace = ctrl.take_command_trace();
        let violations =
            crate::protocol::ProtocolChecker::audit(*ctrl.timing(), ctrl.n_banks(), None, &trace);
        assert!(
            !violations.is_empty(),
            "the offline audit must flag the forced ACTs"
        );
    }

    #[test]
    fn injected_refresh_overruns_extend_the_blackout() {
        let cfg = config(RefreshPolicy::baseline_16ms());
        let mut plain = MemoryController::new(&cfg);
        let mut slow = faulted(&cfg, Site::SimRefreshOverrun);
        for now in 0..20_000 {
            plain.tick(now);
            slow.tick(now);
        }
        assert!(slow.stats.faults_refresh_overrun_cycles > 0);
        assert!(
            slow.stats.refresh_blackout_cycles > plain.stats.refresh_blackout_cycles,
            "overrun must cost blackout cycles: {} vs {}",
            slow.stats.refresh_blackout_cycles,
            plain.stats.refresh_blackout_cycles
        );
    }

    #[test]
    fn write_then_read_same_row() {
        let cfg = config(RefreshPolicy::None);
        let mut ctrl = MemoryController::new(&cfg);
        ctrl.enqueue(req(1, 0, 4, 0, true)).unwrap();
        ctrl.enqueue(req(2, 0, 4, 1, false)).unwrap();
        let done = run_until_complete(&mut ctrl, 10_000);
        assert_eq!(done.len(), 2);
        assert!(done[0].is_write);
        assert!(!done[1].is_write);
        assert!(done[1].done_cycle > done[0].done_cycle);
    }
}
