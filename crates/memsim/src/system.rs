//! System glue: cores + controller + refresh + test injection.
//!
//! [`System::run`] advances the whole machine cycle-by-cycle (DRAM
//! controller cycles; each covers 5 CPU cycles at Table-2 clocks) until
//! every core retires its instruction target, then reports per-core cycle
//! counts and IPC plus the DRAM statistics the experiments aggregate.

use memtrace::cpu::{AccessTraceGenerator, CpuWorkloadProfile};

use crate::config::SystemConfig;
use crate::controller::{CtrlStats, MemoryController};
use crate::core::{AddressMap, OooCore};
use crate::request::Requester;
use crate::testinject::{TestInjectConfig, TestTrafficInjector};

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// DRAM cycle at which each core reached its instruction target.
    pub per_core_cycles: Vec<u64>,
    /// Per-core IPC in CPU cycles.
    pub per_core_ipc: Vec<f64>,
    /// Controller statistics at the end of the run.
    pub ctrl: CtrlStats,
    /// Total DRAM cycles simulated.
    pub total_cycles: u64,
    /// Test requests injected (0 when injection is off).
    pub test_requests: u64,
}

impl SimStats {
    /// Arithmetic-mean per-core speedup of `self` over `baseline`
    /// (cycle-count ratio per core, averaged) — the metric Figs. 15/16
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if core counts differ.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert_eq!(
            self.per_core_cycles.len(),
            baseline.per_core_cycles.len(),
            "core-count mismatch"
        );
        let n = self.per_core_cycles.len() as f64;
        self.per_core_cycles
            .iter()
            .zip(&baseline.per_core_cycles)
            .map(|(&a, &b)| b as f64 / a as f64)
            .sum::<f64>()
            / n
    }
}

/// A complete simulated machine.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    controller: MemoryController,
    cores: Vec<OooCore>,
    injector: Option<TestTrafficInjector>,
    next_id: u64,
    instructions_per_core: u64,
    seed: u64,
    profiles: Vec<CpuWorkloadProfile>,
}

impl System {
    /// Builds a system running one profile per core.
    ///
    /// # Panics
    ///
    /// Panics if the profile count does not match `config.cores` or the
    /// configuration is invalid.
    #[must_use]
    pub fn new(config: SystemConfig, profiles: Vec<CpuWorkloadProfile>, seed: u64) -> Self {
        config.validate().expect("invalid system configuration");
        assert_eq!(
            profiles.len(),
            config.cores,
            "need exactly one profile per core"
        );
        let controller = MemoryController::new(&config);
        System {
            controller,
            cores: Vec::new(),
            injector: None,
            next_id: 0,
            instructions_per_core: 0,
            seed,
            profiles,
            config,
        }
    }

    /// Enables MEMCON test-traffic injection (Table 3).
    #[must_use]
    pub fn with_test_injection(mut self, inject: TestInjectConfig) -> Self {
        let n_banks = self.controller.n_banks();
        self.injector = Some(TestTrafficInjector::new(
            inject,
            n_banks,
            self.config.geometry.rows_per_bank,
            self.config.timing.tck_ns,
            self.seed ^ 0xDEAD_BEEF,
        ));
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn build_cores(&mut self, instructions_per_core: u64) {
        let n_banks = self.controller.n_banks();
        let rows = self.config.geometry.rows_per_bank;
        self.cores = self
            .profiles
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let map = AddressMap {
                    n_banks,
                    rows_per_bank: rows,
                    // Spread cores across the row space to avoid aliasing.
                    row_base: (u64::from(rows) * i as u64 / self.profiles.len() as u64) as u32,
                };
                let gen = AccessTraceGenerator::new(
                    p,
                    self.config.geometry.blocks_per_row(),
                    self.seed.wrapping_add(i as u64 * 0x9E37_79B9),
                );
                OooCore::new(
                    i as u8,
                    gen,
                    map,
                    u64::from(self.config.window),
                    instructions_per_core,
                )
            })
            .collect();
        self.instructions_per_core = instructions_per_core;
    }

    /// Runs until every core retires `instructions_per_core` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds a generous safety bound (pathological IPC
    /// below ~0.01), indicating a deadlock bug rather than a slow workload.
    pub fn run(&mut self, instructions_per_core: u64) -> SimStats {
        let _run_span = telemetry::tree_span("memsim.run");
        // Controller statistics accumulate across runs on the same system;
        // snapshot them so telemetry reports this run's delta.
        let ctrl_before = self.controller.stats;
        let injected_before = self.injector.as_ref().map_or(0, |i| i.injected);
        self.build_cores(instructions_per_core);
        let budget = self.config.retire_budget_per_dram_cycle();
        let max_cycles = instructions_per_core.max(1_000) * 120;
        let mut now = 0u64;
        // Completions carry a future done_cycle (data-return time); hold
        // them until then so loads observe their real latency.
        let mut in_flight: Vec<crate::request::Completion> = Vec::new();
        while now < max_cycles {
            self.controller.tick(now);
            in_flight.extend(self.controller.drain_completions());
            in_flight.retain(|c| {
                if c.done_cycle > now {
                    return true;
                }
                if let Requester::Core(id) = c.requester {
                    if !c.is_write {
                        self.cores[usize::from(id)].on_completion(c.id);
                    }
                }
                false
            });
            if let Some(inj) = &mut self.injector {
                inj.step(now, &mut self.controller, &mut self.next_id);
            }
            let mut all_done = true;
            for core in &mut self.cores {
                core.step(now, budget, &mut self.controller, &mut self.next_id);
                all_done &= core.done();
            }
            if all_done {
                break;
            }
            now += 1;
        }
        assert!(
            self.cores.iter().all(OooCore::done),
            "simulation exceeded {max_cycles} cycles without finishing — deadlock?"
        );
        let cpu_per_dram = self.config.cpu_cycles_per_dram_cycle();
        let per_core_cycles: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.finished_at.expect("all cores done") + 1)
            .collect();
        let per_core_ipc = per_core_cycles
            .iter()
            .map(|&c| instructions_per_core as f64 / (c * cpu_per_dram) as f64)
            .collect();
        let test_requests = self.injector.as_ref().map_or(0, |i| i.injected);
        if telemetry::enabled() {
            flush_ctrl_telemetry(
                &self.controller.stats,
                &ctrl_before,
                now,
                test_requests.saturating_sub(injected_before),
            );
        }
        SimStats {
            per_core_cycles,
            per_core_ipc,
            ctrl: self.controller.stats,
            total_cycles: now,
            test_requests,
        }
    }
}

/// Folds one run's controller-statistics delta into the current telemetry
/// registry. Everything here derives from simulated cycles, so the values
/// are deterministic; called once per [`System::run`] to keep the per-cycle
/// loop telemetry-free.
fn flush_ctrl_telemetry(after: &CtrlStats, before: &CtrlStats, cycles: u64, injected: u64) {
    for (name, a, b) in [
        ("memsim.ctrl.reads", after.reads, before.reads),
        ("memsim.ctrl.writes", after.writes, before.writes),
        ("memsim.ctrl.acts", after.acts, before.acts),
        (
            "memsim.ctrl.column_accesses",
            after.column_accesses,
            before.column_accesses,
        ),
        ("memsim.ctrl.refreshes", after.refreshes, before.refreshes),
        (
            "memsim.ctrl.refresh_blackout_cycles",
            after.refresh_blackout_cycles,
            before.refresh_blackout_cycles,
        ),
        ("memsim.ctrl.rejected", after.rejected, before.rejected),
        (
            "memsim.ctrl.trrd_stalls",
            after.trrd_stalls,
            before.trrd_stalls,
        ),
        (
            "memsim.ctrl.tfaw_stalls",
            after.tfaw_stalls,
            before.tfaw_stalls,
        ),
        (
            "fault.memsim.cmd_drop",
            after.faults_dropped,
            before.faults_dropped,
        ),
        (
            "fault.memsim.cmd_dup",
            after.faults_duplicated,
            before.faults_duplicated,
        ),
        (
            "fault.memsim.timing_violation",
            after.faults_timing,
            before.faults_timing,
        ),
        (
            "fault.memsim.refresh_overrun",
            after.faults_refresh_overrun_cycles,
            before.faults_refresh_overrun_cycles,
        ),
    ] {
        telemetry::count(name, a.saturating_sub(b));
    }
    telemetry::count("memsim.sim.cycles", cycles);
    telemetry::count("memsim.sim.test_requests", injected);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefreshPolicy;
    use dram::geometry::ChipDensity;
    use memtrace::cpu::spec_tpc_pool;

    const INST: u64 = 200_000;

    fn run_with(policy: RefreshPolicy, density: ChipDensity, profile_idx: usize) -> SimStats {
        let config = SystemConfig::new(1, density, policy);
        let mut sys = System::new(config, vec![spec_tpc_pool()[profile_idx]], 7);
        sys.run(INST)
    }

    #[test]
    fn run_produces_sane_ipc() {
        let stats = run_with(RefreshPolicy::None, ChipDensity::Gb8, 0);
        assert_eq!(stats.per_core_cycles.len(), 1);
        let ipc = stats.per_core_ipc[0];
        assert!(ipc > 0.05 && ipc <= 4.0, "IPC {ipc}");
        assert!(stats.ctrl.reads > 0);
        assert!(stats.ctrl.writes > 0);
    }

    #[test]
    fn refresh_slows_execution() {
        // mcf (memory-intensive): the aggressive 16 ms baseline must cost
        // performance vs no refresh.
        let no_ref = run_with(RefreshPolicy::None, ChipDensity::Gb8, 0);
        let base = run_with(RefreshPolicy::baseline_16ms(), ChipDensity::Gb8, 0);
        assert!(
            base.per_core_cycles[0] > no_ref.per_core_cycles[0],
            "refresh should add cycles: {} vs {}",
            base.per_core_cycles[0],
            no_ref.per_core_cycles[0]
        );
        assert!(base.ctrl.refreshes > 0);
    }

    #[test]
    fn reduced_refresh_recovers_performance() {
        let base = run_with(RefreshPolicy::baseline_16ms(), ChipDensity::Gb32, 0);
        let reduced = run_with(
            RefreshPolicy::Reduced {
                baseline_interval_ms: 16.0,
                reduction: 0.75,
            },
            ChipDensity::Gb32,
            0,
        );
        let speedup = reduced.speedup_over(&base);
        assert!(
            speedup > 1.05,
            "75% refresh reduction at 32 Gb should speed up mcf, got {speedup}"
        );
    }

    #[test]
    fn denser_chips_suffer_more_from_refresh() {
        let cost = |d: ChipDensity| {
            let no_ref = run_with(RefreshPolicy::None, d, 0);
            let base = run_with(RefreshPolicy::baseline_16ms(), d, 0);
            base.per_core_cycles[0] as f64 / no_ref.per_core_cycles[0] as f64
        };
        let c8 = cost(ChipDensity::Gb8);
        let c32 = cost(ChipDensity::Gb32);
        assert!(
            c32 > c8,
            "32 Gb refresh cost ({c32}) should exceed 8 Gb ({c8})"
        );
    }

    #[test]
    fn four_core_run_completes() {
        let config = SystemConfig::new(4, ChipDensity::Gb8, RefreshPolicy::baseline_16ms());
        let pool = spec_tpc_pool();
        let mut sys = System::new(config, vec![pool[0], pool[4], pool[8], pool[12]], 11);
        let stats = sys.run(50_000);
        assert_eq!(stats.per_core_cycles.len(), 4);
        assert!(stats.per_core_ipc.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn test_injection_adds_modest_overhead() {
        let config = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::baseline_16ms());
        let mut plain = System::new(config.clone(), vec![spec_tpc_pool()[0]], 7);
        let base = plain.run(INST);
        let mut injected = System::new(config, vec![spec_tpc_pool()[0]], 7)
            .with_test_injection(crate::testinject::TestInjectConfig::read_and_compare(256));
        let with_tests = injected.run(INST);
        assert!(with_tests.test_requests > 0);
        let slowdown = with_tests.per_core_cycles[0] as f64 / base.per_core_cycles[0] as f64 - 1.0;
        // Paper Table 3: ~0.5% at 256 tests; allow generous headroom but it
        // must stay small.
        assert!(
            (0.0..0.10).contains(&slowdown),
            "testing overhead {slowdown}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_with(RefreshPolicy::baseline_16ms(), ChipDensity::Gb8, 2);
        let b = run_with(RefreshPolicy::baseline_16ms(), ChipDensity::Gb8, 2);
        assert_eq!(a.per_core_cycles, b.per_core_cycles);
    }

    #[test]
    #[should_panic(expected = "one profile per core")]
    fn profile_count_must_match_cores() {
        let config = SystemConfig::four_core_baseline();
        let _ = System::new(config, vec![spec_tpc_pool()[0]], 0);
    }

    #[test]
    fn speedup_metric() {
        let a = SimStats {
            per_core_cycles: vec![100],
            per_core_ipc: vec![1.0],
            ctrl: CtrlStats::default(),
            total_cycles: 100,
            test_requests: 0,
        };
        let b = SimStats {
            per_core_cycles: vec![80],
            per_core_ipc: vec![1.25],
            ctrl: CtrlStats::default(),
            total_cycles: 80,
            test_requests: 0,
        };
        assert!((b.speedup_over(&a) - 1.25).abs() < 1e-12);
    }
}
