//! Rank-level refresh scheduling.
//!
//! DDR3 refresh is a rank-wide operation: every `tREFI` the controller must
//! issue a `REF` that occupies the whole rank for `tRFC`. All banks must be
//! precharged first, so a due refresh forces the controller to drain open
//! rows. The MEMCON/RAIDR multi-rate policies are modelled (as in the paper)
//! by stretching the effective `tREFI` according to the refresh-operation
//! reduction they achieve.

use crate::config::RefreshPolicy;
use dram::timing::TimingParams;

/// Tracks when refreshes are due and how many were issued.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshScheduler {
    trefi_cycles: Option<u64>,
    next_due: u64,
    /// Number of refresh commands issued.
    pub issued: u64,
    /// Cycles spent with the rank blacked out by refresh.
    pub blackout_cycles: u64,
}

impl RefreshScheduler {
    /// Builds a scheduler for the given policy and timing.
    #[must_use]
    pub fn new(policy: RefreshPolicy, timing: &TimingParams) -> Self {
        let trefi = policy.trefi_cycles(timing);
        RefreshScheduler {
            trefi_cycles: trefi,
            next_due: trefi.unwrap_or(u64::MAX),
            issued: 0,
            blackout_cycles: 0,
        }
    }

    /// Effective refresh command interval, if refresh is enabled.
    #[must_use]
    pub fn trefi_cycles(&self) -> Option<u64> {
        self.trefi_cycles
    }

    /// Whether a refresh is due at `now`.
    #[must_use]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    /// Records that a refresh started at `now`, blacking the rank out for
    /// `trfc_cycles`. Returns the cycle the rank becomes usable again.
    ///
    /// # Panics
    ///
    /// Panics if refresh is disabled.
    pub fn start(&mut self, now: u64, trfc_cycles: u64) -> u64 {
        let trefi = self
            .trefi_cycles
            .expect("cannot start refresh with refresh disabled");
        self.issued += 1;
        self.blackout_cycles += trfc_cycles;
        // Schedule strictly from the previous due point so a late refresh
        // does not slip the long-run rate (DDR3 allows bounded postponement).
        self.next_due = self.next_due.max(now.saturating_sub(8 * trefi)) + trefi;
        now + trfc_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefreshPolicy;

    fn timing() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn disabled_policy_is_never_due() {
        let s = RefreshScheduler::new(RefreshPolicy::None, &timing());
        assert!(!s.due(u64::MAX - 1));
        assert_eq!(s.trefi_cycles(), None);
    }

    #[test]
    fn due_at_trefi() {
        let s = RefreshScheduler::new(RefreshPolicy::baseline_16ms(), &timing());
        let trefi = s.trefi_cycles().unwrap();
        assert!(!s.due(trefi - 1));
        assert!(s.due(trefi));
    }

    #[test]
    fn long_run_rate_is_preserved() {
        let t = timing();
        let mut s = RefreshScheduler::new(RefreshPolicy::baseline_16ms(), &t);
        let trefi = s.trefi_cycles().unwrap();
        let trfc = t.trfc_cycles();
        let horizon = trefi * 1000;
        let mut now = 0;
        while now < horizon {
            if s.due(now) {
                now = s.start(now, trfc);
            } else {
                now += 1;
            }
        }
        // Should have issued very close to horizon / trefi refreshes.
        let expected = horizon / trefi;
        assert!(
            s.issued >= expected - 2 && s.issued <= expected + 2,
            "issued {} vs expected {expected}",
            s.issued
        );
        assert_eq!(s.blackout_cycles, s.issued * trfc);
    }

    #[test]
    fn reduced_policy_issues_fewer() {
        let t = timing();
        let run = |policy: RefreshPolicy| {
            let mut s = RefreshScheduler::new(policy, &t);
            let horizon = 10_000_000u64;
            let mut now = 0;
            while now < horizon {
                if s.due(now) {
                    now = s.start(now, t.trfc_cycles());
                } else {
                    now += 64;
                }
            }
            s.issued
        };
        let base = run(RefreshPolicy::baseline_16ms());
        let reduced = run(RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: 0.75,
        });
        let ratio = reduced as f64 / base as f64;
        assert!(
            (ratio - 0.25).abs() < 0.02,
            "75% reduction should issue ~25% of refreshes, got ratio {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "refresh disabled")]
    fn start_without_refresh_panics() {
        let mut s = RefreshScheduler::new(RefreshPolicy::None, &timing());
        let _ = s.start(0, 10);
    }
}
