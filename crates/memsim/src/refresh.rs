//! Rank-level refresh scheduling.
//!
//! DDR3 refresh is a rank-wide operation: every `tREFI` the controller must
//! issue a `REF` that occupies the whole rank for `tRFC`. All banks must be
//! precharged first, so a due refresh forces the controller to drain open
//! rows. The MEMCON/RAIDR multi-rate policies are modelled (as in the paper)
//! by stretching the effective `tREFI` according to the refresh-operation
//! reduction they achieve.

use crate::config::RefreshPolicy;
use dram::timing::TimingParams;
use memutil::calq::CalendarQueue;

/// Tracks when refreshes are due and how many were issued.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshScheduler {
    trefi_cycles: Option<u64>,
    next_due: u64,
    /// Number of refresh commands issued.
    pub issued: u64,
    /// Cycles spent with the rank blacked out by refresh.
    pub blackout_cycles: u64,
}

impl RefreshScheduler {
    /// Builds a scheduler for the given policy and timing.
    #[must_use]
    pub fn new(policy: RefreshPolicy, timing: &TimingParams) -> Self {
        let trefi = policy.trefi_cycles(timing);
        RefreshScheduler {
            trefi_cycles: trefi,
            next_due: trefi.unwrap_or(u64::MAX),
            issued: 0,
            blackout_cycles: 0,
        }
    }

    /// Effective refresh command interval, if refresh is enabled.
    #[must_use]
    pub fn trefi_cycles(&self) -> Option<u64> {
        self.trefi_cycles
    }

    /// Whether a refresh is due at `now`.
    #[must_use]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    /// Records that a refresh started at `now`, blacking the rank out for
    /// `trfc_cycles`. Returns the cycle the rank becomes usable again.
    ///
    /// # Panics
    ///
    /// Panics if refresh is disabled.
    pub fn start(&mut self, now: u64, trfc_cycles: u64) -> u64 {
        let trefi = self
            .trefi_cycles
            .expect("cannot start refresh with refresh disabled");
        self.issued += 1;
        self.blackout_cycles += trfc_cycles;
        // Schedule strictly from the previous due point so a late refresh
        // does not slip the long-run rate (DDR3 allows bounded postponement).
        self.next_due = self.next_due.max(now.saturating_sub(8 * trefi)) + trefi;
        now + trfc_cycles
    }
}

/// Row-granularity multi-rate refresh scheduling (RAIDR/MEMCON style):
/// every row is assigned a retention *bin* — a per-row refresh interval in
/// cycles — and the scheduler answers "which rows must refresh by cycle
/// `now`" in time proportional to the number of *due* rows, via the shared
/// calendar queue ([`memutil::calq::CalendarQueue`]).
///
/// This is the row-granular counterpart of the rank-wide
/// [`RefreshScheduler`]: the rank scheduler models the DDR3 `REF` command
/// stream, while this plane models which rows a multi-rate policy would
/// actually walk per interval (and therefore the per-bin refresh-energy
/// split). Rebinning a row (e.g. MEMCON moving a page between HI-REF and
/// LO-REF) reschedules it drift-free; pops are emitted in deterministic
/// `(due, row)` order. Equivalence against the linear-scan reference
/// (`memutil::calq::ScanQueue`) is pinned by the property test below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBinRefresh {
    /// Per-row refresh interval in cycles, indexed by row.
    interval_cycles: Vec<u64>,
    due: CalendarQueue,
    /// Row refreshes issued (pops).
    pub issued: u64,
}

impl RowBinRefresh {
    /// Builds a scheduler for `intervals[row]`-cycle bins; every row's first
    /// refresh comes due one interval after cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if any interval is zero.
    #[must_use]
    pub fn new(intervals: &[u64]) -> Self {
        assert!(
            intervals.iter().all(|&i| i > 0),
            "row refresh intervals must be positive"
        );
        let min_interval = intervals.iter().copied().min().unwrap_or(1);
        let max_interval = intervals.iter().copied().max().unwrap_or(1);
        // Slot = 1/8 of the fastest bin; wheel spans the slowest bin.
        let slot = (min_interval / 8).max(1);
        let mut due = CalendarQueue::new(intervals.len(), slot, (max_interval / slot + 2) as usize);
        for (row, &interval) in intervals.iter().enumerate() {
            due.schedule(row as u64, interval);
        }
        RowBinRefresh {
            interval_cycles: intervals.to_vec(),
            due,
            issued: 0,
        }
    }

    /// Number of rows tracked.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.interval_cycles.len()
    }

    /// The row's bin interval in cycles.
    #[must_use]
    pub fn interval_of(&self, row: u64) -> u64 {
        self.interval_cycles[row as usize]
    }

    /// The row's next refresh instant in cycles.
    #[must_use]
    pub fn next_due(&self, row: u64) -> Option<u64> {
        self.due.due_of(row)
    }

    /// Moves `row` to a new bin at `now`: its next refresh comes due one new
    /// interval out (the rebinning transition itself refreshes the row).
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn rebin(&mut self, row: u64, interval_cycles: u64, now: u64) {
        assert!(
            interval_cycles > 0,
            "row refresh intervals must be positive"
        );
        self.interval_cycles[row as usize] = interval_cycles;
        self.due.schedule(row, now + interval_cycles);
    }

    /// Drains every row due at or before `now` into `out` in ascending
    /// `(due, row)` order, rescheduling each drift-free at `due + interval`.
    /// Cost tracks the due rows, not the row population.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<u64>) {
        let mut entries = Vec::new();
        self.due.pop_due(now, &mut entries);
        for &(due_at, row) in &entries {
            self.due
                .schedule(row, due_at + self.interval_cycles[row as usize]);
            out.push(row);
        }
        self.issued += entries.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefreshPolicy;

    fn timing() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn disabled_policy_is_never_due() {
        let s = RefreshScheduler::new(RefreshPolicy::None, &timing());
        assert!(!s.due(u64::MAX - 1));
        assert_eq!(s.trefi_cycles(), None);
    }

    #[test]
    fn due_at_trefi() {
        let s = RefreshScheduler::new(RefreshPolicy::baseline_16ms(), &timing());
        let trefi = s.trefi_cycles().unwrap();
        assert!(!s.due(trefi - 1));
        assert!(s.due(trefi));
    }

    #[test]
    fn long_run_rate_is_preserved() {
        let t = timing();
        let mut s = RefreshScheduler::new(RefreshPolicy::baseline_16ms(), &t);
        let trefi = s.trefi_cycles().unwrap();
        let trfc = t.trfc_cycles();
        let horizon = trefi * 1000;
        let mut now = 0;
        while now < horizon {
            if s.due(now) {
                now = s.start(now, trfc);
            } else {
                now += 1;
            }
        }
        // Should have issued very close to horizon / trefi refreshes.
        let expected = horizon / trefi;
        assert!(
            s.issued >= expected - 2 && s.issued <= expected + 2,
            "issued {} vs expected {expected}",
            s.issued
        );
        assert_eq!(s.blackout_cycles, s.issued * trfc);
    }

    #[test]
    fn reduced_policy_issues_fewer() {
        let t = timing();
        let run = |policy: RefreshPolicy| {
            let mut s = RefreshScheduler::new(policy, &t);
            let horizon = 10_000_000u64;
            let mut now = 0;
            while now < horizon {
                if s.due(now) {
                    now = s.start(now, t.trfc_cycles());
                } else {
                    now += 64;
                }
            }
            s.issued
        };
        let base = run(RefreshPolicy::baseline_16ms());
        let reduced = run(RefreshPolicy::Reduced {
            baseline_interval_ms: 16.0,
            reduction: 0.75,
        });
        let ratio = reduced as f64 / base as f64;
        assert!(
            (ratio - 0.25).abs() < 0.02,
            "75% reduction should issue ~25% of refreshes, got ratio {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "refresh disabled")]
    fn start_without_refresh_panics() {
        let mut s = RefreshScheduler::new(RefreshPolicy::None, &timing());
        let _ = s.start(0, 10);
    }

    #[test]
    fn row_bins_refresh_at_their_own_rates() {
        // Two fast rows (1000 cycles) and one slow row (4000 cycles).
        let mut s = RowBinRefresh::new(&[1000, 1000, 4000]);
        let mut out = Vec::new();
        s.pop_due(1000, &mut out);
        assert_eq!(out, vec![0, 1]);
        // Fast rows owe refreshes at 2000/3000/4000, the slow row one at
        // 4000; a lagging row is emitted once per call until caught up.
        let mut rounds = Vec::new();
        loop {
            let mut round = Vec::new();
            s.pop_due(4000, &mut round);
            if round.is_empty() {
                break;
            }
            rounds.push(round);
        }
        assert_eq!(rounds, vec![vec![0, 1, 2], vec![0, 1], vec![0, 1]]);
        assert_eq!(s.issued, 9);
        assert_eq!(s.next_due(2), Some(8000));
    }

    #[test]
    fn rebin_moves_a_row_drift_free_from_now() {
        let mut s = RowBinRefresh::new(&[1000, 1000]);
        s.rebin(1, 4000, 500); // row 1 promoted to the slow bin at cycle 500
        assert_eq!(s.next_due(1), Some(4500));
        assert_eq!(s.interval_of(1), 4000);
        let mut out = Vec::new();
        s.pop_due(2000, &mut out); // row 0's 1000-cycle refresh, once per call
        assert_eq!(out, vec![0], "only the fast row refreshes");
        out.clear();
        s.pop_due(2000, &mut out); // catch-up: the 2000-cycle instant
        assert_eq!(out, vec![0]);
    }

    /// Seeded equivalence property: the calendar-queue row plane matches a
    /// linear-scan mirror under random rebinning and ragged pop times.
    #[test]
    fn prop_row_plane_matches_scan_reference() {
        use memutil::calq::ScanQueue;
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let n_rows = 32usize;
        let bins = [1000u64, 2000, 8000];
        for seed in [0xB1D_1u64, 0xB1D_2, 0xB1D_3] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let intervals: Vec<u64> = (0..n_rows)
                .map(|_| bins[rng.gen_range(0usize..bins.len())])
                .collect();
            let mut fast = RowBinRefresh::new(&intervals);
            let mut mirror = ScanQueue::new(n_rows);
            let mut mirror_intervals = intervals.clone();
            for (row, &i) in intervals.iter().enumerate() {
                mirror.schedule(row as u64, i);
            }
            let mut now = 0u64;
            for _ in 0..800 {
                if rng.gen_range(0u32..3) == 0 {
                    let row = rng.gen_range(0u64..n_rows as u64);
                    let interval = bins[rng.gen_range(0usize..bins.len())];
                    fast.rebin(row, interval, now);
                    mirror_intervals[row as usize] = interval;
                    mirror.schedule(row, now + interval);
                } else {
                    now += rng.gen_range(0u64..3000);
                    let mut got = Vec::new();
                    fast.pop_due(now, &mut got);
                    let mut entries = Vec::new();
                    mirror.pop_due(now, &mut entries);
                    for &(due_at, row) in &entries {
                        mirror.schedule(row, due_at + mirror_intervals[row as usize]);
                    }
                    let expect: Vec<u64> = entries.iter().map(|&(_, r)| r).collect();
                    assert_eq!(got, expect, "row pop diverged at now={now}");
                }
            }
        }
    }
}
