//! Memory requests at cache-block granularity.

/// Identifier handed back on completion so the issuing core can unblock the
/// right ROB entry.
pub type RequestId = u64;

/// Who issued a request — a core (demand traffic) or the MEMCON test engine
/// (injected test traffic, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// Demand access from core `id`.
    Core(u8),
    /// MEMCON online-test traffic.
    TestEngine,
}

/// One cache-block DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id (assigned by the system).
    pub id: RequestId,
    /// Issuer.
    pub requester: Requester,
    /// Target bank (flattened rank × bank).
    pub bank: usize,
    /// Row within the bank.
    pub row: u32,
    /// Cache-block column within the row.
    pub block: u32,
    /// Write (writeback) vs read.
    pub is_write: bool,
    /// Controller cycle at which the request arrived.
    pub arrive_cycle: u64,
}

/// A completed request: its id and the cycle its data transfer finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The completed request's id.
    pub id: RequestId,
    /// The completed request's issuer.
    pub requester: Requester,
    /// Whether it was a write.
    pub is_write: bool,
    /// Cycle at which data finished transferring.
    pub done_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requester_distinguishes_cores() {
        assert_ne!(Requester::Core(0), Requester::Core(1));
        assert_ne!(Requester::Core(0), Requester::TestEngine);
    }

    #[test]
    fn request_is_plain_data() {
        let r = MemRequest {
            id: 1,
            requester: Requester::Core(0),
            bank: 3,
            row: 42,
            block: 7,
            is_write: false,
            arrive_cycle: 100,
        };
        let copy = r;
        assert_eq!(copy, r, "MemRequest is Copy + Eq plain data");
    }
}
