//! USIMM-style out-of-order core frontend.
//!
//! The paper's performance model needs exactly what this captures: memory
//! reads expose latency only when they block retirement at the head of a
//! 128-entry instruction window, writes retire into a write buffer, and
//! fetch stalls when the window or the memory queues fill. One instruction
//! window entry per instruction; runs of non-memory instructions are stored
//! run-length-encoded.

use std::collections::{HashSet, VecDeque};

use memtrace::cpu::{AccessTraceGenerator, CpuAccess};

use crate::controller::MemoryController;
use crate::request::{MemRequest, RequestId, Requester};

/// One instruction-window entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobEntry {
    /// A run of non-memory instructions.
    NonMem(u64),
    /// A load; retires only once its request completes.
    Read(RequestId),
    /// A store; retires immediately (write buffer).
    Write,
}

/// Maps a workload-local row onto (bank, device row) — row-interleaved
/// across banks, with a per-core base offset spreading cores across the row
/// space. Footprints larger than the per-core span wrap and may alias other
/// cores' rows, like physical pages shared across a real multiprogrammed
/// system — harmless for timing, slightly favourable for row-buffer
/// locality.
#[derive(Debug, Clone, Copy)]
pub struct AddressMap {
    /// Number of banks to interleave across.
    pub n_banks: usize,
    /// Rows per bank in the device.
    pub rows_per_bank: u32,
    /// Per-core row offset.
    pub row_base: u32,
}

impl AddressMap {
    /// Maps a local row id to `(bank, device_row)`.
    #[must_use]
    pub fn map(&self, local_row: u64) -> (usize, u32) {
        let bank = (local_row % self.n_banks as u64) as usize;
        let row = ((local_row / self.n_banks as u64) as u32).wrapping_add(self.row_base)
            % self.rows_per_bank;
        (bank, row)
    }
}

/// The out-of-order core model.
#[derive(Debug)]
pub struct OooCore {
    id: u8,
    gen: AccessTraceGenerator,
    map: AddressMap,
    window: u64,
    rob: VecDeque<RobEntry>,
    rob_occupancy: u64,
    /// Non-memory instructions of the current gap still to fetch.
    gap_remaining: u64,
    /// The memory access waiting to be fetched/issued.
    pending: Option<CpuAccess>,
    completed_reads: HashSet<RequestId>,
    retired: u64,
    target: u64,
    /// DRAM cycle at which the retirement target was reached.
    pub finished_at: Option<u64>,
    /// Total reads issued.
    pub reads_issued: u64,
    /// Total writes issued.
    pub writes_issued: u64,
}

impl OooCore {
    /// Creates a core with the given trace generator, address map, and
    /// window capacity.
    #[must_use]
    pub fn new(
        id: u8,
        gen: AccessTraceGenerator,
        map: AddressMap,
        window: u64,
        target: u64,
    ) -> Self {
        let mut core = OooCore {
            id,
            gen,
            map,
            window,
            rob: VecDeque::new(),
            rob_occupancy: 0,
            gap_remaining: 0,
            pending: None,
            completed_reads: HashSet::new(),
            retired: 0,
            target,
            finished_at: None,
            reads_issued: 0,
            writes_issued: 0,
        };
        core.advance_access();
        core
    }

    fn advance_access(&mut self) {
        let access = self.gen.next().expect("generator is infinite");
        self.gap_remaining = access.inst_gap;
        self.pending = Some(access);
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the retirement target has been reached.
    #[must_use]
    pub fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Notifies the core that read `id` completed.
    pub fn on_completion(&mut self, id: RequestId) {
        self.completed_reads.insert(id);
    }

    /// Fetch + retire for one DRAM cycle. `budget` is the instruction budget
    /// (width × CPU cycles per DRAM cycle). `next_id` supplies fresh request
    /// ids; returns the number consumed.
    pub fn step(
        &mut self,
        now: u64,
        budget: u64,
        controller: &mut MemoryController,
        next_id: &mut RequestId,
    ) -> u64 {
        let ids_before = *next_id;
        self.fetch(now, budget, controller, next_id);
        self.retire(now, budget);
        *next_id - ids_before
    }

    fn fetch(
        &mut self,
        now: u64,
        mut budget: u64,
        controller: &mut MemoryController,
        next_id: &mut RequestId,
    ) {
        while budget > 0 && self.rob_occupancy < self.window {
            if self.gap_remaining > 0 {
                let take = self
                    .gap_remaining
                    .min(budget)
                    .min(self.window - self.rob_occupancy);
                if let Some(RobEntry::NonMem(n)) = self.rob.back_mut() {
                    *n += take;
                } else {
                    self.rob.push_back(RobEntry::NonMem(take));
                }
                self.rob_occupancy += take;
                self.gap_remaining -= take;
                budget -= take;
                continue;
            }
            // The pending access itself.
            let access = self.pending.expect("pending access present when gap is 0");
            let (bank, row) = self.map.map(access.row);
            if !controller.can_accept(bank) {
                return; // fetch stalls until queue space frees up
            }
            let id = *next_id;
            *next_id += 1;
            let req = MemRequest {
                id,
                requester: Requester::Core(self.id),
                bank,
                row,
                block: access.block,
                is_write: access.is_write,
                arrive_cycle: now,
            };
            if let Err(e) = controller.enqueue(req) {
                // `can_accept` held, so only the fault injector can bounce
                // the command; give back the id and retry next cycle — a
                // core must never lose an access.
                debug_assert!(
                    matches!(e, crate::controller::EnqueueError::FaultDropped(_)),
                    "queue-full despite can_accept: {e}"
                );
                *next_id -= 1;
                return;
            }
            if access.is_write {
                self.writes_issued += 1;
                self.rob.push_back(RobEntry::Write);
            } else {
                self.reads_issued += 1;
                self.rob.push_back(RobEntry::Read(id));
            }
            self.rob_occupancy += 1;
            budget -= 1;
            self.advance_access();
        }
    }

    fn retire(&mut self, now: u64, mut budget: u64) {
        while budget > 0 {
            match self.rob.front_mut() {
                None => return,
                Some(RobEntry::NonMem(n)) => {
                    let take = (*n).min(budget);
                    *n -= take;
                    let emptied = *n == 0;
                    budget -= take;
                    self.rob_occupancy -= take;
                    self.bump_retired(take, now);
                    if emptied {
                        self.rob.pop_front();
                    }
                }
                Some(RobEntry::Write) => {
                    self.rob.pop_front();
                    self.rob_occupancy -= 1;
                    budget -= 1;
                    self.bump_retired(1, now);
                }
                Some(RobEntry::Read(id)) if self.completed_reads.remove(id) => {
                    self.rob.pop_front();
                    self.rob_occupancy -= 1;
                    budget -= 1;
                    self.bump_retired(1, now);
                }
                Some(RobEntry::Read(_)) => return, // head load outstanding
            }
        }
    }

    fn bump_retired(&mut self, n: u64, now: u64) {
        self.retired += n;
        if self.finished_at.is_none() && self.retired >= self.target {
            self.finished_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RefreshPolicy, SystemConfig};
    use dram::geometry::ChipDensity;
    use memtrace::cpu::CpuWorkloadProfile;

    fn make_core(profile: CpuWorkloadProfile, target: u64) -> (OooCore, MemoryController) {
        let cfg = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::None);
        let ctrl = MemoryController::new(&cfg);
        let map = AddressMap {
            n_banks: ctrl.n_banks(),
            rows_per_bank: cfg.geometry.rows_per_bank,
            row_base: 0,
        };
        let gen = AccessTraceGenerator::new(profile, 128, 42);
        (OooCore::new(0, gen, map, 128, target), ctrl)
    }

    fn low_mpki() -> CpuWorkloadProfile {
        CpuWorkloadProfile {
            name: "low",
            mpki: 1.0,
            write_frac: 0.3,
            row_locality: 0.5,
            footprint_rows: 1000,
        }
    }

    fn high_mpki() -> CpuWorkloadProfile {
        CpuWorkloadProfile {
            name: "high",
            mpki: 30.0,
            write_frac: 0.3,
            row_locality: 0.2,
            footprint_rows: 100_000,
        }
    }

    fn run(core: &mut OooCore, ctrl: &mut MemoryController, max_cycles: u64) -> u64 {
        let mut next_id = 0;
        for now in 0..max_cycles {
            ctrl.tick(now);
            for c in ctrl.drain_completions() {
                if !c.is_write {
                    core.on_completion(c.id);
                }
            }
            core.step(now, 20, ctrl, &mut next_id);
            if core.done() {
                return core.finished_at.unwrap();
            }
        }
        panic!("core did not finish in {max_cycles} cycles");
    }

    #[test]
    fn compute_bound_core_retires_at_full_width() {
        let (mut core, mut ctrl) = make_core(low_mpki(), 100_000);
        let cycles = run(&mut core, &mut ctrl, 100_000);
        // 100K instructions at 20 per DRAM cycle = 5000 cycles minimum; a
        // 1-MPKI workload should stay close to that.
        assert!(
            cycles < 12_000,
            "low-MPKI workload took {cycles} DRAM cycles for 100K inst"
        );
    }

    #[test]
    fn memory_bound_core_is_slower() {
        let (mut core_l, mut ctrl_l) = make_core(low_mpki(), 50_000);
        let (mut core_h, mut ctrl_h) = make_core(high_mpki(), 50_000);
        let fast = run(&mut core_l, &mut ctrl_l, 1_000_000);
        let slow = run(&mut core_h, &mut ctrl_h, 10_000_000);
        assert!(
            slow > 2 * fast,
            "high-MPKI ({slow}) should be much slower than low-MPKI ({fast})"
        );
    }

    #[test]
    fn window_limits_outstanding_reads() {
        let (mut core, mut ctrl) = make_core(high_mpki(), 10_000);
        let mut next_id = 0;
        // Fetch without any completions: occupancy must cap at the window.
        for now in 0..1000 {
            core.step(now, 20, &mut ctrl, &mut next_id);
        }
        assert!(core.rob_occupancy <= 128);
        assert!(!core.done());
    }

    #[test]
    fn reads_block_retirement_until_completion() {
        let profile = CpuWorkloadProfile {
            name: "allreads",
            mpki: 1000.0, // every instruction is a memory access
            write_frac: 0.0,
            row_locality: 0.9,
            footprint_rows: 10,
        };
        let (mut core, mut ctrl) = make_core(profile, 100);
        let mut next_id = 0;
        // Without draining completions, retirement stalls at the first read
        // (only the handful of non-memory gap instructions before it can
        // retire).
        for now in 0..100 {
            core.step(now, 20, &mut ctrl, &mut next_id);
        }
        assert!(core.retired() <= 5, "retired {}", core.retired());
        // With the full loop, it finishes.
        let cycles = run(&mut core, &mut ctrl, 1_000_000);
        assert!(cycles > 0);
    }

    #[test]
    fn writes_do_not_block_retirement() {
        let profile = CpuWorkloadProfile {
            name: "allwrites",
            mpki: 1000.0,
            write_frac: 1.0,
            row_locality: 0.9,
            footprint_rows: 10,
        };
        let (mut core, mut ctrl) = make_core(profile, 200);
        let mut next_id = 0;
        for now in 0..10_000 {
            ctrl.tick(now);
            let _ = ctrl.drain_completions();
            core.step(now, 20, &mut ctrl, &mut next_id);
            if core.done() {
                break;
            }
        }
        assert!(
            core.done(),
            "write-only stream should retire without completions"
        );
    }

    #[test]
    fn address_map_spreads_banks() {
        let map = AddressMap {
            n_banks: 8,
            rows_per_bank: 1024,
            row_base: 0,
        };
        let banks: std::collections::HashSet<usize> = (0..16u64).map(|r| map.map(r).0).collect();
        assert_eq!(banks.len(), 8);
        let (b0, r0) = map.map(0);
        let (b8, r8) = map.map(8);
        assert_eq!(b0, b8);
        assert_eq!(r8, r0 + 1);
    }
}
