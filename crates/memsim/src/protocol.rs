//! DRAM protocol auditor: an independent shadow model of the DDR3 bank and
//! rank state machines that validates every command the controller issues.
//!
//! [`crate::controller::MemoryController`] already refuses commands its
//! per-bank [`dram::bank::Bank`] automata reject — but the automata only see
//! what the controller shows them, so a scheduler bug that *bypasses* a bank
//! (wrong row on a column command, an activate slipped inside a refresh
//! blackout, rank-level `tRRD`/`tFAW` never consulted) is invisible to them.
//! The [`ProtocolChecker`] re-derives every constraint from scratch off the
//! raw command stream:
//!
//! * **bank state machine** — `ACT` only on a closed bank, column commands
//!   only on an open bank *and only to the open row*, `REF` only with every
//!   bank precharged,
//! * **bank timing** — `tRCD` (ACT→column), `tRP` (PRE→ACT), `tRAS`
//!   (ACT→PRE), `tCCD` (column→column), `tRTP`/`tWR` (column→PRE), `tWTR`
//!   (write→read turnaround),
//! * **rank timing** — `tRRD` (ACT→ACT across banks) and the `tFAW`
//!   sliding window (at most 4 activates in any `tFAW` span),
//! * **refresh** — no command may land inside the `tRFC` blackout, and when
//!   a `tREFI` obligation is configured, consecutive `REF` commands may drift
//!   apart by at most 9×`tREFI` (DDR3 allows postponing up to eight refresh
//!   commands, which bounds every row's refresh window),
//! * **buses** — one command per cycle on the command bus; data bursts on
//!   the shared data bus must not overlap.
//!
//! Two ways to run it:
//!
//! * **online** — the controller owns a checker when the `strict-invariants`
//!   feature is enabled and panics on the first violation, turning every
//!   existing simulation and test into a protocol audit,
//! * **offline** — record a command trace with
//!   [`crate::controller::MemoryController::record_commands`] and replay it
//!   through [`ProtocolChecker::audit`].

use std::collections::VecDeque;
use std::fmt;

use dram::command::DramCommand;
use dram::timing::TimingParams;

/// One command as it appeared on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    /// Controller cycle at which the command issued.
    pub cycle: u64,
    /// Target bank; `None` for rank-level commands (`REF`).
    pub bank: Option<usize>,
    /// Target row (activates: the row being opened; column commands: the row
    /// the scheduler believes is open; otherwise 0).
    pub row: u32,
    /// The command.
    pub command: DramCommand,
}

impl CmdRecord {
    /// A per-bank command record.
    #[must_use]
    pub fn bank_cmd(cycle: u64, bank: usize, row: u32, command: DramCommand) -> Self {
        CmdRecord {
            cycle,
            bank: Some(bank),
            row,
            command,
        }
    }

    /// A rank-level command record (`REF`).
    #[must_use]
    pub fn rank_cmd(cycle: u64, command: DramCommand) -> Self {
        CmdRecord {
            cycle,
            bank: None,
            row: 0,
            command,
        }
    }
}

impl fmt::Display for CmdRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bank {
            Some(b) => write!(
                f,
                "@{} {} bank {} row {}",
                self.cycle,
                self.command.mnemonic(),
                b,
                self.row
            ),
            None => write!(f, "@{} {} (rank)", self.cycle, self.command.mnemonic()),
        }
    }
}

/// A command that broke the DDR3 protocol, with the constraint it violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// The offending command.
    pub record: CmdRecord,
    /// Short name of the violated constraint (`"tFAW"`, `"row-mismatch"`…).
    pub constraint: &'static str,
    /// Human-readable diagnosis with the numbers that matter.
    pub detail: String,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.record, self.constraint, self.detail)
    }
}

/// Shadow of one bank's protocol-relevant state.
#[derive(Debug, Clone, Default)]
struct ShadowBank {
    open_row: Option<u32>,
    /// Earliest legal `ACT` (tRP after PRE, tRFC after REF).
    earliest_act: u64,
    /// Earliest legal read (tRCD after ACT, tCCD after a column command,
    /// write burst + tWTR after a write).
    earliest_read: u64,
    /// Earliest legal write (tRCD after ACT, tCCD after a column command).
    earliest_write: u64,
    /// Earliest legal `PRE` (tRAS after ACT, tRTP after RD, data + tWR
    /// after WR).
    earliest_pre: u64,
}

/// The auditor. Feed it the command stream in issue order via
/// [`ProtocolChecker::observe`]; collect what it found via
/// [`ProtocolChecker::violations`].
#[derive(Debug)]
pub struct ProtocolChecker {
    timing: TimingParams,
    banks: Vec<ShadowBank>,
    /// Recent `ACT` cycles on this rank, oldest first (pruned to the tFAW
    /// window plus the most recent entry for tRRD).
    act_history: VecDeque<u64>,
    /// Cycle of the last command on the shared command bus.
    last_cmd_cycle: Option<u64>,
    /// End of the last scheduled data burst on the shared data bus.
    bus_data_end: u64,
    /// End of the current refresh blackout.
    refresh_until: u64,
    /// Cycle of the last `REF`.
    last_refresh: Option<u64>,
    /// When set, consecutive `REF`s must be at most `9 × tREFI` apart.
    trefi_cycles: Option<u64>,
    /// Commands observed.
    pub checked: u64,
    violations: Vec<ProtocolViolation>,
}

impl ProtocolChecker {
    /// A checker for `n_banks` banks on one rank.
    #[must_use]
    pub fn new(timing: TimingParams, n_banks: usize) -> Self {
        ProtocolChecker {
            timing,
            banks: vec![ShadowBank::default(); n_banks],
            act_history: VecDeque::new(),
            last_cmd_cycle: None,
            bus_data_end: 0,
            refresh_until: 0,
            last_refresh: None,
            trefi_cycles: None,
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// Additionally enforces the refresh-window obligation: consecutive
    /// `REF` commands at most `9 × trefi_cycles` apart (8 postponable
    /// refreshes plus the current interval), which bounds the refresh window
    /// of every row on the rank.
    #[must_use]
    pub fn with_refresh_obligation(mut self, trefi_cycles: u64) -> Self {
        self.trefi_cycles = Some(trefi_cycles);
        self
    }

    /// The violations collected so far, in command order.
    #[must_use]
    pub fn violations(&self) -> &[ProtocolViolation] {
        &self.violations
    }

    /// Consumes the checker, returning every violation it collected.
    #[must_use]
    pub fn into_violations(self) -> Vec<ProtocolViolation> {
        self.violations
    }

    /// Replays a recorded command trace through a fresh checker and returns
    /// every violation (the offline audit entry point).
    #[must_use]
    pub fn audit(
        timing: TimingParams,
        n_banks: usize,
        trefi_cycles: Option<u64>,
        records: &[CmdRecord],
    ) -> Vec<ProtocolViolation> {
        let mut checker = ProtocolChecker::new(timing, n_banks);
        if let Some(trefi) = trefi_cycles {
            checker = checker.with_refresh_obligation(trefi);
        }
        for r in records {
            let _ = checker.observe(*r);
        }
        checker.into_violations()
    }

    /// Validates one command against the shadow state, updates the shadow,
    /// and returns the violation (if any). Violations are also retained in
    /// [`ProtocolChecker::violations`]. The shadow advances even for an
    /// offending command, mirroring what the device would do with it.
    ///
    /// # Errors
    ///
    /// The first constraint the command violates, with cycle numbers.
    pub fn observe(&mut self, rec: CmdRecord) -> Result<(), ProtocolViolation> {
        self.checked += 1;
        let verdict = self.validate(&rec);
        self.advance(&rec);
        if let Err(v) = &verdict {
            self.violations.push(v.clone());
        }
        verdict
    }

    /// Pure validation of `rec` against the current shadow state.
    fn validate(&self, rec: &CmdRecord) -> Result<(), ProtocolViolation> {
        let t = &self.timing;
        let now = rec.cycle;
        let fail = |constraint: &'static str, detail: String| {
            Err(ProtocolViolation {
                record: *rec,
                constraint,
                detail,
            })
        };

        // Command bus: one command per cycle, monotonically ordered.
        if let Some(last) = self.last_cmd_cycle {
            if now < last {
                return fail(
                    "cmd-order",
                    format!("command at cycle {now} after one at cycle {last}"),
                );
            }
            if now == last {
                return fail(
                    "cmd-bus",
                    format!("second command in cycle {now} on a single command bus"),
                );
            }
        }

        // Refresh blackout: the rank accepts nothing until tRFC elapses.
        if now < self.refresh_until {
            return fail(
                "tRFC",
                format!(
                    "issued during refresh blackout (rank busy until cycle {})",
                    self.refresh_until
                ),
            );
        }

        let Some(bank_idx) = rec.bank else {
            return self.validate_rank_cmd(rec);
        };
        let Some(bank) = self.banks.get(bank_idx) else {
            return fail(
                "bank-range",
                format!("bank {bank_idx} out of range ({} banks)", self.banks.len()),
            );
        };

        match rec.command {
            DramCommand::Activate => {
                if let Some(row) = bank.open_row {
                    return fail("bank-state", format!("ACT while row {row} is already open"));
                }
                if now < bank.earliest_act {
                    return fail(
                        "tRP",
                        format!("bank not precharged until cycle {}", bank.earliest_act),
                    );
                }
                if let Some(&last_act) = self.act_history.back() {
                    let ready = last_act + t.trrd_cycles();
                    if now < ready {
                        return fail(
                            "tRRD",
                            format!("previous ACT at cycle {last_act}, next legal at {ready}"),
                        );
                    }
                }
                // tFAW: this ACT may be at most the 4th in any tFAW window.
                let window_start = now.saturating_sub(t.tfaw_cycles() - 1);
                let in_window = self
                    .act_history
                    .iter()
                    .filter(|&&c| c >= window_start)
                    .count();
                if in_window >= 4 {
                    return fail(
                        "tFAW",
                        format!(
                            "5th ACT within {} cycles (window starts at cycle {window_start})",
                            t.tfaw_cycles()
                        ),
                    );
                }
                Ok(())
            }
            cmd if cmd.is_column() => {
                let Some(open) = bank.open_row else {
                    return fail("bank-state", "column command on a precharged bank".into());
                };
                if open != rec.row {
                    return fail(
                        "row-mismatch",
                        format!("targets row {} but row {open} is open", rec.row),
                    );
                }
                let earliest = if cmd.is_read() {
                    bank.earliest_read
                } else {
                    bank.earliest_write
                };
                if now < earliest {
                    return fail(
                        if cmd.is_read() {
                            "tRCD/tCCD/tWTR"
                        } else {
                            "tRCD/tCCD"
                        },
                        format!("column ready at cycle {earliest}"),
                    );
                }
                // Data bus: this burst's window must start after the
                // previous burst ends.
                let data_start = now + t.tcl_cycles();
                if data_start < self.bus_data_end {
                    return fail(
                        "data-bus",
                        format!(
                            "burst starting at cycle {data_start} overlaps one ending at {}",
                            self.bus_data_end
                        ),
                    );
                }
                Ok(())
            }
            DramCommand::Precharge => {
                if bank.open_row.is_some() && now < bank.earliest_pre {
                    return fail(
                        "tRAS/tRTP/tWR",
                        format!("PRE legal from cycle {}", bank.earliest_pre),
                    );
                }
                Ok(())
            }
            DramCommand::Refresh => fail(
                "cmd-scope",
                "REF is rank-level; record it with bank = None".into(),
            ),
            _ => fail("cmd-scope", format!("unhandled command {}", rec.command)),
        }
    }

    fn validate_rank_cmd(&self, rec: &CmdRecord) -> Result<(), ProtocolViolation> {
        let now = rec.cycle;
        let fail = |constraint: &'static str, detail: String| {
            Err(ProtocolViolation {
                record: *rec,
                constraint,
                detail,
            })
        };
        if rec.command != DramCommand::Refresh {
            return fail(
                "cmd-scope",
                format!("{} is a per-bank command; record a bank index", rec.command),
            );
        }
        for (i, bank) in self.banks.iter().enumerate() {
            if let Some(row) = bank.open_row {
                return fail("bank-state", format!("REF with row {row} open in bank {i}"));
            }
            if now < bank.earliest_act {
                return fail(
                    "tRP",
                    format!("bank {i} not precharged until cycle {}", bank.earliest_act),
                );
            }
        }
        if let (Some(last), Some(trefi)) = (self.last_refresh, self.trefi_cycles) {
            let deadline = last + 9 * trefi;
            if now > deadline {
                return fail(
                    "tREFI-window",
                    format!(
                        "gap of {} cycles since the REF at cycle {last} exceeds 9*tREFI = {}",
                        now - last,
                        9 * trefi
                    ),
                );
            }
        }
        Ok(())
    }

    /// Advances the shadow state past `rec`, mirroring
    /// [`dram::bank::Bank::issue`]'s register updates.
    fn advance(&mut self, rec: &CmdRecord) {
        let t = self.timing;
        let now = rec.cycle;
        self.last_cmd_cycle = Some(self.last_cmd_cycle.unwrap_or(0).max(now));
        // Keep only history that can still matter for tRRD/tFAW.
        while let Some(&front) = self.act_history.front() {
            if front + t.tfaw_cycles() + t.trrd_cycles() < now && self.act_history.len() > 1 {
                self.act_history.pop_front();
            } else {
                break;
            }
        }
        let Some(bank_idx) = rec.bank else {
            if rec.command == DramCommand::Refresh {
                let end = now + t.trfc_cycles();
                self.refresh_until = end;
                self.last_refresh = Some(now);
                for b in &mut self.banks {
                    b.earliest_act = b.earliest_act.max(end);
                }
            }
            return;
        };
        let Some(bank) = self.banks.get_mut(bank_idx) else {
            return;
        };
        match rec.command {
            DramCommand::Activate => {
                bank.open_row = Some(rec.row);
                bank.earliest_read = now + t.trcd_cycles();
                bank.earliest_write = now + t.trcd_cycles();
                bank.earliest_pre = now + t.tras_cycles();
                self.act_history.push_back(now);
            }
            DramCommand::Read | DramCommand::ReadAp => {
                bank.earliest_read = now + t.tccd_cycles();
                bank.earliest_write = now + t.tccd_cycles();
                bank.earliest_pre = bank.earliest_pre.max(now + t.trtp_cycles());
                self.bus_data_end = now + t.tcl_cycles() + dram::bank::BURST_CYCLES;
                if rec.command.auto_precharges() {
                    bank.open_row = None;
                    bank.earliest_act = bank.earliest_act.max(bank.earliest_pre + t.trp_cycles());
                }
            }
            DramCommand::Write | DramCommand::WriteAp => {
                let data_done = now + t.tcl_cycles() + dram::bank::BURST_CYCLES;
                bank.earliest_write = now + t.tccd_cycles();
                bank.earliest_read = data_done + t.twtr_cycles();
                bank.earliest_pre = bank.earliest_pre.max(data_done + t.twr_cycles());
                self.bus_data_end = data_done;
                if rec.command.auto_precharges() {
                    bank.open_row = None;
                    bank.earliest_act = bank.earliest_act.max(bank.earliest_pre + t.trp_cycles());
                }
            }
            DramCommand::Precharge => {
                bank.open_row = None;
                bank.earliest_act = bank.earliest_act.max(now + t.trp_cycles());
            }
            DramCommand::Refresh => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn act(cycle: u64, bank: usize, row: u32) -> CmdRecord {
        CmdRecord::bank_cmd(cycle, bank, row, DramCommand::Activate)
    }
    fn rd(cycle: u64, bank: usize, row: u32) -> CmdRecord {
        CmdRecord::bank_cmd(cycle, bank, row, DramCommand::Read)
    }
    fn pre(cycle: u64, bank: usize) -> CmdRecord {
        CmdRecord::bank_cmd(cycle, bank, 0, DramCommand::Precharge)
    }
    fn refresh(cycle: u64) -> CmdRecord {
        CmdRecord::rank_cmd(cycle, DramCommand::Refresh)
    }

    #[test]
    fn legal_open_read_close_sequence_is_clean() {
        let timing = t();
        let trace = [
            act(0, 0, 5),
            rd(timing.trcd_cycles(), 0, 5),
            pre(timing.tras_cycles(), 0),
            act(timing.tras_cycles() + timing.trp_cycles(), 0, 6),
        ];
        let v = ProtocolChecker::audit(timing, 8, None, &trace);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn early_read_is_a_trcd_violation() {
        let v = ProtocolChecker::audit(t(), 8, None, &[act(0, 0, 5), rd(3, 0, 5)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tRCD/tCCD/tWTR");
        assert_eq!(v[0].record.cycle, 3);
        assert!(v[0].detail.contains("9"), "diagnostic: {}", v[0].detail);
    }

    #[test]
    fn column_to_wrong_row_is_caught() {
        let timing = t();
        let v = ProtocolChecker::audit(
            timing,
            8,
            None,
            &[act(0, 0, 5), rd(timing.trcd_cycles(), 0, 7)],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "row-mismatch");
        assert!(v[0].detail.contains("row 7") && v[0].detail.contains("row 5"));
    }

    #[test]
    fn fifth_act_in_window_violates_tfaw() {
        let timing = t();
        let gap = timing.trrd_cycles();
        // Five activates to distinct banks, tRRD apart: the 5th lands well
        // inside the tFAW window (4 * 5 = 20 < 24 cycles).
        let trace: Vec<CmdRecord> = (0..5).map(|i| act(gap * i, i as usize, 1)).collect();
        let v = ProtocolChecker::audit(timing, 8, None, &trace);
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].constraint, "tFAW");
        assert_eq!(v[0].record.cycle, gap * 4);
    }

    #[test]
    fn act_pair_too_close_violates_trrd() {
        let timing = t();
        let v = ProtocolChecker::audit(timing, 8, None, &[act(0, 0, 1), act(2, 1, 1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tRRD");
        assert!(
            v[0].detail.contains(&format!("{}", timing.trrd_cycles())),
            "diagnostic should name the legal cycle: {}",
            v[0].detail
        );
    }

    #[test]
    fn spaced_activates_pass_trrd_and_tfaw() {
        let timing = t();
        let gap = timing.tfaw_cycles() / 4 + 1; // 4 ACTs never fit a window
        let trace: Vec<CmdRecord> = (0..8).map(|i| act(gap * i, i as usize, 1)).collect();
        let v = ProtocolChecker::audit(timing, 8, None, &trace);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn command_during_refresh_blackout_is_caught() {
        let timing = t();
        let v = ProtocolChecker::audit(
            timing,
            8,
            None,
            &[refresh(100), act(100 + timing.trfc_cycles() - 1, 0, 1)],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tRFC");
    }

    #[test]
    fn refresh_with_open_row_is_caught() {
        let v = ProtocolChecker::audit(t(), 8, None, &[act(0, 3, 9), refresh(5)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "bank-state");
        assert!(v[0].detail.contains("bank 3"));
    }

    #[test]
    fn postponed_refresh_beyond_nine_trefi_is_caught() {
        let timing = t();
        let trefi = 1563u64;
        let v = ProtocolChecker::audit(
            timing,
            8,
            Some(trefi),
            &[refresh(0), refresh(9 * trefi + 1)],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "tREFI-window");
        // Exactly at the bound is still legal.
        let ok = ProtocolChecker::audit(timing, 8, Some(trefi), &[refresh(0), refresh(9 * trefi)]);
        assert!(ok.is_empty());
    }

    #[test]
    fn overlapping_bursts_are_caught() {
        let timing = t();
        let rc = timing.trcd_cycles();
        // Two reads on different banks one cycle apart: second burst starts
        // inside the first (tCCD only constrains the same bank's column
        // pipeline; the shared data bus catches the overlap).
        let v = ProtocolChecker::audit(
            timing,
            8,
            None,
            &[
                act(0, 0, 1),
                act(timing.trrd_cycles(), 1, 2),
                rd(rc + 5, 0, 1),
                rd(rc + 6, 1, 2),
            ],
        );
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].constraint, "data-bus");
    }

    #[test]
    fn two_commands_in_one_cycle_are_caught() {
        let v = ProtocolChecker::audit(t(), 8, None, &[act(0, 0, 1), act(0, 1, 1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "cmd-bus");
    }

    #[test]
    fn act_on_open_bank_and_early_precharge_are_caught() {
        let timing = t();
        let v = ProtocolChecker::audit(timing, 8, None, &[act(0, 0, 1), act(40, 0, 2)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "bank-state");
        let v2 = ProtocolChecker::audit(timing, 8, None, &[act(0, 0, 1), pre(5, 0)]);
        assert_eq!(v2.len(), 1);
        assert_eq!(v2[0].constraint, "tRAS/tRTP/tWR");
    }

    #[test]
    fn violations_accumulate_and_display_reads_well() {
        let mut c = ProtocolChecker::new(t(), 8);
        assert!(c.observe(act(0, 0, 1)).is_ok());
        let err = c.observe(rd(1, 0, 1)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("RD") && msg.contains("bank 0"), "{msg}");
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.checked, 2);
    }
}
