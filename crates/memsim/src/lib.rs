//! Cycle-level memory-system simulator for the MEMCON reproduction.
//!
//! The paper evaluates MEMCON's performance impact with Ramulator driven by
//! a Pin frontend (Section 5): the measured refresh reduction is modelled as
//! a refresh-rate change inside the simulator, and the online-testing
//! overhead as injected extra memory traffic. This crate implements the same
//! methodology:
//!
//! * [`config`] — the Table-2 system configuration (4 GHz 4-wide cores with
//!   128-entry windows, DDR3-1600, density-scaled `tRFC`, per-policy
//!   `tREFI`),
//! * [`request`] — memory requests at cache-block granularity,
//! * [`controller`] — an FR-FCFS memory controller over timing-checked
//!   [`dram::bank::Bank`] state machines with rank-level `tRRD`/`tFAW`
//!   enforcement and refresh blackouts,
//! * [`protocol`] — an independent DDR3 protocol auditor that re-validates
//!   recorded command traces (and, under the `strict-invariants` feature,
//!   every command the controller issues, online),
//! * [`refresh`] — refresh policies: fixed-interval baselines and the
//!   reduced-rate model for MEMCON/RAIDR,
//! * [`core`] — a USIMM-style out-of-order core frontend (ROB occupancy,
//!   reads block retirement, writes retire into a write buffer),
//! * [`testinject`] — MEMCON's online-test read traffic (Table 3),
//! * [`system`] — glue: N cores + controller + refresh + injector, run to an
//!   instruction target and report per-core cycles/IPC and DRAM statistics.
//!
//! # Example
//!
//! ```
//! use memsim::config::SystemConfig;
//! use memsim::system::System;
//! use memtrace::cpu::spec_tpc_pool;
//!
//! let config = SystemConfig::single_core_baseline();
//! let profile = spec_tpc_pool()[0];
//! let mut system = System::new(config, vec![profile], 7);
//! let stats = system.run(50_000);
//! assert!(stats.per_core_ipc[0] > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod controller;
pub mod core;
pub mod energy;
pub mod protocol;
pub mod refresh;
pub mod request;
pub mod system;
pub mod testinject;

pub use config::{RefreshPolicy, SystemConfig};
pub use system::{SimStats, System};
