//! Offline protocol audit: record the FR-FCFS controller's command stream,
//! replay it through a fresh [`ProtocolChecker`], and confirm the simulator
//! honours the DDR3 contract it claims to model — then corrupt the trace
//! and confirm the auditor catches it.

use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::controller::MemoryController;
use memsim::protocol::{CmdRecord, ProtocolChecker};
use memsim::request::{MemRequest, Requester};
use memutil::rng::{Rng, SeedableRng, SmallRng};

use dram::command::DramCommand;
use dram::geometry::ChipDensity;

fn config(policy: RefreshPolicy) -> SystemConfig {
    let mut c = SystemConfig::new(1, ChipDensity::Gb8, policy);
    c.queue_capacity = 64;
    c
}

/// Drives a recording controller with a seeded random request stream and
/// returns the captured command trace plus the controller's parameters.
fn recorded_trace(seed: u64, policy: RefreshPolicy) -> (Vec<CmdRecord>, MemoryController) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ctrl = MemoryController::new(&config(policy));
    ctrl.record_commands(true);
    let n = rng.gen_range(40usize..120);
    let mut now = 0u64;
    let mut issued = 0usize;
    while now < 400_000 {
        if issued < n {
            let req = MemRequest {
                id: issued as u64,
                requester: Requester::Core(0),
                bank: rng.gen_range(0usize..8),
                row: rng.gen_range(0u32..64),
                block: rng.gen_range(0u32..128),
                is_write: rng.gen_bool(0.5),
                arrive_cycle: now,
            };
            if ctrl.enqueue(req).is_ok() {
                issued += 1;
                now += u64::from(rng.gen_range(0u8..30));
            }
        }
        ctrl.tick(now);
        let _ = ctrl.drain_completions();
        if issued == n && ctrl.queued() == 0 {
            break;
        }
        now += 1;
    }
    assert_eq!(issued, n, "request stream stalled");
    let trace = ctrl.take_command_trace();
    (trace, ctrl)
}

#[test]
fn recorded_controller_trace_audits_clean() {
    for (seed, policy) in [
        (0xA0D1_0001, RefreshPolicy::None),
        (0xA0D1_0002, RefreshPolicy::baseline_16ms()),
        (0xA0D1_0003, RefreshPolicy::baseline_16ms()),
    ] {
        let (trace, ctrl) = recorded_trace(seed, policy);
        assert!(!trace.is_empty(), "recorder captured nothing");
        let violations =
            ProtocolChecker::audit(*ctrl.timing(), ctrl.n_banks(), ctrl.trefi_cycles(), &trace);
        assert!(
            violations.is_empty(),
            "seed {seed:#x}: controller violated its own protocol: {}",
            violations[0]
        );
    }
}

#[test]
fn corrupted_trace_is_flagged_with_command_and_cycle() {
    let (mut trace, ctrl) = recorded_trace(0xA0D1_0004, RefreshPolicy::None);
    // Pull a column command to one cycle after its bank's ACT: tRCD is
    // 9 cycles at DDR3-1600, so this is a guaranteed violation.
    let act_idx = trace
        .iter()
        .position(|r| r.command == DramCommand::Activate)
        .expect("trace contains an ACT");
    let act_bank = trace[act_idx].bank;
    let act_cycle = trace[act_idx].cycle;
    let idx = trace
        .iter()
        .position(|r| {
            r.bank == act_bank
                && r.cycle > act_cycle
                && matches!(
                    r.command,
                    DramCommand::Read
                        | DramCommand::ReadAp
                        | DramCommand::Write
                        | DramCommand::WriteAp
                )
        })
        .expect("trace contains a column command after the first ACT");
    trace[idx].cycle = act_cycle + 1;
    // Re-sort so cycles stay monotone (the corruption moves one command
    // relative to its bank's timing, not the bus ordering).
    trace.sort_by_key(|r| r.cycle);

    let violations =
        ProtocolChecker::audit(*ctrl.timing(), ctrl.n_banks(), ctrl.trefi_cycles(), &trace);
    assert!(!violations.is_empty(), "auditor missed the corruption");
    let text = violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains('@'), "diagnostic lacks a cycle stamp: {text}");
    assert!(text.contains("bank"), "diagnostic lacks a bank: {text}");
}

#[test]
fn fabricated_wrong_row_trace_is_flagged() {
    let (trace, ctrl) = recorded_trace(0xA0D1_0005, RefreshPolicy::None);
    // Rewrite every column command to target a different row than the one
    // its ACT opened — the exact bug class the bank automata cannot see.
    let corrupted: Vec<CmdRecord> = trace
        .iter()
        .map(|r| {
            let mut r = *r;
            if matches!(
                r.command,
                DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp
            ) {
                r.row ^= 1;
            }
            r
        })
        .collect();
    let violations = ProtocolChecker::audit(
        *ctrl.timing(),
        ctrl.n_banks(),
        ctrl.trefi_cycles(),
        &corrupted,
    );
    assert!(
        violations.iter().any(|v| v.constraint == "row-mismatch"),
        "no row-mismatch diagnostic among {} violations",
        violations.len()
    );
}
