//! Property tests of the memory controller: for arbitrary request streams,
//! every accepted request completes exactly once, in bounded time, with
//! bank/bus constraints visible in the completion times.
//!
//! Originally `proptest` strategies; rewritten as seeded-PRNG loops so the
//! workspace builds hermetically offline.

use memsim::config::{RefreshPolicy, SystemConfig};
use memsim::controller::MemoryController;
use memsim::request::{MemRequest, Requester};
use memutil::rng::{Rng, SeedableRng, SmallRng};

use dram::geometry::ChipDensity;

fn config(policy: RefreshPolicy) -> SystemConfig {
    let mut c = SystemConfig::new(1, ChipDensity::Gb8, policy);
    c.queue_capacity = 64;
    c
}

#[derive(Debug, Clone)]
struct ReqSpec {
    bank: usize,
    row: u32,
    block: u32,
    is_write: bool,
    gap: u8,
}

fn random_spec(rng: &mut SmallRng) -> ReqSpec {
    ReqSpec {
        bank: rng.gen_range(0usize..8),
        row: rng.gen_range(0u32..64),
        block: rng.gen_range(0u32..128),
        is_write: rng.gen_bool(0.5),
        gap: rng.gen_range(0u8..40),
    }
}

#[test]
fn every_accepted_request_completes_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xC7_0001);
    for case in 0..64 {
        let n = rng.gen_range(1usize..80);
        let specs: Vec<ReqSpec> = (0..n).map(|_| random_spec(&mut rng)).collect();
        let refresh = rng.gen_bool(0.5);
        let policy = if refresh {
            RefreshPolicy::baseline_16ms()
        } else {
            RefreshPolicy::None
        };
        let mut ctrl = MemoryController::new(&config(policy));
        let mut accepted = std::collections::HashSet::new();
        let mut completed = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut pending = specs.into_iter();
        let mut upcoming = pending.next();
        // Issue with gaps, then drain.
        let horizon = 600_000u64;
        while now < horizon {
            if let Some(spec) = &upcoming {
                let req = MemRequest {
                    id: next_id,
                    requester: Requester::Core(0),
                    bank: spec.bank,
                    row: spec.row,
                    block: spec.block,
                    is_write: spec.is_write,
                    arrive_cycle: now,
                };
                if ctrl.enqueue(req).is_ok() {
                    accepted.insert(next_id);
                    next_id += 1;
                    now += u64::from(spec.gap);
                    upcoming = pending.next();
                }
            }
            ctrl.tick(now);
            completed.extend(ctrl.drain_completions());
            if upcoming.is_none() && ctrl.queued() == 0 {
                break;
            }
            now += 1;
        }
        assert!(
            upcoming.is_none() && ctrl.queued() == 0,
            "case {case}: requests left unserved after {now} cycles"
        );
        // Exactly-once completion.
        let mut ids: Vec<u64> = completed.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), completed.len(), "duplicate completions");
        assert_eq!(ids.len(), accepted.len(), "missing completions");
        // Data bursts never overlap: completions sorted by done_cycle differ
        // by at least the burst length when on the shared bus.
        let mut dones: Vec<u64> = completed.iter().map(|c| c.done_cycle).collect();
        dones.sort_unstable();
        for w in dones.windows(2) {
            assert!(
                w[1] - w[0] >= 4 || w[1] == w[0],
                "bursts overlap: {} then {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn stats_reads_plus_writes_equals_completions() {
    let mut rng = SmallRng::seed_from_u64(0xC7_0002);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..40);
        let specs: Vec<ReqSpec> = (0..n).map(|_| random_spec(&mut rng)).collect();
        let mut ctrl = MemoryController::new(&config(RefreshPolicy::None));
        let mut enqueued = 0u64;
        for (i, s) in specs.iter().enumerate() {
            let req = MemRequest {
                id: i as u64,
                requester: Requester::Core(0),
                bank: s.bank,
                row: s.row,
                block: s.block,
                is_write: s.is_write,
                arrive_cycle: 0,
            };
            if ctrl.enqueue(req).is_ok() {
                enqueued += 1;
            }
        }
        let mut done = 0u64;
        for now in 0..200_000u64 {
            ctrl.tick(now);
            done += ctrl.drain_completions().len() as u64;
            if ctrl.queued() == 0 {
                break;
            }
        }
        assert_eq!(done, enqueued);
        assert_eq!(ctrl.stats.reads + ctrl.stats.writes, enqueued);
    }
}
