//! The DRAM module façade: content storage plus per-chip internal structure.
//!
//! A [`DramModule`] ties together everything a "real chip" has that the
//! system cannot see: per-bank address scrambling, per-bank column repair,
//! and the true/anti-cell layout. The system side (memory controller,
//! MEMCON) reads and writes rows by *system* address; the failure model
//! reaches the *internal* cell space through [`DramModule::charge_at_internal`]
//! and friends.
//!
//! Content is stored bit-exactly per row so that read-back comparison (the
//! testing MEMCON performs online) sees genuine data-dependent bit flips.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::address::{RowAddr, RowId};
use crate::cell::{RowContent, TrueAntiLayout};
use crate::error::DramError;
use crate::geometry::DramGeometry;
use crate::remap::RemapTable;
use crate::scramble::{Scrambler, VendorScrambler};
use crate::timing::TimingParams;

/// Fraction of bitlines repaired at manufacturing time (per bank) in the
/// default chip instantiation. Real repair rates are proprietary; a fraction
/// of ~0.2 % of columns is consistent with published repair-architecture
/// studies (Horiguchi & Itoh, cited by the paper).
pub const DEFAULT_REPAIR_FRACTION: f64 = 0.002;

/// Number of spare bitlines per bank in the default instantiation.
pub const DEFAULT_REDUNDANT_BITLINES: u64 = 512;

/// A simulated DRAM module with vendor-internal structure.
///
/// Cloning is supported (content is plain data) but note a 2 GB geometry
/// stores 2 GB of host memory; experiments use scaled-down geometries.
#[derive(Debug, Clone)]
pub struct DramModule {
    geometry: DramGeometry,
    timing: TimingParams,
    chip_seed: u64,
    rows: Vec<RowContent>,
    scramblers: Vec<VendorScrambler>,
    remaps: Vec<RemapTable>,
    layout: TrueAntiLayout,
}

impl DramModule {
    /// Builds a module with all-zero content and per-chip internal structure
    /// derived deterministically from `chip_seed` (two modules with the same
    /// seed are identical chips; different seeds model different dies).
    ///
    /// # Panics
    ///
    /// Panics if `geometry` or `timing` fails validation.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams, chip_seed: u64) -> Self {
        geometry.validate().expect("invalid geometry");
        timing.validate().expect("invalid timing");
        let total = geometry.total_rows() as usize;
        let words = geometry.words_per_row();
        let bits = geometry.bits_per_row();
        let n_banks = usize::from(geometry.ranks) * usize::from(geometry.banks);

        let mut rng = SmallRng::seed_from_u64(chip_seed);
        // Half-and-half is the common layout reported by Liu et al. (ISCA'13)
        // for the chips the paper's methodology builds on; row-interleaved
        // layouts are available via `with_layout` for sensitivity studies.
        let _ = rng.gen::<u64>(); // keep downstream seed stream stable
        let layout = TrueAntiLayout::HalfAndHalf {
            rows_per_bank: geometry.rows_per_bank,
        };
        let faults = ((bits as f64 * DEFAULT_REPAIR_FRACTION) as u64)
            .min(DEFAULT_REDUNDANT_BITLINES.min(bits / 4));
        let scramblers = (0..n_banks)
            .map(|b| {
                VendorScrambler::from_seed(
                    chip_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b as u64,
                    geometry.rows_per_bank,
                    bits,
                )
            })
            .collect();
        let remaps = (0..n_banks)
            .map(|b| {
                RemapTable::from_seed(
                    chip_seed.wrapping_add(0xA5A5_5A5A) ^ (b as u64) << 17,
                    bits,
                    DEFAULT_REDUNDANT_BITLINES.min(bits / 2),
                    faults,
                )
            })
            .collect();

        DramModule {
            geometry,
            timing,
            chip_seed,
            rows: vec![RowContent::zeroed(words); total],
            scramblers,
            remaps,
            layout,
        }
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Device timing.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The seed this chip was instantiated from.
    #[must_use]
    pub fn chip_seed(&self) -> u64 {
        self.chip_seed
    }

    /// True/anti-cell layout of this chip.
    #[must_use]
    pub fn layout(&self) -> TrueAntiLayout {
        self.layout
    }

    /// Replaces the true/anti-cell layout (for layout sensitivity studies).
    #[must_use]
    pub fn with_layout(mut self, layout: TrueAntiLayout) -> Self {
        self.layout = layout;
        self
    }

    fn bank_index(&self, addr: RowAddr) -> usize {
        usize::from(addr.rank) * usize::from(self.geometry.banks) + usize::from(addr.bank)
    }

    /// The (vendor-secret) scrambler of `addr`'s bank.
    #[must_use]
    pub fn scrambler_for(&self, addr: RowAddr) -> &dyn Scrambler {
        &self.scramblers[self.bank_index(addr)]
    }

    /// The (vendor-secret) column-repair table of `addr`'s bank.
    #[must_use]
    pub fn remap_for(&self, addr: RowAddr) -> &RemapTable {
        &self.remaps[self.bank_index(addr)]
    }

    fn check_addr(&self, addr: RowAddr) -> Result<usize, DramError> {
        if addr.rank >= self.geometry.ranks {
            return Err(DramError::BankOutOfRange {
                bank: addr.rank,
                banks: self.geometry.ranks,
            });
        }
        if addr.bank >= self.geometry.banks {
            return Err(DramError::BankOutOfRange {
                bank: addr.bank,
                banks: self.geometry.banks,
            });
        }
        if addr.row >= self.geometry.rows_per_bank {
            return Err(DramError::RowOutOfRange {
                row: addr,
                rows_per_bank: self.geometry.rows_per_bank,
            });
        }
        Ok(addr.to_row_id(&self.geometry) as usize)
    }

    /// Reads a row by system address.
    ///
    /// # Errors
    ///
    /// Returns an address-range error if `addr` is outside the geometry.
    pub fn read_row(&self, addr: RowAddr) -> Result<&RowContent, DramError> {
        let idx = self.check_addr(addr)?;
        Ok(&self.rows[idx])
    }

    /// Overwrites a row by system address.
    ///
    /// # Errors
    ///
    /// Returns an address-range error or a
    /// [`DramError::ContentLengthMismatch`] if `content` has the wrong size.
    pub fn write_row(&mut self, addr: RowAddr, content: RowContent) -> Result<(), DramError> {
        let idx = self.check_addr(addr)?;
        if content.len_words() != self.geometry.words_per_row() {
            return Err(DramError::ContentLengthMismatch {
                expected: self.geometry.words_per_row(),
                actual: content.len_words(),
            });
        }
        self.rows[idx] = content;
        Ok(())
    }

    /// Mutable access to a row by system address (for in-place bit flips by
    /// the failure model).
    ///
    /// # Errors
    ///
    /// Returns an address-range error if `addr` is outside the geometry.
    pub fn row_mut(&mut self, addr: RowAddr) -> Result<&mut RowContent, DramError> {
        let idx = self.check_addr(addr)?;
        Ok(&mut self.rows[idx])
    }

    /// Reads a row by linear [`RowId`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn read_row_id(&self, id: RowId) -> &RowContent {
        &self.rows[id as usize]
    }

    /// Fills the whole module by evaluating `f(row_id)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(RowId) -> RowContent) {
        let words = self.geometry.words_per_row();
        for (i, slot) in self.rows.iter_mut().enumerate() {
            let content = f(i as RowId);
            assert_eq!(
                content.len_words(),
                words,
                "fill_with produced a row of the wrong size"
            );
            *slot = content;
        }
    }

    /// Charge state (`true` = capacitor charged) of the cell at *internal*
    /// coordinates: bank-internal row `internal_row`, bitline `internal_bit`
    /// (pre-remap). Applies scrambling inverse, then the true/anti polarity.
    ///
    /// This is the physics-side accessor used by the failure model; MEMCON
    /// never calls it.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    #[must_use]
    pub fn charge_at_internal(
        &self,
        rank: u8,
        bank: u8,
        internal_row: u32,
        internal_bit: u64,
    ) -> bool {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        let s = &self.scramblers[bank_idx];
        let sys_row = s.to_system_row(internal_row);
        let sys_bit = s.to_system_bit(internal_bit);
        let addr = RowAddr::new(rank, bank, sys_row);
        let logical = self.rows[addr.to_row_id(&self.geometry) as usize].bit(sys_bit);
        self.layout.polarity(internal_row).charge(logical)
    }

    /// Translates internal coordinates to the (rank, bank, system row,
    /// system bit) the system would observe a flip at.
    #[must_use]
    pub fn internal_to_system(
        &self,
        rank: u8,
        bank: u8,
        internal_row: u32,
        internal_bit: u64,
    ) -> (RowAddr, u64) {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        let s = &self.scramblers[bank_idx];
        (
            RowAddr::new(rank, bank, s.to_system_row(internal_row)),
            s.to_system_bit(internal_bit),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellPolarity;

    fn tiny_module() -> DramModule {
        DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 1234)
    }

    #[test]
    fn new_module_is_zeroed() {
        let m = tiny_module();
        for id in 0..m.geometry().total_rows() {
            assert_eq!(m.read_row_id(id).popcount(), 0);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = tiny_module();
        let addr = RowAddr::new(0, 1, 10);
        let mut content = RowContent::zeroed(m.geometry().words_per_row());
        content.set_bit(100, true);
        m.write_row(addr, content.clone()).unwrap();
        assert_eq!(m.read_row(addr).unwrap(), &content);
        // Other rows untouched.
        assert_eq!(m.read_row(RowAddr::new(0, 1, 11)).unwrap().popcount(), 0);
    }

    #[test]
    fn write_rejects_wrong_size() {
        let mut m = tiny_module();
        let err = m
            .write_row(RowAddr::new(0, 0, 0), RowContent::zeroed(1))
            .unwrap_err();
        assert!(matches!(err, DramError::ContentLengthMismatch { .. }));
    }

    #[test]
    fn out_of_range_addresses_error() {
        let m = tiny_module();
        assert!(m.read_row(RowAddr::new(0, 5, 0)).is_err());
        assert!(m.read_row(RowAddr::new(0, 0, 64)).is_err());
        assert!(m.read_row(RowAddr::new(1, 0, 0)).is_err());
    }

    #[test]
    fn same_seed_same_chip_different_seed_different_chip() {
        let a = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 7);
        let b = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 7);
        let c = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 8);
        let probe = |m: &DramModule| {
            (0..16u32)
                .map(|r| m.scrambler_for(RowAddr::new(0, 0, 0)).to_internal_row(r))
                .collect::<Vec<_>>()
        };
        assert_eq!(probe(&a), probe(&b));
        assert_ne!(probe(&a), probe(&c));
    }

    #[test]
    fn charge_respects_scramble_and_polarity() {
        let mut m = tiny_module();
        // Set a single known system bit and find it through the internal view.
        let addr = RowAddr::new(0, 0, 3);
        let mut content = RowContent::zeroed(m.geometry().words_per_row());
        content.set_bit(17, true);
        m.write_row(addr, content).unwrap();

        let s = &m.scramblers[0];
        let internal_row = s.to_internal_row(3);
        let internal_bit = s.to_internal_bit(17);
        let polarity = m.layout().polarity(internal_row);
        let expected_charge = polarity.charge(true);
        assert_eq!(
            m.charge_at_internal(0, 0, internal_row, internal_bit),
            expected_charge
        );
        // A zero bit at the same internal row has the complementary charge
        // only if polarity maps it so.
        let other_bit = s.to_internal_bit(18);
        assert_eq!(
            m.charge_at_internal(0, 0, internal_row, other_bit),
            polarity.charge(false)
        );
        // Sanity: polarity is a real enum value.
        assert!(matches!(polarity, CellPolarity::True | CellPolarity::Anti));
    }

    #[test]
    fn internal_to_system_roundtrip() {
        let m = tiny_module();
        let s = &m.scramblers[1]; // bank 1
        let internal_row = s.to_internal_row(20);
        let internal_bit = s.to_internal_bit(99);
        let (addr, bit) = m.internal_to_system(0, 1, internal_row, internal_bit);
        assert_eq!(addr, RowAddr::new(0, 1, 20));
        assert_eq!(bit, 99);
    }

    #[test]
    fn fill_with_covers_all_rows() {
        let mut m = tiny_module();
        let words = m.geometry().words_per_row();
        m.fill_with(|id| RowContent::from_words(vec![id; words]));
        assert_eq!(m.read_row_id(5).as_words()[0], 5);
        assert_eq!(
            m.read_row_id(m.geometry().total_rows() - 1).as_words()[0],
            m.geometry().total_rows() - 1
        );
    }

    #[test]
    fn row_mut_allows_bit_flip() {
        let mut m = tiny_module();
        let addr = RowAddr::new(0, 0, 0);
        m.row_mut(addr).unwrap().set_bit(7, true);
        assert!(m.read_row(addr).unwrap().bit(7));
    }
}
