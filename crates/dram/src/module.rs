//! The DRAM module façade: content storage plus per-chip internal structure.
//!
//! A [`DramModule`] ties together everything a "real chip" has that the
//! system cannot see: per-bank address scrambling, per-bank column repair,
//! and the true/anti-cell layout. The system side (memory controller,
//! MEMCON) reads and writes rows by *system* address; the failure model
//! reaches the *internal* cell space through [`DramModule::charge_at_internal`]
//! and friends.
//!
//! Content is stored bit-exactly per row so that read-back comparison (the
//! testing MEMCON performs online) sees genuine data-dependent bit flips.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::address::{RowAddr, RowId};
use crate::cell::{CellPolarity, RowContent, TrueAntiLayout};
use crate::error::DramError;
use crate::geometry::DramGeometry;
use crate::remap::RemapTable;
use crate::scramble::{Scrambler, VendorScrambler};
use crate::timing::TimingParams;

/// Fraction of bitlines repaired at manufacturing time (per bank) in the
/// default chip instantiation. Real repair rates are proprietary; a fraction
/// of ~0.2 % of columns is consistent with published repair-architecture
/// studies (Horiguchi & Itoh, cited by the paper).
pub const DEFAULT_REPAIR_FRACTION: f64 = 0.002;

/// Number of spare bitlines per bank in the default instantiation.
pub const DEFAULT_REDUNDANT_BITLINES: u64 = 512;

/// Row-level probe count after which a row's charge image is materialized.
///
/// A single module-wide evaluation sweep touches an internal row at most
/// three times (once as the victim, once per vertical neighbour), so the
/// threshold keeps one-shot sweeps on the cheap sparse-probe path while
/// repeated sweeps over unchanged content (hot TestEngine rows, benchmark
/// loops) graduate to the word-wide image.
const HOT_ROW_PROBES: u32 = 3;

/// Flat per-bank scrambler tables: the [`Scrambler`] translations memoized
/// into arrays, so a sparse charge probe costs two indexed loads instead of
/// two O(address-width) bit-permutation walks. Content-independent — row
/// writes never invalidate them.
#[derive(Debug)]
struct BankTables {
    /// `internal_row -> system row`.
    sys_row_of: Vec<u32>,
    /// `internal_bit -> system bit`.
    sys_bit_of: Vec<u64>,
}

/// Charge-image state of one internal row: a probe-heat counter and the
/// lazily built image. The whole slot is reset whenever the underlying
/// system row is written, so a cached image always reflects live content.
#[derive(Debug, Default)]
struct RowChargeSlot {
    probes: AtomicU32,
    image: OnceLock<Arc<[u64]>>,
}

impl Clone for RowChargeSlot {
    fn clone(&self) -> Self {
        RowChargeSlot {
            probes: AtomicU32::new(self.probes.load(Ordering::Relaxed)),
            image: self.image.clone(),
        }
    }
}

/// Derived fast-path state: per-bank scrambler tables plus the heat-gated
/// per-row charge-image cache. Everything here is recomputable from the
/// module's content and structure. The tables depend only on the immutable
/// scramblers, so clones share them through one `Arc` — whichever clone
/// builds a bank's tables first pays for the whole lineage. The image
/// slots are copied per clone (they track content, which diverges).
#[derive(Debug, Clone)]
struct ChargeCache {
    /// One lazily built table set per bank, shared across clones.
    tables: Arc<Vec<OnceLock<Arc<BankTables>>>>,
    /// One slot per internal row, bank-major:
    /// `bank_idx * rows_per_bank + internal_row`.
    rows: Vec<RowChargeSlot>,
}

impl ChargeCache {
    fn new(n_banks: usize, total_rows: usize) -> Self {
        ChargeCache {
            tables: Arc::new((0..n_banks).map(|_| OnceLock::new()).collect()),
            rows: (0..total_rows).map(|_| RowChargeSlot::default()).collect(),
        }
    }
}

/// A simulated DRAM module with vendor-internal structure.
///
/// Cloning is supported (content is plain data) but note a 2 GB geometry
/// stores 2 GB of host memory; experiments use scaled-down geometries.
#[derive(Debug, Clone)]
pub struct DramModule {
    geometry: DramGeometry,
    timing: TimingParams,
    chip_seed: u64,
    rows: Vec<RowContent>,
    scramblers: Vec<VendorScrambler>,
    remaps: Vec<RemapTable>,
    layout: TrueAntiLayout,
    charge: ChargeCache,
}

impl DramModule {
    /// Builds a module with all-zero content and per-chip internal structure
    /// derived deterministically from `chip_seed` (two modules with the same
    /// seed are identical chips; different seeds model different dies).
    ///
    /// # Panics
    ///
    /// Panics if `geometry` or `timing` fails validation.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams, chip_seed: u64) -> Self {
        geometry.validate().expect("invalid geometry");
        timing.validate().expect("invalid timing");
        let total = geometry.total_rows() as usize;
        let words = geometry.words_per_row();
        let bits = geometry.bits_per_row();
        let n_banks = usize::from(geometry.ranks) * usize::from(geometry.banks);

        let mut rng = SmallRng::seed_from_u64(chip_seed);
        // Half-and-half is the common layout reported by Liu et al. (ISCA'13)
        // for the chips the paper's methodology builds on; row-interleaved
        // layouts are available via `with_layout` for sensitivity studies.
        let _ = rng.gen::<u64>(); // keep downstream seed stream stable
        let layout = TrueAntiLayout::HalfAndHalf {
            rows_per_bank: geometry.rows_per_bank,
        };
        let faults = ((bits as f64 * DEFAULT_REPAIR_FRACTION) as u64)
            .min(DEFAULT_REDUNDANT_BITLINES.min(bits / 4));
        let scramblers = (0..n_banks)
            .map(|b| {
                VendorScrambler::from_seed(
                    chip_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b as u64,
                    geometry.rows_per_bank,
                    bits,
                )
            })
            .collect();
        let remaps = (0..n_banks)
            .map(|b| {
                RemapTable::from_seed(
                    chip_seed.wrapping_add(0xA5A5_5A5A) ^ (b as u64) << 17,
                    bits,
                    DEFAULT_REDUNDANT_BITLINES.min(bits / 2),
                    faults,
                )
            })
            .collect();

        DramModule {
            geometry,
            timing,
            chip_seed,
            rows: vec![RowContent::zeroed(words); total],
            scramblers,
            remaps,
            layout,
            charge: ChargeCache::new(n_banks, total),
        }
    }

    /// Device geometry.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Device timing.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The seed this chip was instantiated from.
    #[must_use]
    pub fn chip_seed(&self) -> u64 {
        self.chip_seed
    }

    /// True/anti-cell layout of this chip.
    #[must_use]
    pub fn layout(&self) -> TrueAntiLayout {
        self.layout
    }

    /// Replaces the true/anti-cell layout (for layout sensitivity studies).
    #[must_use]
    pub fn with_layout(mut self, layout: TrueAntiLayout) -> Self {
        self.layout = layout;
        self.invalidate_all_images();
        self
    }

    fn bank_index(&self, addr: RowAddr) -> usize {
        usize::from(addr.rank) * usize::from(self.geometry.banks) + usize::from(addr.bank)
    }

    /// The (vendor-secret) scrambler of `addr`'s bank.
    #[must_use]
    pub fn scrambler_for(&self, addr: RowAddr) -> &dyn Scrambler {
        &self.scramblers[self.bank_index(addr)]
    }

    /// The (vendor-secret) column-repair table of `addr`'s bank.
    #[must_use]
    pub fn remap_for(&self, addr: RowAddr) -> &RemapTable {
        &self.remaps[self.bank_index(addr)]
    }

    fn check_addr(&self, addr: RowAddr) -> Result<usize, DramError> {
        if addr.rank >= self.geometry.ranks {
            return Err(DramError::BankOutOfRange {
                bank: addr.rank,
                banks: self.geometry.ranks,
            });
        }
        if addr.bank >= self.geometry.banks {
            return Err(DramError::BankOutOfRange {
                bank: addr.bank,
                banks: self.geometry.banks,
            });
        }
        if addr.row >= self.geometry.rows_per_bank {
            return Err(DramError::RowOutOfRange {
                row: addr,
                rows_per_bank: self.geometry.rows_per_bank,
            });
        }
        Ok(addr.to_row_id(&self.geometry) as usize)
    }

    /// Reads a row by system address.
    ///
    /// # Errors
    ///
    /// Returns an address-range error if `addr` is outside the geometry.
    pub fn read_row(&self, addr: RowAddr) -> Result<&RowContent, DramError> {
        let idx = self.check_addr(addr)?;
        Ok(&self.rows[idx])
    }

    /// Overwrites a row by system address.
    ///
    /// # Errors
    ///
    /// Returns an address-range error or a
    /// [`DramError::ContentLengthMismatch`] if `content` has the wrong size.
    pub fn write_row(&mut self, addr: RowAddr, content: RowContent) -> Result<(), DramError> {
        let idx = self.check_addr(addr)?;
        if content.len_words() != self.geometry.words_per_row() {
            return Err(DramError::ContentLengthMismatch {
                expected: self.geometry.words_per_row(),
                actual: content.len_words(),
            });
        }
        self.rows[idx] = content;
        self.invalidate_image(addr);
        Ok(())
    }

    /// Mutable access to a row by system address (for in-place bit flips by
    /// the failure model).
    ///
    /// # Errors
    ///
    /// Returns an address-range error if `addr` is outside the geometry.
    pub fn row_mut(&mut self, addr: RowAddr) -> Result<&mut RowContent, DramError> {
        let idx = self.check_addr(addr)?;
        self.invalidate_image(addr);
        Ok(&mut self.rows[idx])
    }

    /// Fault-injection hook: flips one content bit of the row at `addr`
    /// (the bit index wraps modulo the row width), invalidating any charge
    /// image exactly as a demand write would. Returns the bit's new value.
    ///
    /// # Errors
    ///
    /// Returns an address-range error if `addr` is outside the geometry.
    pub fn inject_bit_flip(&mut self, addr: RowAddr, bit: u64) -> Result<bool, DramError> {
        let bits = self.geometry.words_per_row() as u64 * 64;
        let row = self.row_mut(addr)?;
        Ok(row.flip_bit(bit % bits))
    }

    /// Reads a row by linear [`RowId`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn read_row_id(&self, id: RowId) -> &RowContent {
        &self.rows[id as usize]
    }

    /// Fills the whole module by evaluating `f(row_id)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(RowId) -> RowContent) {
        let words = self.geometry.words_per_row();
        for (i, slot) in self.rows.iter_mut().enumerate() {
            let content = f(i as RowId);
            assert_eq!(
                content.len_words(),
                words,
                "fill_with produced a row of the wrong size"
            );
            *slot = content;
        }
        self.invalidate_all_images();
    }

    /// Charge state (`true` = capacitor charged) of the cell at *internal*
    /// coordinates: bank-internal row `internal_row`, bitline `internal_bit`
    /// (pre-remap). Applies scrambling inverse, then the true/anti polarity.
    ///
    /// This is the physics-side accessor used by the failure model; MEMCON
    /// never calls it.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    #[must_use]
    pub fn charge_at_internal(
        &self,
        rank: u8,
        bank: u8,
        internal_row: u32,
        internal_bit: u64,
    ) -> bool {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        let s = &self.scramblers[bank_idx];
        let sys_row = s.to_system_row(internal_row);
        let sys_bit = s.to_system_bit(internal_bit);
        let addr = RowAddr::new(rank, bank, sys_row);
        let logical = self.rows[addr.to_row_id(&self.geometry) as usize].bit(sys_bit);
        self.layout.polarity(internal_row).charge(logical)
    }

    /// Translates internal coordinates to the (rank, bank, system row,
    /// system bit) the system would observe a flip at.
    #[must_use]
    pub fn internal_to_system(
        &self,
        rank: u8,
        bank: u8,
        internal_row: u32,
        internal_bit: u64,
    ) -> (RowAddr, u64) {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        let s = &self.scramblers[bank_idx];
        (
            RowAddr::new(rank, bank, s.to_system_row(internal_row)),
            s.to_system_bit(internal_bit),
        )
    }

    /// The memoized scrambler tables of `bank_idx`, built on first use.
    fn bank_tables(&self, bank_idx: usize) -> Arc<BankTables> {
        Arc::clone(self.charge.tables[bank_idx].get_or_init(|| {
            let s = &self.scramblers[bank_idx];
            Arc::new(BankTables {
                sys_row_of: (0..self.geometry.rows_per_bank)
                    .map(|r| s.to_system_row(r))
                    .collect(),
                sys_bit_of: (0..self.geometry.bits_per_row())
                    .map(|b| s.to_system_bit(b))
                    .collect(),
            })
        }))
    }

    fn row_slot(&self, bank_idx: usize, internal_row: u32) -> &RowChargeSlot {
        &self.charge.rows[bank_idx * self.geometry.rows_per_bank as usize + internal_row as usize]
    }

    /// Drops the cached charge image of the internal row that stores system
    /// row `addr` (called from every content-mutation path).
    fn invalidate_image(&mut self, addr: RowAddr) {
        let bank_idx = self.bank_index(addr);
        let internal_row = self.scramblers[bank_idx].to_internal_row(addr.row);
        let slot = bank_idx * self.geometry.rows_per_bank as usize + internal_row as usize;
        self.charge.rows[slot] = RowChargeSlot::default();
    }

    /// Drops every cached charge image (bulk-fill / layout-change path).
    /// The scrambler tables are content-independent and survive.
    fn invalidate_all_images(&mut self) {
        for slot in &mut self.charge.rows {
            *slot = RowChargeSlot::default();
        }
    }

    /// Fast sparse charge probe: identical result to
    /// [`DramModule::charge_at_internal`], but the scrambler translations go
    /// through the memoized per-bank tables (two indexed loads), and a
    /// cached charge image is used directly when one exists.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    #[must_use]
    pub fn charge_probe(&self, rank: u8, bank: u8, internal_row: u32, internal_bit: u64) -> bool {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        if let Some(img) = self.row_slot(bank_idx, internal_row).image.get() {
            return (img[(internal_bit / 64) as usize] >> (internal_bit % 64)) & 1 == 1;
        }
        let t = self.bank_tables(bank_idx);
        let sys_row = t.sys_row_of[internal_row as usize];
        let sys_bit = t.sys_bit_of[internal_bit as usize];
        let addr = RowAddr::new(rank, bank, sys_row);
        let logical = self.rows[addr.to_row_id(&self.geometry) as usize].bit(sys_bit);
        self.layout.polarity(internal_row).charge(logical)
    }

    /// The *charge image* of one internal row: bit `i % 64` of word `i / 64`
    /// is the charge state of internal bitline `i`, with scrambling and
    /// true-/anti-cell polarity already applied. Built on first call and
    /// cached until the underlying system row is written.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    #[must_use]
    pub fn charge_image(&self, rank: u8, bank: u8, internal_row: u32) -> Arc<[u64]> {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        self.materialize_image(bank_idx, rank, bank, internal_row)
    }

    /// Heat-gated variant of [`DramModule::charge_image`]: counts the call
    /// as one row-level probe and returns the image only once the row has
    /// been probed more than [`HOT_ROW_PROBES`] times since its content
    /// last changed (`None` while cold — callers fall back to
    /// [`DramModule::charge_probe`]). This keeps one-shot sweeps off the
    /// O(bits-per-row) image build while repeatedly probed rows amortize it.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range.
    #[must_use]
    pub fn charge_image_if_hot(&self, rank: u8, bank: u8, internal_row: u32) -> Option<Arc<[u64]>> {
        let bank_idx = usize::from(rank) * usize::from(self.geometry.banks) + usize::from(bank);
        let slot = self.row_slot(bank_idx, internal_row);
        if let Some(img) = slot.image.get() {
            return Some(Arc::clone(img));
        }
        if slot.probes.fetch_add(1, Ordering::Relaxed) < HOT_ROW_PROBES {
            return None;
        }
        Some(self.materialize_image(bank_idx, rank, bank, internal_row))
    }

    fn materialize_image(
        &self,
        bank_idx: usize,
        rank: u8,
        bank: u8,
        internal_row: u32,
    ) -> Arc<[u64]> {
        let slot = self.row_slot(bank_idx, internal_row);
        Arc::clone(slot.image.get_or_init(|| {
            // Heat transition: this row graduates from sparse probes to a
            // word-wide image. Once per (row, invalidation epoch), and a
            // pure function of total probe counts — deterministic.
            telemetry::count("dram.charge.image_builds", 1);
            let t = self.bank_tables(bank_idx);
            let sys_row = t.sys_row_of[internal_row as usize];
            let addr = RowAddr::new(rank, bank, sys_row);
            let row = &self.rows[addr.to_row_id(&self.geometry) as usize];
            let mut img = vec![0u64; self.geometry.words_per_row()];
            for (internal_bit, &sys_bit) in t.sys_bit_of.iter().enumerate() {
                if row.bit(sys_bit) {
                    img[internal_bit / 64] |= 1 << (internal_bit % 64);
                }
            }
            if matches!(self.layout.polarity(internal_row), CellPolarity::Anti) {
                for w in &mut img {
                    *w = !*w;
                }
            }
            img.into()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellPolarity;

    fn tiny_module() -> DramModule {
        DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 1234)
    }

    #[test]
    fn new_module_is_zeroed() {
        let m = tiny_module();
        for id in 0..m.geometry().total_rows() {
            assert_eq!(m.read_row_id(id).popcount(), 0);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = tiny_module();
        let addr = RowAddr::new(0, 1, 10);
        let mut content = RowContent::zeroed(m.geometry().words_per_row());
        content.set_bit(100, true);
        m.write_row(addr, content.clone()).unwrap();
        assert_eq!(m.read_row(addr).unwrap(), &content);
        // Other rows untouched.
        assert_eq!(m.read_row(RowAddr::new(0, 1, 11)).unwrap().popcount(), 0);
    }

    #[test]
    fn write_rejects_wrong_size() {
        let mut m = tiny_module();
        let err = m
            .write_row(RowAddr::new(0, 0, 0), RowContent::zeroed(1))
            .unwrap_err();
        assert!(matches!(err, DramError::ContentLengthMismatch { .. }));
    }

    #[test]
    fn out_of_range_addresses_error() {
        let m = tiny_module();
        assert!(m.read_row(RowAddr::new(0, 5, 0)).is_err());
        assert!(m.read_row(RowAddr::new(0, 0, 64)).is_err());
        assert!(m.read_row(RowAddr::new(1, 0, 0)).is_err());
    }

    #[test]
    fn same_seed_same_chip_different_seed_different_chip() {
        let a = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 7);
        let b = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 7);
        let c = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 8);
        let probe = |m: &DramModule| {
            (0..16u32)
                .map(|r| m.scrambler_for(RowAddr::new(0, 0, 0)).to_internal_row(r))
                .collect::<Vec<_>>()
        };
        assert_eq!(probe(&a), probe(&b));
        assert_ne!(probe(&a), probe(&c));
    }

    #[test]
    fn charge_respects_scramble_and_polarity() {
        let mut m = tiny_module();
        // Set a single known system bit and find it through the internal view.
        let addr = RowAddr::new(0, 0, 3);
        let mut content = RowContent::zeroed(m.geometry().words_per_row());
        content.set_bit(17, true);
        m.write_row(addr, content).unwrap();

        let s = &m.scramblers[0];
        let internal_row = s.to_internal_row(3);
        let internal_bit = s.to_internal_bit(17);
        let polarity = m.layout().polarity(internal_row);
        let expected_charge = polarity.charge(true);
        assert_eq!(
            m.charge_at_internal(0, 0, internal_row, internal_bit),
            expected_charge
        );
        // A zero bit at the same internal row has the complementary charge
        // only if polarity maps it so.
        let other_bit = s.to_internal_bit(18);
        assert_eq!(
            m.charge_at_internal(0, 0, internal_row, other_bit),
            polarity.charge(false)
        );
        // Sanity: polarity is a real enum value.
        assert!(matches!(polarity, CellPolarity::True | CellPolarity::Anti));
    }

    #[test]
    fn internal_to_system_roundtrip() {
        let m = tiny_module();
        let s = &m.scramblers[1]; // bank 1
        let internal_row = s.to_internal_row(20);
        let internal_bit = s.to_internal_bit(99);
        let (addr, bit) = m.internal_to_system(0, 1, internal_row, internal_bit);
        assert_eq!(addr, RowAddr::new(0, 1, 20));
        assert_eq!(bit, 99);
    }

    #[test]
    fn fill_with_covers_all_rows() {
        let mut m = tiny_module();
        let words = m.geometry().words_per_row();
        m.fill_with(|id| RowContent::from_words(vec![id; words]));
        assert_eq!(m.read_row_id(5).as_words()[0], 5);
        assert_eq!(
            m.read_row_id(m.geometry().total_rows() - 1).as_words()[0],
            m.geometry().total_rows() - 1
        );
    }

    #[test]
    fn row_mut_allows_bit_flip() {
        let mut m = tiny_module();
        let addr = RowAddr::new(0, 0, 0);
        m.row_mut(addr).unwrap().set_bit(7, true);
        assert!(m.read_row(addr).unwrap().bit(7));
    }

    fn random_fill(m: &mut DramModule, seed: u64) {
        let words = m.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(seed);
        m.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    }

    #[test]
    fn charge_probe_and_image_agree_with_naive_path() {
        let mut m = tiny_module();
        random_fill(&mut m, 0xC4A6);
        let g = *m.geometry();
        for rank in 0..g.ranks {
            for bank in 0..g.banks {
                for row in 0..g.rows_per_bank {
                    let img = m.charge_image(rank, bank, row);
                    for bit in 0..g.bits_per_row() {
                        let naive = m.charge_at_internal(rank, bank, row, bit);
                        assert_eq!(
                            m.charge_probe(rank, bank, row, bit),
                            naive,
                            "probe diverged at ({rank},{bank},{row},{bit})"
                        );
                        assert_eq!(
                            (img[(bit / 64) as usize] >> (bit % 64)) & 1 == 1,
                            naive,
                            "image diverged at ({rank},{bank},{row},{bit})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn charge_image_if_hot_gates_on_probe_count() {
        let mut m = tiny_module();
        random_fill(&mut m, 5);
        for _ in 0..HOT_ROW_PROBES {
            assert!(m.charge_image_if_hot(0, 0, 9).is_none(), "built too early");
        }
        assert!(m.charge_image_if_hot(0, 0, 9).is_some(), "never became hot");
        // Once built, further callers get the cached image without waiting.
        assert!(m.charge_image_if_hot(0, 0, 9).is_some());
    }

    #[test]
    fn writes_invalidate_the_charge_image() {
        let mut m = tiny_module();
        random_fill(&mut m, 6);
        let g = *m.geometry();
        let addr = RowAddr::new(0, 1, 12);
        let internal_row = m.scrambler_for(addr).to_internal_row(addr.row);

        let before = m.charge_image(0, 1, internal_row);
        // `write_row`: the stale image must be dropped and rebuilt from the
        // new content.
        let mut rng = SmallRng::seed_from_u64(7);
        let fresh = RowContent::from_words(
            (0..g.words_per_row())
                .map(|_| rng.gen())
                .collect::<Vec<_>>(),
        );
        m.write_row(addr, fresh).unwrap();
        let after = m.charge_image(0, 1, internal_row);
        assert_ne!(before, after, "image not rebuilt after write_row");
        for bit in 0..g.bits_per_row() {
            assert_eq!(
                (after[(bit / 64) as usize] >> (bit % 64)) & 1 == 1,
                m.charge_at_internal(0, 1, internal_row, bit)
            );
        }

        // `row_mut`: in-place flips must invalidate too.
        let sys_bit = 33;
        m.row_mut(addr).unwrap().flip_bit(sys_bit);
        let internal_bit = m.scrambler_for(addr).to_internal_bit(sys_bit);
        let rebuilt = m.charge_image(0, 1, internal_row);
        assert_eq!(
            (rebuilt[(internal_bit / 64) as usize] >> (internal_bit % 64)) & 1 == 1,
            m.charge_at_internal(0, 1, internal_row, internal_bit)
        );
        assert_ne!(rebuilt, after, "image not rebuilt after row_mut");

        // `fill_with`: bulk refills drop every image.
        let img_other = m.charge_image(0, 0, 3);
        random_fill(&mut m, 8);
        for bit in 0..g.bits_per_row() {
            assert_eq!(
                m.charge_probe(0, 0, 3, bit),
                m.charge_at_internal(0, 0, 3, bit),
                "stale probe after fill_with"
            );
        }
        let img_refilled = m.charge_image(0, 0, 3);
        assert_ne!(img_other, img_refilled, "image not rebuilt after fill_with");
    }

    #[test]
    fn with_layout_invalidates_images() {
        let mut m = tiny_module();
        random_fill(&mut m, 9);
        let before = m.charge_image(0, 0, 1);
        let m = m.with_layout(TrueAntiLayout::AlternateRows);
        let after = m.charge_image(0, 0, 1);
        // Internal row 1 is a true cell under HalfAndHalf (64-row banks) but
        // an anti cell under AlternateRows: the image must flip.
        assert_eq!(
            before.iter().map(|w| !w).collect::<Vec<_>>(),
            after.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cloned_module_keeps_consistent_charge_state() {
        let mut m = tiny_module();
        random_fill(&mut m, 10);
        let _ = m.charge_image(0, 0, 5);
        let mut c = m.clone();
        // The clone's cached image matches its (identical) content...
        assert_eq!(m.charge_image(0, 0, 5), c.charge_image(0, 0, 5));
        // ...and diverges independently after a write to the clone.
        let addr = RowAddr::new(
            0,
            0,
            c.scrambler_for(RowAddr::new(0, 0, 0)).to_system_row(5),
        );
        let internal = c.scrambler_for(addr).to_internal_row(addr.row);
        assert_eq!(internal, 5, "address arithmetic self-check");
        c.row_mut(addr).unwrap().flip_bit(0);
        assert_ne!(m.charge_image(0, 0, 5), c.charge_image(0, 0, 5));
        for bit in 0..m.geometry().bits_per_row() {
            assert_eq!(
                m.charge_probe(0, 0, 5, bit),
                m.charge_at_internal(0, 0, 5, bit)
            );
        }
    }
}
