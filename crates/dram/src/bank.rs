//! Timing-checked DRAM bank state machine.
//!
//! Each bank is a small automaton — precharged (idle) or with one row open —
//! plus a set of "earliest legal issue cycle" registers derived from the DDR3
//! timing constraints in [`crate::timing`]. The cycle simulator drives one
//! [`Bank`] per physical bank; rank-level constraints (`tFAW`, `tRRD`, data
//! bus occupancy, refresh blackouts) are enforced by the controller, which
//! injects them through [`Bank::block_until`].

use crate::command::DramCommand;
use crate::error::DramError;
use crate::timing::TimingParams;

/// Burst length in controller cycles for a 64-byte block on a 64-bit DDR3
/// channel (BL8 → 4 clock edriven cycles).
pub const BURST_CYCLES: u64 = 4;

/// Observable state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// All rows closed; an `ACT` is required before column access.
    Idle,
    /// One row open in the sense amplifiers.
    Active {
        /// The open row index.
        row: u32,
    },
}

/// One DRAM bank with DDR3 timing enforcement.
#[derive(Debug, Clone, PartialEq)]
pub struct Bank {
    state: BankState,
    next_act: u64,
    next_read: u64,
    next_write: u64,
    next_pre: u64,
    /// Total ACT commands issued (row-buffer miss counter).
    pub acts: u64,
    /// Total column accesses issued (each necessarily to the open row).
    pub row_hits: u64,
}

impl Bank {
    /// A freshly powered-up, precharged bank.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            next_act: 0,
            next_read: 0,
            next_write: 0,
            next_pre: 0,
            acts: 0,
            row_hits: 0,
        }
    }

    /// Current automaton state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Idle => None,
            BankState::Active { row } => Some(row),
        }
    }

    /// Earliest cycle at which `command` could legally issue, independent of
    /// state legality (used by the scheduler to rank candidates).
    #[must_use]
    pub fn ready_cycle(&self, command: DramCommand) -> u64 {
        match command {
            DramCommand::Activate => self.next_act,
            DramCommand::Read | DramCommand::ReadAp => self.next_read,
            DramCommand::Write | DramCommand::WriteAp => self.next_write,
            DramCommand::Precharge => self.next_pre,
            DramCommand::Refresh => self.next_act,
        }
    }

    /// Checks whether `command` may issue at cycle `now` (state and timing).
    ///
    /// # Errors
    ///
    /// [`DramError::IllegalCommand`] for a state mismatch (e.g. `RD` while
    /// idle), [`DramError::TimingViolation`] when issued too early.
    pub fn check(&self, command: DramCommand, now: u64) -> Result<(), DramError> {
        let state_ok = match command {
            DramCommand::Activate | DramCommand::Refresh => {
                matches!(self.state, BankState::Idle)
            }
            DramCommand::Precharge => true, // PRE of an idle bank is a no-op
            DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp => {
                matches!(self.state, BankState::Active { .. })
            }
        };
        if !state_ok {
            return Err(DramError::IllegalCommand {
                command,
                state: match self.state {
                    BankState::Idle => "Idle",
                    BankState::Active { .. } => "Active",
                },
            });
        }
        let ready = self.ready_cycle(command);
        if now < ready {
            let parameter = match command {
                DramCommand::Activate | DramCommand::Refresh => "tRP",
                DramCommand::Read | DramCommand::ReadAp => "tRCD/tCCD/tWTR",
                DramCommand::Write | DramCommand::WriteAp => "tRCD/tCCD",
                DramCommand::Precharge => "tRAS/tRTP/tWR",
            };
            return Err(DramError::TimingViolation {
                command,
                parameter,
                ready_at: ready,
                issued_at: now,
            });
        }
        Ok(())
    }

    /// Issues `command` at cycle `now`, updating state and timing registers.
    /// Returns the cycle at which the command's effect completes (data
    /// availability for reads/writes; bank-idle for `PRE`/`ACT`).
    ///
    /// # Errors
    ///
    /// See [`Bank::check`]; the bank is unchanged on error.
    pub fn issue(
        &mut self,
        command: DramCommand,
        row: u32,
        now: u64,
        t: &TimingParams,
    ) -> Result<u64, DramError> {
        self.check(command, now)?;
        match command {
            DramCommand::Activate => {
                self.state = BankState::Active { row };
                self.acts += 1;
                self.next_read = now + t.trcd_cycles();
                self.next_write = now + t.trcd_cycles();
                self.next_pre = now + t.tras_cycles();
                Ok(now + t.trcd_cycles())
            }
            DramCommand::Read | DramCommand::ReadAp => {
                self.row_hits += 1;
                let data_done = now + t.tcl_cycles() + BURST_CYCLES;
                self.next_read = now + t.tccd_cycles();
                self.next_write = now + t.tccd_cycles();
                self.next_pre = self.next_pre.max(now + t.trtp_cycles());
                if command.auto_precharges() {
                    self.state = BankState::Idle;
                    // The implicit precharge happens at next_pre (which
                    // carries tRAS from ACT and tRTP from this read);
                    // compose with any existing blackout on next_act.
                    self.next_act = self.next_act.max(self.next_pre + t.trp_cycles());
                }
                Ok(data_done)
            }
            DramCommand::Write | DramCommand::WriteAp => {
                self.row_hits += 1;
                let data_done = now + t.tcl_cycles() + BURST_CYCLES;
                self.next_write = now + t.tccd_cycles();
                // Write-to-read turnaround: reads wait for the write burst
                // plus tWTR.
                self.next_read = data_done + t.twtr_cycles();
                self.next_pre = self.next_pre.max(data_done + t.twr_cycles());
                if command.auto_precharges() {
                    self.state = BankState::Idle;
                    // next_pre already composes tRAS (from ACT) with the
                    // write-recovery time; keep existing blackouts too.
                    self.next_act = self.next_act.max(self.next_pre + t.trp_cycles());
                }
                Ok(data_done)
            }
            DramCommand::Precharge => {
                self.state = BankState::Idle;
                self.next_act = self.next_act.max(now + t.trp_cycles());
                Ok(now + t.trp_cycles())
            }
            DramCommand::Refresh => {
                // Rank-level REF arrives here already gated to an idle bank;
                // occupy it for tRFC.
                let done = now + t.trfc_cycles();
                self.next_act = self.next_act.max(done);
                Ok(done)
            }
        }
    }

    /// Forbids any activate before `cycle` — used by the controller for
    /// rank-level blackouts (refresh windows, `tFAW`).
    pub fn block_until(&mut self, cycle: u64) {
        self.next_act = self.next_act.max(cycle);
    }

    /// Validates the automaton's internal consistency. Called by strict-mode
    /// harnesses after command bursts; cheap enough to run in a loop.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    ///
    /// * a row can only be open after at least one `ACT`,
    /// * column accesses (`row_hits`) require a prior activation,
    /// * counters never exceed each other's enabling events.
    pub fn check_invariants(&self) -> Result<(), String> {
        if matches!(self.state, BankState::Active { .. }) && self.acts == 0 {
            return Err("row open but no ACT ever issued".into());
        }
        if self.row_hits > 0 && self.acts == 0 {
            return Err(format!(
                "{} column accesses recorded without any activation",
                self.row_hits
            ));
        }
        Ok(())
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn fresh_bank_is_idle_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.open_row(), None);
        assert!(b.check(DramCommand::Activate, 0).is_ok());
    }

    #[test]
    fn read_requires_activation() {
        let b = Bank::new();
        let err = b.check(DramCommand::Read, 0).unwrap_err();
        assert!(matches!(err, DramError::IllegalCommand { .. }));
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 5, 0, &timing).unwrap();
        assert_eq!(b.open_row(), Some(5));
        // Too early: tRCD = 11 ns = 9 cycles.
        let err = b.check(DramCommand::Read, 3).unwrap_err();
        assert!(matches!(
            err,
            DramError::TimingViolation { ready_at: 9, .. }
        ));
        let done = b.issue(DramCommand::Read, 5, 9, &timing).unwrap();
        assert_eq!(done, 9 + timing.tcl_cycles() + BURST_CYCLES);
    }

    #[test]
    fn back_to_back_reads_respect_tccd() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        b.issue(DramCommand::Read, 0, 9, &timing).unwrap();
        assert_eq!(b.ready_cycle(DramCommand::Read), 9 + timing.tccd_cycles());
        assert!(b.check(DramCommand::Read, 9 + 1).is_err());
        assert!(b
            .issue(DramCommand::Read, 0, 9 + timing.tccd_cycles(), &timing)
            .is_ok());
    }

    #[test]
    fn precharge_respects_tras() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        // tRAS = 28 ns = ceil(22.4) = 23 cycles.
        let tras = timing.tras_cycles();
        assert!(b.check(DramCommand::Precharge, tras - 1).is_err());
        b.issue(DramCommand::Precharge, 0, tras, &timing).unwrap();
        assert_eq!(b.state(), BankState::Idle);
        // ACT must now wait tRP.
        assert!(b.check(DramCommand::Activate, tras + 1).is_err());
        assert!(b
            .issue(
                DramCommand::Activate,
                1,
                tras + timing.trp_cycles(),
                &timing
            )
            .is_ok());
    }

    #[test]
    fn write_then_read_turnaround() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        let wr_done = b.issue(DramCommand::Write, 0, 9, &timing).unwrap();
        let rd_ready = b.ready_cycle(DramCommand::Read);
        assert_eq!(rd_ready, wr_done + timing.twtr_cycles());
        assert!(rd_ready > 9 + timing.tccd_cycles(), "tWTR dominates tCCD");
    }

    #[test]
    fn read_with_autoprecharge_closes_row() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 3, 0, &timing).unwrap();
        b.issue(DramCommand::ReadAp, 3, 9, &timing).unwrap();
        assert_eq!(b.state(), BankState::Idle);
    }

    #[test]
    fn refresh_blocks_activation_for_trfc() {
        let mut b = Bank::new();
        let timing = t();
        let done = b.issue(DramCommand::Refresh, 0, 100, &timing).unwrap();
        assert_eq!(done, 100 + timing.trfc_cycles());
        assert!(b.check(DramCommand::Activate, done - 1).is_err());
        assert!(b.check(DramCommand::Activate, done).is_ok());
    }

    #[test]
    fn auto_precharge_respects_existing_blackout() {
        // A rank-level blackout injected via block_until must survive
        // ReadAp/WriteAp's implicit precharge.
        let timing = t();
        for cmd in [DramCommand::ReadAp, DramCommand::WriteAp] {
            let mut b = Bank::new();
            b.issue(DramCommand::Activate, 3, 0, &timing).unwrap();
            b.block_until(1000);
            b.issue(cmd, 3, 9, &timing).unwrap();
            assert_eq!(b.state(), BankState::Idle);
            assert!(
                b.ready_cycle(DramCommand::Activate) >= 1000,
                "{cmd}: blackout erased (ready at {})",
                b.ready_cycle(DramCommand::Activate)
            );
        }
    }

    #[test]
    fn write_ap_respects_tras() {
        // With a long tRAS, the implicit precharge of WriteAp must still
        // wait for the row-active minimum from the ACT.
        let mut timing = t();
        timing.tras_ns = 200.0; // 160 cycles, far beyond tCL+burst+tWR
        let mut b = Bank::new();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        b.issue(DramCommand::WriteAp, 0, 9, &timing).unwrap();
        let ready = b.ready_cycle(DramCommand::Activate);
        assert!(
            ready >= timing.tras_cycles() + timing.trp_cycles(),
            "implicit precharge violated tRAS: next ACT at {ready}"
        );
    }

    #[test]
    fn block_until_only_extends() {
        let mut b = Bank::new();
        b.block_until(50);
        assert_eq!(b.ready_cycle(DramCommand::Activate), 50);
        b.block_until(10);
        assert_eq!(b.ready_cycle(DramCommand::Activate), 50);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut b = Bank::new();
        let timing = t();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        b.issue(DramCommand::Read, 0, 9, &timing).unwrap();
        b.issue(DramCommand::Read, 0, 13, &timing).unwrap();
        assert_eq!(b.acts, 1);
        assert_eq!(b.row_hits, 2);
    }

    #[test]
    fn invariants_hold_through_a_session() {
        let mut b = Bank::new();
        let timing = t();
        b.check_invariants().unwrap();
        b.issue(DramCommand::Activate, 0, 0, &timing).unwrap();
        b.check_invariants().unwrap();
        b.issue(DramCommand::Read, 0, 9, &timing).unwrap();
        b.issue(DramCommand::Precharge, 0, 40, &timing).unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn failed_issue_leaves_bank_unchanged() {
        let mut b = Bank::new();
        let timing = t();
        let before = b.clone();
        assert!(b.issue(DramCommand::Read, 0, 0, &timing).is_err());
        assert_eq!(b, before);
    }

    mod properties {
        use super::*;
        use memutil::rng::{Rng, SeedableRng, SmallRng};

        const COMMANDS: [DramCommand; 6] = [
            DramCommand::Activate,
            DramCommand::Read,
            DramCommand::ReadAp,
            DramCommand::Write,
            DramCommand::WriteAp,
            DramCommand::Precharge,
        ];

        /// Driving the bank with arbitrary command attempts (issuing
        /// whenever `check` allows, at the ready cycle otherwise) never
        /// corrupts the automaton: completions move forward in time,
        /// rejected commands leave the bank untouched, and column
        /// commands only ever execute against an open row.
        #[test]
        fn prop_bank_is_robust_to_arbitrary_drivers() {
            let mut rng = SmallRng::seed_from_u64(0xBA7C_0001);
            for _ in 0..128 {
                let n = rng.gen_range(1usize..200);
                let cmds: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..6)).collect();
                let jn = rng.gen_range(1usize..200);
                let jitter: Vec<u64> = (0..jn).map(|_| rng.gen_range(0u64..8)).collect();
                let timing = t();
                let mut bank = Bank::new();
                let mut now = 0u64;
                let mut last_done = 0u64;
                for (ci, j) in cmds.iter().zip(jitter.iter().cycle()) {
                    let cmd = COMMANDS[*ci];
                    now = now.max(bank.ready_cycle(cmd)) + j;
                    let before = bank.clone();
                    match bank.issue(cmd, 7, now, &timing) {
                        Ok(done) => {
                            assert!(done >= now, "completion before issue");
                            assert!(
                                done >= last_done || cmd.is_column() == before.open_row().is_none(),
                                "time went backwards"
                            );
                            last_done = last_done.max(done);
                            if cmd.is_column() {
                                assert!(
                                    before.open_row().is_some(),
                                    "column command issued on a closed bank"
                                );
                            }
                        }
                        Err(_) => {
                            assert_eq!(&bank, &before, "failed issue mutated the bank");
                        }
                    }
                    bank.check_invariants().unwrap();
                }
            }
        }

        /// `check` and `issue` always agree: if check passes, issue
        /// succeeds, and vice versa.
        #[test]
        fn prop_check_predicts_issue() {
            let mut rng = SmallRng::seed_from_u64(0xBA7C_0002);
            for _ in 0..128 {
                let n = rng.gen_range(1usize..120);
                let timing = t();
                let mut bank = Bank::new();
                let mut now = 0u64;
                for _ in 0..n {
                    let cmd = COMMANDS[rng.gen_range(0usize..6)];
                    let ok = bank.check(cmd, now).is_ok();
                    let result = bank.issue(cmd, 3, now, &timing);
                    assert_eq!(ok, result.is_ok());
                    now += 2;
                }
            }
        }
    }
}
