//! Vendor-internal address scrambling (paper Fig. 2a).
//!
//! DRAM vendors scramble the address space internally: neighbouring *system*
//! addresses do not correspond to neighbouring *physical* cells, the mapping
//! differs per chip generation, and it is not exposed outside the vendor.
//! This is the first of the two design issues that make system-level
//! detection of data-dependent failures hard (Section 2 of the paper).
//!
//! [`Scrambler`] is the interface the failure model uses to translate between
//! the two spaces. MEMCON itself never calls it — that is the point of the
//! paper — but the *simulated physics* must, so that exhaustive
//! neighbour-pattern testing at the system level genuinely fails to reach
//! physical neighbours, just as on real chips.
//!
//! All provided scramblers are bijections built from self-inverse or
//! trivially invertible primitives (XOR masks and rotations), so the
//! round-trip property holds exactly and cheaply.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

/// A bijective mapping between system and internal coordinates for one bank.
///
/// Row scrambling relocates whole rows; bit scrambling permutes bit positions
/// (bitlines) within a row. Both directions are exposed because the failure
/// model walks internal neighbourhoods and must attribute failures back to
/// system-visible bits.
pub trait Scrambler: std::fmt::Debug + Send + Sync {
    /// Internal row index of system row `row`.
    fn to_internal_row(&self, row: u32) -> u32;
    /// System row index of internal row `row` (inverse of
    /// [`Scrambler::to_internal_row`]).
    fn to_system_row(&self, row: u32) -> u32;
    /// Internal bitline position of system bit `bit` within a row.
    fn to_internal_bit(&self, bit: u64) -> u64;
    /// System bit position of internal bitline `bit` (inverse of
    /// [`Scrambler::to_internal_bit`]).
    fn to_system_bit(&self, bit: u64) -> u64;
}

/// The identity mapping — useful for tests and for modelling hypothetical
/// scramble-free devices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityScrambler;

impl Scrambler for IdentityScrambler {
    fn to_internal_row(&self, row: u32) -> u32 {
        row
    }
    fn to_system_row(&self, row: u32) -> u32 {
        row
    }
    fn to_internal_bit(&self, bit: u64) -> u64 {
        bit
    }
    fn to_system_bit(&self, bit: u64) -> u64 {
        bit
    }
}

/// A permutation of the bit positions of a `width`-bit address, composed
/// with an XOR mask: `y = shuffle_address_bits(x) ^ mask`.
///
/// Permuting *address bits* (not addresses) is how real scramblers behave:
/// two addresses differing in one low bit land `2^p` apart internally, so
/// system adjacency is destroyed while the map stays a cheap exact bijection.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitPermutation {
    width: u32,
    /// `perm[i]` = destination position of source address-bit `i`.
    perm: Vec<u32>,
    /// `inv[perm[i]] = i`.
    inv: Vec<u32>,
    mask: u64,
}

impl BitPermutation {
    fn from_rng(rng: &mut SmallRng, width: u32) -> Self {
        use memutil::rng::SliceRandom;
        let mut perm: Vec<u32> = (0..width).collect();
        perm.shuffle(rng);
        let mut inv = vec![0u32; width as usize];
        for (i, &p) in perm.iter().enumerate() {
            inv[p as usize] = i as u32;
        }
        let mask = if width == 0 {
            0
        } else {
            rng.gen_range(0..(1u64 << width))
        };
        BitPermutation {
            width,
            perm,
            inv,
            mask,
        }
    }

    fn forward(&self, x: u64) -> u64 {
        debug_assert!(self.width == 64 || x < (1u64 << self.width));
        let mut y = 0u64;
        for (i, &p) in self.perm.iter().enumerate() {
            y |= ((x >> i) & 1) << p;
        }
        y ^ self.mask
    }

    fn backward(&self, y: u64) -> u64 {
        let y = y ^ self.mask;
        let mut x = 0u64;
        for (p, &i) in self.inv.iter().enumerate() {
            x |= ((y >> p) & 1) << i;
        }
        x
    }
}

/// A vendor-generation-specific scrambler: independent address-bit
/// permutations plus XOR masks for the row space and the bitline space.
///
/// Different seeds model different vendors/generations (the paper notes
/// vendors scramble differently per generation), while staying exactly
/// invertible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorScrambler {
    rows: u32,
    bits: u64,
    row_map: BitPermutation,
    bit_map: BitPermutation,
}

impl VendorScrambler {
    /// Creates a scrambler for a bank of `rows` rows × `bits_per_row` bits,
    /// with mapping parameters drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `bits_per_row` is not a power of two (all
    /// supported geometries are).
    #[must_use]
    pub fn from_seed(seed: u64, rows: u32, bits_per_row: u64) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        assert!(
            bits_per_row.is_power_of_two(),
            "bits per row must be a power of two"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let row_map = BitPermutation::from_rng(&mut rng, rows.trailing_zeros());
        let bit_map = BitPermutation::from_rng(&mut rng, bits_per_row.trailing_zeros());
        VendorScrambler {
            rows,
            bits: bits_per_row,
            row_map,
            bit_map,
        }
    }
}

impl Scrambler for VendorScrambler {
    fn to_internal_row(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows);
        self.row_map.forward(u64::from(row)) as u32
    }

    fn to_system_row(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows);
        self.row_map.backward(u64::from(row)) as u32
    }

    fn to_internal_bit(&self, bit: u64) -> u64 {
        debug_assert!(bit < self.bits);
        self.bit_map.forward(bit)
    }

    fn to_system_bit(&self, bit: u64) -> u64 {
        debug_assert!(bit < self.bits);
        self.bit_map.backward(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let s = IdentityScrambler;
        assert_eq!(s.to_internal_row(42), 42);
        assert_eq!(s.to_system_row(42), 42);
        assert_eq!(s.to_internal_bit(1000), 1000);
        assert_eq!(s.to_system_bit(1000), 1000);
    }

    #[test]
    fn vendor_roundtrip_exhaustive_small() {
        let s = VendorScrambler::from_seed(7, 64, 256);
        let mut seen_rows = std::collections::HashSet::new();
        for r in 0..64 {
            let i = s.to_internal_row(r);
            assert!(i < 64);
            assert_eq!(s.to_system_row(i), r);
            assert!(seen_rows.insert(i), "row mapping must be injective");
        }
        let mut seen_bits = std::collections::HashSet::new();
        for b in 0..256 {
            let i = s.to_internal_bit(b);
            assert!(i < 256);
            assert_eq!(s.to_system_bit(i), b);
            assert!(seen_bits.insert(i), "bit mapping must be injective");
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = VendorScrambler::from_seed(1, 1024, 65536);
        let b = VendorScrambler::from_seed(2, 1024, 65536);
        let same = (0..1024).all(|r| a.to_internal_row(r) == b.to_internal_row(r));
        assert!(!same, "two seeds produced identical row scrambles");
    }

    #[test]
    fn scrambling_breaks_adjacency() {
        // The property that motivates MEMCON: system-adjacent rows are not
        // internally adjacent for almost all seeds. A seed whose row
        // permutation happens to leave address-bit 0 in place preserves
        // adjacency for every even row (~1/15 of seeds), so assert over a
        // seed population rather than one arbitrary seed.
        let broken = (0u64..12)
            .filter(|&seed| {
                let s = VendorScrambler::from_seed(seed, 32_768, 65_536);
                let preserved = (0u32..1000)
                    .filter(|&r| {
                        let a = s.to_internal_row(r);
                        let b = s.to_internal_row(r + 1);
                        a.abs_diff(b) == 1
                    })
                    .count();
                preserved < 10
            })
            .count();
        assert!(
            broken >= 8,
            "only {broken}/12 seeds destroyed system adjacency"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = VendorScrambler::from_seed(0, 100, 256);
    }

    #[test]
    fn trait_object_safety() {
        let boxed: Box<dyn Scrambler> = Box::new(VendorScrambler::from_seed(9, 64, 256));
        assert_eq!(boxed.to_system_row(boxed.to_internal_row(5)), 5);
    }

    /// Seeded property loop: scramble/descramble round-trips for random
    /// vendor seeds, rows, and bit positions. Building a `VendorScrambler`
    /// for the full 2 GB bank is the expensive part, so each scrambler is
    /// probed at several random positions.
    #[test]
    fn prop_roundtrip() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0x5CA_0001);
        for _ in 0..8 {
            let seed: u64 = rng.gen();
            let s = VendorScrambler::from_seed(seed, 32_768, 65_536);
            for _ in 0..64 {
                let row = rng.gen_range(0u32..32_768);
                let bit = rng.gen_range(0u64..65_536);
                assert_eq!(s.to_system_row(s.to_internal_row(row)), row);
                assert_eq!(s.to_internal_row(s.to_system_row(row)), row);
                assert_eq!(s.to_system_bit(s.to_internal_bit(bit)), bit);
                assert_eq!(s.to_internal_bit(s.to_system_bit(bit)), bit);
            }
        }
    }
}
