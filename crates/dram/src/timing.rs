//! DDR timing parameters and the derived latency costs of the paper's
//! appendix.
//!
//! Two consumers with different needs share this module:
//!
//! * the **analytic cost model** (`memcon::cost`) works in nanoseconds and
//!   must reproduce the paper's appendix arithmetic exactly
//!   (Read-and-Compare = 1068 ns, Copy-and-Compare = 1602 ns, refresh op =
//!   39 ns),
//! * the **cycle simulator** (`memsim`) works in integer controller cycles at
//!   `tCK` = 1.25 ns (DDR3-1600, 800 MHz).
//!
//! The paper's appendix states `2·(tRCD + 128·tCCD + tRP) = 1068 ns` and
//! `tRAS + tRP = 39 ns` "using DDR3-1600 timing parameters". Those equations
//! pin `tRCD = tRP = 11 ns`, `tCCD = 4 ns`, `tRAS = 28 ns`; the
//! [`TimingParams::ddr3_1600`] preset uses exactly these values so every
//! derived number in the reproduction matches the paper. (JEDEC nominal
//! values differ slightly — e.g. `tCCD` = 5 ns — but the paper's own
//! arithmetic is the source of truth for this reproduction.)

use crate::geometry::ChipDensity;

/// Nanoseconds per controller clock for DDR3-1600 (800 MHz).
pub const DDR3_1600_TCK_NS: f64 = 1.25;

/// DDR timing parameters, in nanoseconds.
///
/// Only the parameters the paper's model and our simulator consume are
/// included; the struct is `#[non_exhaustive]`-like through its constructor
/// presets (fields are public for easy experimentation in benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Clock period in nanoseconds.
    pub tck_ns: f64,
    /// ACT-to-RD/WR delay (row activation).
    pub trcd_ns: f64,
    /// PRE-to-ACT delay (precharge).
    pub trp_ns: f64,
    /// ACT-to-PRE minimum (row active time).
    pub tras_ns: f64,
    /// Column-to-column (back-to-back block transfers from an open row).
    pub tccd_ns: f64,
    /// CAS latency (RD to first data).
    pub tcl_ns: f64,
    /// Write recovery (last write data to PRE).
    pub twr_ns: f64,
    /// Read-to-precharge.
    pub trtp_ns: f64,
    /// Write-to-read turnaround.
    pub twtr_ns: f64,
    /// ACT-to-ACT different bank minimum.
    pub trrd_ns: f64,
    /// Four-activate window.
    pub tfaw_ns: f64,
    /// Average refresh command interval at the **standard 64 ms** retention
    /// budget (7.8 µs). Scaled by the refresh policy for other intervals.
    pub trefi_ns: f64,
    /// Refresh cycle time for an all-bank refresh command.
    pub trfc_ns: f64,
}

impl TimingParams {
    /// DDR3-1600 parameters consistent with the paper's appendix arithmetic
    /// (see module docs), with `tRFC` for an 8 Gb chip.
    #[must_use]
    pub fn ddr3_1600() -> Self {
        TimingParams {
            tck_ns: DDR3_1600_TCK_NS,
            trcd_ns: 11.0,
            trp_ns: 11.0,
            tras_ns: 28.0,
            tccd_ns: 4.0,
            tcl_ns: 13.75,
            twr_ns: 15.0,
            trtp_ns: 7.5,
            twtr_ns: 7.5,
            trrd_ns: 6.0,
            tfaw_ns: 30.0,
            trefi_ns: 7800.0,
            trfc_ns: ChipDensity::Gb8.trfc_ns(),
        }
    }

    /// DDR3-1600 parameters with `tRFC` scaled for the given chip density
    /// (paper Table 2: 350/530/890 ns for 8/16/32 Gb).
    #[must_use]
    pub fn ddr3_1600_density(density: ChipDensity) -> Self {
        TimingParams {
            trfc_ns: density.trfc_ns(),
            ..TimingParams::ddr3_1600()
        }
    }

    /// Latency of streaming one entire row (of `blocks` cache blocks) through
    /// the memory controller: `tRCD + blocks·tCCD + tRP`.
    ///
    /// For an 8 KB row (128 blocks) this is 534 ns — half the paper's
    /// Read-and-Compare cost.
    #[must_use]
    pub fn row_stream_ns(&self, blocks: u32) -> f64 {
        self.trcd_ns + f64::from(blocks) * self.tccd_ns + self.trp_ns
    }

    /// Latency of one per-row refresh operation: `tRAS + tRP` (39 ns in the
    /// paper's appendix).
    #[must_use]
    pub fn refresh_op_ns(&self) -> f64 {
        self.tras_ns + self.trp_ns
    }

    /// Converts nanoseconds to (ceiling) controller cycles.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.tck_ns).ceil() as u64
    }

    /// `tRCD` in cycles.
    #[must_use]
    pub fn trcd_cycles(&self) -> u64 {
        self.ns_to_cycles(self.trcd_ns)
    }
    /// `tRP` in cycles.
    #[must_use]
    pub fn trp_cycles(&self) -> u64 {
        self.ns_to_cycles(self.trp_ns)
    }
    /// `tRAS` in cycles.
    #[must_use]
    pub fn tras_cycles(&self) -> u64 {
        self.ns_to_cycles(self.tras_ns)
    }
    /// `tCCD` in cycles.
    #[must_use]
    pub fn tccd_cycles(&self) -> u64 {
        self.ns_to_cycles(self.tccd_ns)
    }
    /// `tCL` in cycles.
    #[must_use]
    pub fn tcl_cycles(&self) -> u64 {
        self.ns_to_cycles(self.tcl_ns)
    }
    /// `tWR` in cycles.
    #[must_use]
    pub fn twr_cycles(&self) -> u64 {
        self.ns_to_cycles(self.twr_ns)
    }
    /// `tRTP` in cycles.
    #[must_use]
    pub fn trtp_cycles(&self) -> u64 {
        self.ns_to_cycles(self.trtp_ns)
    }
    /// `tWTR` in cycles.
    #[must_use]
    pub fn twtr_cycles(&self) -> u64 {
        self.ns_to_cycles(self.twtr_ns)
    }
    /// `tRRD` in cycles.
    #[must_use]
    pub fn trrd_cycles(&self) -> u64 {
        self.ns_to_cycles(self.trrd_ns)
    }
    /// `tFAW` in cycles.
    #[must_use]
    pub fn tfaw_cycles(&self) -> u64 {
        self.ns_to_cycles(self.tfaw_ns)
    }
    /// `tRFC` in cycles.
    #[must_use]
    pub fn trfc_cycles(&self) -> u64 {
        self.ns_to_cycles(self.trfc_ns)
    }

    /// Refresh command interval in cycles for a per-row refresh interval of
    /// `refresh_interval_ms` (8192 REF commands must land within it, as in
    /// DDR3: `tREFI = interval / 8192`).
    ///
    /// The paper's Table 2 lists `tREFI` = 1.95 µs for the 16 ms baseline and
    /// 7.8 µs for the 64 ms LO-REF state; both follow from this formula.
    #[must_use]
    pub fn trefi_cycles_for_interval(&self, refresh_interval_ms: f64) -> u64 {
        let trefi_ns = refresh_interval_ms * 1.0e6 / 8192.0;
        self.ns_to_cycles(trefi_ns)
    }

    /// Validates basic sanity (positive values, `tRAS ≥ tRCD`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("tCK", self.tck_ns),
            ("tRCD", self.trcd_ns),
            ("tRP", self.trp_ns),
            ("tRAS", self.tras_ns),
            ("tCCD", self.tccd_ns),
            ("tCL", self.tcl_ns),
            ("tRFC", self.trfc_ns),
            ("tREFI", self.trefi_ns),
        ];
        for (name, v) in fields {
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !v.is_finite() {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.tras_ns < self.trcd_ns {
            return Err(format!(
                "tRAS ({}) must be at least tRCD ({})",
                self.tras_ns, self.trcd_ns
            ));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_row_stream_cost() {
        let t = TimingParams::ddr3_1600();
        // tRCD + 128*tCCD + tRP = 11 + 512 + 11 = 534 ns.
        assert_eq!(t.row_stream_ns(128), 534.0);
        // Read-and-Compare = 2 row streams = 1068 ns (paper appendix).
        assert_eq!(2.0 * t.row_stream_ns(128), 1068.0);
        // Copy-and-Compare = 3 row streams = 1602 ns (paper appendix).
        assert_eq!(3.0 * t.row_stream_ns(128), 1602.0);
    }

    #[test]
    fn appendix_refresh_op_cost() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.refresh_op_ns(), 39.0, "tRAS + tRP = 39 ns");
    }

    #[test]
    fn trefi_matches_table2() {
        let t = TimingParams::ddr3_1600();
        // 16 ms baseline: 1.95 us => 1560 cycles at 1.25 ns.
        assert_eq!(t.trefi_cycles_for_interval(16.0), 1563); // ceil(1953.125/1.25)
                                                             // 64 ms LO-REF: 7.8125 us => 6250 cycles.
        assert_eq!(t.trefi_cycles_for_interval(64.0), 6250);
    }

    #[test]
    fn density_scaling() {
        assert_eq!(
            TimingParams::ddr3_1600_density(ChipDensity::Gb32).trfc_ns,
            890.0
        );
        assert_eq!(
            TimingParams::ddr3_1600_density(ChipDensity::Gb32).trfc_cycles(),
            712
        );
        assert_eq!(TimingParams::ddr3_1600().trfc_cycles(), 280);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.ns_to_cycles(1.25), 1);
        assert_eq!(t.ns_to_cycles(1.26), 2);
        assert_eq!(t.ns_to_cycles(0.0), 0);
    }

    #[test]
    fn validate_accepts_preset_rejects_nonsense() {
        assert!(TimingParams::ddr3_1600().validate().is_ok());
        let mut t = TimingParams::ddr3_1600();
        t.trcd_ns = -1.0;
        assert!(t.validate().is_err());
        let mut t2 = TimingParams::ddr3_1600();
        t2.tras_ns = 1.0;
        assert!(t2.validate().is_err());
    }
}
