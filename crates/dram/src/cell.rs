//! Bit-exact row content storage and the true-/anti-cell charge mapping.
//!
//! Data-dependent failures are a function of *charge*, not of logical bit
//! values: an aggressor cell disturbs its victim when their stored charges
//! differ. Real DRAM complicates the logical→charge mapping with *true cells*
//! (logical `1` = charged) and *anti cells* (logical `0` = charged), laid out
//! differently by every vendor (the paper cites this as one reason
//! system-level detection is hard). [`TrueAntiLayout`] models that mapping;
//! [`RowContent`] stores the logical bits.

/// Logical content of one DRAM row, stored as 64-bit words.
///
/// Bit `i` of the row is bit `i % 64` of word `i / 64`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowContent {
    words: Vec<u64>,
}

impl RowContent {
    /// An all-zero row of `words` 64-bit words.
    #[must_use]
    pub fn zeroed(words: usize) -> Self {
        RowContent {
            words: vec![0; words],
        }
    }

    /// An all-one row of `words` 64-bit words.
    #[must_use]
    pub fn ones(words: usize) -> Self {
        RowContent {
            words: vec![u64::MAX; words],
        }
    }

    /// Wraps existing word storage.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Self {
        RowContent { words }
    }

    /// Builds a row by evaluating `f(bit_index)` for every bit.
    #[must_use]
    pub fn from_fn(words: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut row = RowContent::zeroed(words);
        for i in 0..row.bits() {
            if f(i) {
                row.set_bit(i, true);
            }
        }
        row
    }

    /// Number of 64-bit words.
    #[must_use]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Number of bits.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[must_use]
    pub fn bit(&self, bit: u64) -> bool {
        let w = self.words[(bit / 64) as usize];
        (w >> (bit % 64)) & 1 == 1
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn set_bit(&mut self, bit: u64, value: bool) {
        let w = &mut self.words[(bit / 64) as usize];
        if value {
            *w |= 1 << (bit % 64);
        } else {
            *w &= !(1 << (bit % 64));
        }
    }

    /// Flips one bit, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        let w = &mut self.words[(bit / 64) as usize];
        *w ^= 1 << (bit % 64);
        (*w >> (bit % 64)) & 1 == 1
    }

    /// Borrowed view of the word storage.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the word storage.
    #[must_use]
    pub fn as_mut_words(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Consumes the row, returning the word storage.
    #[must_use]
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Bit positions at which `self` and `other` differ — the "failing cells"
    /// a read-back comparison discovers.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn diff_bits(&self, other: &RowContent) -> Vec<u64> {
        assert_eq!(self.words.len(), other.words.len(), "row length mismatch");
        let mut out = Vec::new();
        for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let tz = x.trailing_zeros() as u64;
                out.push(wi as u64 * 64 + tz);
                x &= x - 1;
            }
        }
        out
    }

    /// Number of differing bits (popcount of the XOR), without allocating.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &RowContent) -> u64 {
        assert_eq!(self.words.len(), other.words.len(), "row length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a ^ b).count_ones()))
            .sum()
    }

    /// Number of set bits.
    #[must_use]
    pub fn popcount(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Returns a bitwise-inverted copy.
    #[must_use]
    pub fn inverted(&self) -> RowContent {
        RowContent {
            words: self.words.iter().map(|w| !w).collect(),
        }
    }
}

/// Polarity of a cell: whether logical `1` or logical `0` is the charged
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellPolarity {
    /// Logical `1` is stored as a charged capacitor.
    True,
    /// Logical `0` is stored as a charged capacitor.
    Anti,
}

impl CellPolarity {
    /// The charge state (`true` = charged) of a cell with this polarity
    /// holding `logical` data.
    #[must_use]
    pub fn charge(self, logical: bool) -> bool {
        match self {
            CellPolarity::True => logical,
            CellPolarity::Anti => !logical,
        }
    }
}

/// Vendor-specific layout of true and anti cells across a bank's rows.
///
/// Liu et al. (ISCA 2013), cited by the paper, observed half-and-half and
/// row-interleaved layouts in real chips; both are modelled, plus the trivial
/// all-true layout for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrueAntiLayout {
    /// Every cell is a true cell.
    AllTrue,
    /// Even internal rows are true cells, odd internal rows anti cells.
    AlternateRows,
    /// The lower half of the bank is true cells, the upper half anti cells.
    HalfAndHalf {
        /// Number of rows per bank (needed to find the midpoint).
        rows_per_bank: u32,
    },
}

impl TrueAntiLayout {
    /// Polarity of cells in internal row `row`.
    #[must_use]
    pub fn polarity(self, row: u32) -> CellPolarity {
        match self {
            TrueAntiLayout::AllTrue => CellPolarity::True,
            TrueAntiLayout::AlternateRows => {
                if row.is_multiple_of(2) {
                    CellPolarity::True
                } else {
                    CellPolarity::Anti
                }
            }
            TrueAntiLayout::HalfAndHalf { rows_per_bank } => {
                if row < rows_per_bank / 2 {
                    CellPolarity::True
                } else {
                    CellPolarity::Anti
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_set_get_flip() {
        let mut r = RowContent::zeroed(2);
        assert_eq!(r.bits(), 128);
        assert!(!r.bit(70));
        r.set_bit(70, true);
        assert!(r.bit(70));
        assert_eq!(r.popcount(), 1);
        assert!(!r.flip_bit(70));
        assert_eq!(r.popcount(), 0);
    }

    #[test]
    fn diff_bits_finds_exact_positions() {
        let mut a = RowContent::zeroed(4);
        let b = RowContent::zeroed(4);
        a.set_bit(0, true);
        a.set_bit(63, true);
        a.set_bit(64, true);
        a.set_bit(255, true);
        assert_eq!(a.diff_bits(&b), vec![0, 63, 64, 255]);
        assert_eq!(a.hamming_distance(&b), 4);
    }

    #[test]
    fn inverted_is_involution() {
        let r = RowContent::from_words(vec![0xDEAD_BEEF, 0, u64::MAX]);
        assert_eq!(r.inverted().inverted(), r);
        assert_eq!(r.hamming_distance(&r.inverted()), r.bits());
    }

    #[test]
    fn from_fn_builds_checkerboard() {
        let r = RowContent::from_fn(1, |i| i % 2 == 0);
        assert_eq!(r.as_words()[0], 0x5555_5555_5555_5555);
    }

    #[test]
    fn ones_and_zeroed() {
        assert_eq!(RowContent::ones(3).popcount(), 192);
        assert_eq!(RowContent::zeroed(3).popcount(), 0);
    }

    #[test]
    fn polarity_charge_mapping() {
        assert!(CellPolarity::True.charge(true));
        assert!(!CellPolarity::True.charge(false));
        assert!(!CellPolarity::Anti.charge(true));
        assert!(CellPolarity::Anti.charge(false));
    }

    #[test]
    fn layouts() {
        assert_eq!(TrueAntiLayout::AllTrue.polarity(7), CellPolarity::True);
        assert_eq!(
            TrueAntiLayout::AlternateRows.polarity(0),
            CellPolarity::True
        );
        assert_eq!(
            TrueAntiLayout::AlternateRows.polarity(1),
            CellPolarity::Anti
        );
        let half = TrueAntiLayout::HalfAndHalf { rows_per_bank: 100 };
        assert_eq!(half.polarity(49), CellPolarity::True);
        assert_eq!(half.polarity(50), CellPolarity::Anti);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn diff_requires_equal_len() {
        let _ = RowContent::zeroed(1).diff_bits(&RowContent::zeroed(2));
    }

    /// Seeded property loop: the explicit diff-bit list always agrees with
    /// the popcount-based Hamming distance.
    #[test]
    fn prop_diff_matches_hamming() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0xCE11_0001);
        for _ in 0..256 {
            let a: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
            let b: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
            let ra = RowContent::from_words(a);
            let rb = RowContent::from_words(b);
            assert_eq!(ra.diff_bits(&rb).len() as u64, ra.hamming_distance(&rb));
        }
    }

    /// Seeded property loop: bits set (possibly with duplicates) read back
    /// set, and the popcount equals the number of distinct positions.
    #[test]
    fn prop_set_then_get() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0xCE11_0002);
        for _ in 0..256 {
            let n = rng.gen_range(0usize..32);
            let bits: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..256)).collect();
            let mut r = RowContent::zeroed(4);
            for &b in &bits {
                r.set_bit(b, true);
            }
            for &b in &bits {
                assert!(r.bit(b));
            }
            let unique: std::collections::HashSet<_> = bits.iter().collect();
            assert_eq!(r.popcount() as usize, unique.len());
        }
    }
}
