//! DRAM organization: channels, ranks, chips, banks, rows, and columns.
//!
//! Mirrors Section 2 / Figure 1 of the paper: a module is organized into
//! ranks of chips, each chip into banks, each bank into a 2-D array of cells
//! accessed a full row at a time. The quantities that matter to MEMCON are
//! the number of rows (refresh targets), the row size (8 KB — also the page
//! granularity PRIL tracks), and the chip density (which sets `tRFC`).

/// DRAM chip density. Determines the refresh-cycle time `tRFC` used by the
/// performance simulator (paper Table 2 scales refresh cost with density).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChipDensity {
    /// 8 Gb per chip — `tRFC` = 350 ns (paper baseline).
    Gb8,
    /// 16 Gb per chip — `tRFC` = 530 ns.
    Gb16,
    /// 32 Gb per chip — `tRFC` = 890 ns.
    Gb32,
}

impl ChipDensity {
    /// All densities evaluated in the paper, in ascending order.
    pub const ALL: [ChipDensity; 3] = [ChipDensity::Gb8, ChipDensity::Gb16, ChipDensity::Gb32];

    /// Refresh-cycle time in nanoseconds for an all-bank refresh command at
    /// this density (paper Table 2).
    #[must_use]
    pub fn trfc_ns(self) -> f64 {
        match self {
            ChipDensity::Gb8 => 350.0,
            ChipDensity::Gb16 => 530.0,
            ChipDensity::Gb32 => 890.0,
        }
    }

    /// Density in gigabits per chip.
    #[must_use]
    pub fn gigabits(self) -> u64 {
        match self {
            ChipDensity::Gb8 => 8,
            ChipDensity::Gb16 => 16,
            ChipDensity::Gb32 => 32,
        }
    }

    /// Human-readable label used in experiment output (e.g. `"8Gb"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChipDensity::Gb8 => "8Gb",
            ChipDensity::Gb16 => "16Gb",
            ChipDensity::Gb32 => "32Gb",
        }
    }
}

impl std::fmt::Display for ChipDensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Geometry of one DRAM module (rank × chip × bank × row × column).
///
/// The unit of content storage in this crate is the *row*: `row_bytes` bytes
/// (8 KB by default, matching both the paper's row size and its page
/// granularity). Columns are counted in 64-byte cache blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of ranks on the module.
    pub ranks: u8,
    /// Number of chips per rank (data width contributors; content is modelled
    /// at module granularity so chips matter only for capacity bookkeeping).
    pub chips_per_rank: u8,
    /// Number of banks per rank.
    pub banks: u8,
    /// Number of rows per bank.
    pub rows_per_bank: u32,
    /// Row (and page) size in bytes.
    pub row_bytes: u32,
    /// Cache-block size in bytes (the column access granularity).
    pub block_bytes: u32,
    /// Chip density (sets `tRFC`).
    pub density: ChipDensity,
}

impl DramGeometry {
    /// The 2 GB module used for the paper's FPGA chip tests and the
    /// Copy-and-Compare storage-overhead arithmetic: 8 banks × 32768 rows ×
    /// 8 KB rows (appendix: "a 2 GB module consists of 32768 rows per bank").
    #[must_use]
    pub fn module_2gb() -> Self {
        DramGeometry {
            ranks: 1,
            chips_per_rank: 8,
            banks: 8,
            rows_per_bank: 32_768,
            row_bytes: 8192,
            block_bytes: 64,
            density: ChipDensity::Gb8,
        }
    }

    /// The 8 GB DIMM of the performance evaluation (paper Table 2), at a
    /// given chip density.
    #[must_use]
    pub fn dimm_8gb(density: ChipDensity) -> Self {
        DramGeometry {
            ranks: 1,
            chips_per_rank: 8,
            banks: 8,
            rows_per_bank: 131_072,
            row_bytes: 8192,
            block_bytes: 64,
            density,
        }
    }

    /// A deliberately tiny geometry for unit tests and property tests where
    /// exhaustive iteration over all cells must stay fast.
    #[must_use]
    pub fn tiny() -> Self {
        DramGeometry {
            ranks: 1,
            chips_per_rank: 1,
            banks: 2,
            rows_per_bank: 64,
            row_bytes: 256,
            block_bytes: 64,
            density: ChipDensity::Gb8,
        }
    }

    /// Total number of rows across all banks and ranks.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        u64::from(self.ranks) * u64::from(self.banks) * u64::from(self.rows_per_bank)
    }

    /// Total module capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * u64::from(self.row_bytes)
    }

    /// Number of cache blocks (columns) per row.
    #[must_use]
    pub fn blocks_per_row(&self) -> u32 {
        self.row_bytes / self.block_bytes
    }

    /// Number of 64-bit words per row (the content storage granularity).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.row_bytes as usize / 8
    }

    /// Number of bits per row.
    #[must_use]
    pub fn bits_per_row(&self) -> u64 {
        u64::from(self.row_bytes) * 8
    }

    /// Fraction of capacity consumed by reserving `reserved_rows_per_bank`
    /// rows in every bank (the Copy-and-Compare staging region).
    ///
    /// The paper's appendix computes 512 reserved rows per bank on the 2 GB
    /// module as `4096 / 262144 = 1.56 %`.
    #[must_use]
    pub fn reserved_fraction(&self, reserved_rows_per_bank: u32) -> f64 {
        let reserved =
            u64::from(self.ranks) * u64::from(self.banks) * u64::from(reserved_rows_per_bank);
        reserved as f64 / self.total_rows() as f64
    }

    /// Validates internal consistency (non-zero sizes, block divides row).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks == 0 || self.banks == 0 || self.rows_per_bank == 0 {
            return Err("geometry must have at least one rank, bank, and row".into());
        }
        if self.row_bytes == 0 || self.block_bytes == 0 {
            return Err("row and block sizes must be non-zero".into());
        }
        if !self.row_bytes.is_multiple_of(self.block_bytes) {
            return Err(format!(
                "block size {} must divide row size {}",
                self.block_bytes, self.row_bytes
            ));
        }
        if !self.row_bytes.is_multiple_of(8) {
            return Err("row size must be a multiple of 8 bytes".into());
        }
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::module_2gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_2gb_matches_paper_appendix() {
        let g = DramGeometry::module_2gb();
        assert_eq!(g.total_rows(), 262_144, "8 banks x 32768 rows");
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        assert_eq!(g.blocks_per_row(), 128, "8K row / 64B blocks");
        // Appendix: 512 reserved rows/bank => 1.56% of capacity.
        let frac = g.reserved_fraction(512);
        assert!((frac - 0.015625).abs() < 1e-12, "got {frac}");
    }

    #[test]
    fn dimm_8gb_capacity() {
        let g = DramGeometry::dimm_8gb(ChipDensity::Gb8);
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn density_trfc_values_match_table2() {
        assert_eq!(ChipDensity::Gb8.trfc_ns(), 350.0);
        assert_eq!(ChipDensity::Gb16.trfc_ns(), 530.0);
        assert_eq!(ChipDensity::Gb32.trfc_ns(), 890.0);
    }

    #[test]
    fn density_ordering_and_labels() {
        assert!(ChipDensity::Gb8 < ChipDensity::Gb16);
        assert!(ChipDensity::Gb16 < ChipDensity::Gb32);
        assert_eq!(ChipDensity::Gb8.to_string(), "8Gb");
        assert_eq!(ChipDensity::Gb32.gigabits(), 32);
    }

    #[test]
    fn validate_accepts_presets() {
        for g in [
            DramGeometry::module_2gb(),
            DramGeometry::dimm_8gb(ChipDensity::Gb16),
            DramGeometry::tiny(),
        ] {
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn validate_rejects_bad_block_size() {
        let mut g = DramGeometry::tiny();
        g.block_bytes = 48;
        assert!(g.validate().is_err());
        g.block_bytes = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn words_per_row() {
        assert_eq!(DramGeometry::module_2gb().words_per_row(), 1024);
        assert_eq!(DramGeometry::tiny().words_per_row(), 32);
    }
}
