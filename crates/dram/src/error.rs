//! Error types for the DRAM substrate.

use std::error::Error;
use std::fmt;

use crate::address::RowAddr;
use crate::command::DramCommand;

/// Errors produced by DRAM device operations.
///
/// Every fallible public function in this crate returns this type, so callers
/// can match on the precise failure instead of parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A row coordinate was outside the device geometry.
    RowOutOfRange {
        /// The offending row address.
        row: RowAddr,
        /// Number of rows per bank in this device.
        rows_per_bank: u32,
    },
    /// A bank index was outside the device geometry.
    BankOutOfRange {
        /// The offending bank index.
        bank: u8,
        /// Number of banks in this device.
        banks: u8,
    },
    /// A column (cache-block) index was outside the row.
    ColumnOutOfRange {
        /// The offending column index.
        column: u32,
        /// Number of cache blocks per row.
        columns: u32,
    },
    /// A command was issued that the bank state machine cannot accept in its
    /// current state (e.g. `RD` to a precharged bank).
    IllegalCommand {
        /// The rejected command.
        command: DramCommand,
        /// Human-readable state description at the time of rejection.
        state: &'static str,
    },
    /// A command was issued before the relevant timing constraint elapsed.
    TimingViolation {
        /// The rejected command.
        command: DramCommand,
        /// Name of the violated parameter (e.g. `"tRCD"`).
        parameter: &'static str,
        /// Earliest cycle at which the command would have been legal.
        ready_at: u64,
        /// Cycle at which the command was issued.
        issued_at: u64,
    },
    /// Row content of unexpected length was supplied to a write.
    ContentLengthMismatch {
        /// Expected length in 64-bit words.
        expected: usize,
        /// Supplied length in 64-bit words.
        actual: usize,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows_per_bank } => write!(
                f,
                "row {row} out of range (device has {rows_per_bank} rows per bank)"
            ),
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks} banks)")
            }
            DramError::ColumnOutOfRange { column, columns } => {
                write!(f, "column {column} out of range (row has {columns} blocks)")
            }
            DramError::IllegalCommand { command, state } => {
                write!(f, "command {command:?} illegal in bank state {state}")
            }
            DramError::TimingViolation {
                command,
                parameter,
                ready_at,
                issued_at,
            } => write!(
                f,
                "command {command:?} violates {parameter}: ready at cycle {ready_at}, issued at {issued_at}"
            ),
            DramError::ContentLengthMismatch { expected, actual } => write!(
                f,
                "row content length mismatch: expected {expected} words, got {actual}"
            ),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::RowAddr;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            DramError::RowOutOfRange {
                row: RowAddr::new(0, 0, 99_999),
                rows_per_bank: 32_768,
            },
            DramError::BankOutOfRange { bank: 9, banks: 8 },
            DramError::ColumnOutOfRange {
                column: 130,
                columns: 128,
            },
            DramError::IllegalCommand {
                command: DramCommand::Read,
                state: "Idle",
            },
            DramError::TimingViolation {
                command: DramCommand::Activate,
                parameter: "tRP",
                ready_at: 100,
                issued_at: 90,
            },
            DramError::ContentLengthMismatch {
                expected: 1024,
                actual: 12,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {s}"
            );
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DramError>();
    }
}
