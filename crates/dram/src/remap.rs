//! Redundant-column remapping of manufacturing-time faults (paper Fig. 2b).
//!
//! Vendors repair faulty columns found during manufacturing test by remapping
//! them to spare columns at the edge of the cell array. A remapped cell's
//! *physical* neighbours are therefore in the redundant region — different
//! for every individual chip — which is the second design issue that defeats
//! system-level neighbour-pattern testing (Section 2 of the paper).
//!
//! [`RemapTable`] models a bank's bit-granularity column repair: the physical
//! bitline space is `bits_per_row + redundant` positions wide; each faulty
//! bitline is dead and its logical column lives at a spare position instead.

use std::collections::BTreeMap;

use memutil::rng::SeedableRng;
use memutil::rng::SliceRandom;
use memutil::rng::SmallRng;

/// Column-repair map for one bank.
///
/// Maps *internal* (post-scramble) bit positions to *physical* bitline
/// positions. Non-faulty bitlines map to themselves; faulty ones map into the
/// redundant region `[bits_per_row, bits_per_row + redundant)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTable {
    bits_per_row: u64,
    redundant: u64,
    /// internal bit -> physical position in the redundant region.
    remapped: BTreeMap<u64, u64>,
    /// physical redundant position -> internal bit (inverse of `remapped`).
    reverse: BTreeMap<u64, u64>,
}

impl RemapTable {
    /// A table with no repairs (fresh die with zero faults).
    #[must_use]
    pub fn perfect(bits_per_row: u64, redundant: u64) -> Self {
        RemapTable {
            bits_per_row,
            redundant,
            remapped: BTreeMap::new(),
            reverse: BTreeMap::new(),
        }
    }

    /// Generates a per-chip repair map: `faults` distinct bitlines chosen by
    /// `seed` are remapped to the first `faults` spare columns.
    ///
    /// # Panics
    ///
    /// Panics if `faults > redundant` (an unrepairable die would have been
    /// discarded at manufacturing) or `faults > bits_per_row`.
    #[must_use]
    pub fn from_seed(seed: u64, bits_per_row: u64, redundant: u64, faults: u64) -> Self {
        assert!(
            faults <= redundant,
            "cannot repair {faults} faults with {redundant} spare columns"
        );
        assert!(faults <= bits_per_row, "more faults than bitlines");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut lines: Vec<u64> = (0..bits_per_row).collect();
        lines.shuffle(&mut rng);
        let mut remapped = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        for (i, &line) in lines.iter().take(faults as usize).enumerate() {
            let phys = bits_per_row + i as u64;
            remapped.insert(line, phys);
            reverse.insert(phys, line);
        }
        RemapTable {
            bits_per_row,
            redundant,
            remapped,
            reverse,
        }
    }

    /// Number of logical bitlines per row.
    #[must_use]
    pub fn bits_per_row(&self) -> u64 {
        self.bits_per_row
    }

    /// Width of the physical bitline space including spares.
    #[must_use]
    pub fn physical_width(&self) -> u64 {
        self.bits_per_row + self.redundant
    }

    /// Number of repaired (remapped) bitlines.
    #[must_use]
    pub fn repair_count(&self) -> usize {
        self.remapped.len()
    }

    /// Whether internal bitline `bit` has been remapped to a spare.
    #[must_use]
    pub fn is_remapped(&self, bit: u64) -> bool {
        self.remapped.contains_key(&bit)
    }

    /// Physical bitline position of internal bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the row.
    #[must_use]
    pub fn physical_of(&self, bit: u64) -> u64 {
        assert!(bit < self.bits_per_row, "bit {bit} out of row");
        self.remapped.get(&bit).copied().unwrap_or(bit)
    }

    /// Internal bit stored at physical position `pos`, or `None` if the
    /// position holds no live cell (a dead faulty column, or an unused
    /// spare).
    #[must_use]
    pub fn internal_at(&self, pos: u64) -> Option<u64> {
        if pos < self.bits_per_row {
            if self.remapped.contains_key(&pos) {
                None // original column is faulty and disconnected
            } else {
                Some(pos)
            }
        } else {
            self.reverse.get(&pos).copied()
        }
    }

    /// The live physical neighbours (left, right) of the cell at physical
    /// position `pos`, as internal bit indices. Edge cells have one
    /// neighbour; neighbours that are dead columns are skipped over to the
    /// next live position, matching how adjacent live bitlines couple across
    /// a disconnected line only weakly (we model the coupling as reaching the
    /// nearest live line).
    #[must_use]
    pub fn live_neighbors(&self, pos: u64) -> (Option<u64>, Option<u64>) {
        let left = (0..pos).rev().find_map(|p| self.internal_at(p));
        let right = ((pos + 1)..self.physical_width()).find_map(|p| self.internal_at(p));
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_table_is_identity() {
        let t = RemapTable::perfect(128, 8);
        for b in 0..128 {
            assert!(!t.is_remapped(b));
            assert_eq!(t.physical_of(b), b);
            assert_eq!(t.internal_at(b), Some(b));
        }
        assert_eq!(t.internal_at(130), None, "unused spare holds no cell");
    }

    #[test]
    fn paper_example_neighbors_move_to_spares() {
        // Fig. 2b: columns 1, 4, 6 of an 8-column array are remapped; the
        // neighbours of column 1's cell are then columns 4 and 7 — i.e. its
        // physical neighbours in the redundant region.
        let mut t = RemapTable::perfect(8, 3);
        for (i, line) in [1u64, 4, 6].into_iter().enumerate() {
            let phys = 8 + i as u64;
            t.remapped.insert(line, phys);
            t.reverse.insert(phys, line);
        }
        assert_eq!(t.physical_of(1), 8);
        assert_eq!(t.physical_of(4), 9);
        assert_eq!(t.physical_of(6), 10);
        // Live neighbours of the repaired column 1 (at physical 8): physical
        // 7 on the left (internal 7) and physical 9 on the right (internal 4).
        assert_eq!(t.live_neighbors(8), (Some(7), Some(4)));
    }

    #[test]
    fn from_seed_respects_fault_count() {
        let t = RemapTable::from_seed(42, 256, 16, 10);
        assert_eq!(t.repair_count(), 10);
        let remapped: Vec<u64> = (0..256).filter(|&b| t.is_remapped(b)).collect();
        assert_eq!(remapped.len(), 10);
        for b in remapped {
            let p = t.physical_of(b);
            assert!((256..272).contains(&p));
            assert_eq!(t.internal_at(p), Some(b));
            assert_eq!(t.internal_at(b), None, "faulty original is dead");
        }
    }

    #[test]
    #[should_panic(expected = "cannot repair")]
    fn too_many_faults_panics() {
        let _ = RemapTable::from_seed(0, 64, 2, 3);
    }

    #[test]
    fn live_neighbors_skip_dead_columns() {
        let t = RemapTable::from_seed(1, 64, 8, 5);
        // For any live physical position, neighbours must be live internal
        // bits distinct from the cell itself.
        for pos in 0..t.physical_width() {
            let Some(me) = t.internal_at(pos) else {
                continue;
            };
            let (l, r) = t.live_neighbors(pos);
            for n in [l, r].into_iter().flatten() {
                assert_ne!(n, me);
                assert!(n < 64);
            }
        }
    }

    /// Seeded property loop: the repaired physical mapping never collides.
    #[test]
    fn prop_physical_mapping_is_injective() {
        use memutil::rng::Rng;
        let mut rng = SmallRng::seed_from_u64(0x2E3A_0001);
        for _ in 0..128 {
            let seed: u64 = rng.gen();
            let faults = rng.gen_range(0u64..16);
            let t = RemapTable::from_seed(seed, 128, 16, faults);
            let mut seen = std::collections::HashSet::new();
            for b in 0..128u64 {
                assert!(
                    seen.insert(t.physical_of(b)),
                    "collision at bit {b} (seed={seed} faults={faults})"
                );
            }
        }
    }

    /// Seeded property loop: `internal_at` inverts `physical_of` on every
    /// live bitline.
    #[test]
    fn prop_internal_at_inverts_physical_of() {
        use memutil::rng::Rng;
        let mut rng = SmallRng::seed_from_u64(0x2E3A_0002);
        for _ in 0..128 {
            let seed: u64 = rng.gen();
            let faults = rng.gen_range(0u64..16);
            let t = RemapTable::from_seed(seed, 128, 16, faults);
            for b in 0..128u64 {
                assert_eq!(t.internal_at(t.physical_of(b)), Some(b));
            }
        }
    }
}
