//! DDR command vocabulary.
//!
//! A small, closed set of commands that the bank state machine
//! ([`crate::bank`]) and the cycle simulator's controller understand. The
//! vocabulary follows DDR3 (paper Table 2): per-bank activate / read / write
//! / precharge plus the rank-level all-bank refresh that blocks the rank for
//! `tRFC`.

/// A DDR command as issued by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open (activate) a row into the bank's sense amplifiers.
    Activate,
    /// Read one cache block from the open row.
    Read,
    /// Read one cache block and auto-precharge afterwards.
    ReadAp,
    /// Write one cache block into the open row.
    Write,
    /// Write one cache block and auto-precharge afterwards.
    WriteAp,
    /// Close (precharge) the open row.
    Precharge,
    /// All-bank refresh; occupies the rank for `tRFC`.
    Refresh,
}

impl DramCommand {
    /// Whether the command transfers data on the bus.
    #[must_use]
    pub fn is_column(self) -> bool {
        matches!(
            self,
            DramCommand::Read | DramCommand::ReadAp | DramCommand::Write | DramCommand::WriteAp
        )
    }

    /// Whether the command is a read-family column command.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, DramCommand::Read | DramCommand::ReadAp)
    }

    /// Whether the command is a write-family column command.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, DramCommand::Write | DramCommand::WriteAp)
    }

    /// Whether the command auto-precharges its bank.
    #[must_use]
    pub fn auto_precharges(self) -> bool {
        matches!(self, DramCommand::ReadAp | DramCommand::WriteAp)
    }

    /// Short mnemonic (e.g. `"ACT"`), as used in trace dumps.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            DramCommand::Activate => "ACT",
            DramCommand::Read => "RD",
            DramCommand::ReadAp => "RDA",
            DramCommand::Write => "WR",
            DramCommand::WriteAp => "WRA",
            DramCommand::Precharge => "PRE",
            DramCommand::Refresh => "REF",
        }
    }
}

impl std::fmt::Display for DramCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(DramCommand::Read.is_column());
        assert!(DramCommand::WriteAp.is_column());
        assert!(!DramCommand::Activate.is_column());
        assert!(!DramCommand::Refresh.is_column());
        assert!(DramCommand::Read.is_read());
        assert!(DramCommand::ReadAp.is_read());
        assert!(!DramCommand::Write.is_read());
        assert!(DramCommand::Write.is_write());
        assert!(DramCommand::WriteAp.is_write());
        assert!(!DramCommand::Read.is_write());
        assert!(DramCommand::ReadAp.auto_precharges());
        assert!(!DramCommand::Read.auto_precharges());
    }

    #[test]
    fn mnemonics_unique() {
        let all = [
            DramCommand::Activate,
            DramCommand::Read,
            DramCommand::ReadAp,
            DramCommand::Write,
            DramCommand::WriteAp,
            DramCommand::Precharge,
            DramCommand::Refresh,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            assert!(seen.insert(c.mnemonic()), "duplicate mnemonic {c}");
        }
    }
}
