//! DRAM device substrate for the MEMCON reproduction.
//!
//! This crate models everything about a DRAM module that the MEMCON paper
//! (Khan et al., MICRO 2017) depends on but treats as an opaque substrate:
//!
//! * [`geometry`] — the channel/rank/chip/bank/row/column hierarchy and chip
//!   densities (8/16/32 Gb) with their refresh-cycle times,
//! * [`timing`] — DDR3 timing parameters, including the preset that
//!   reproduces the paper's appendix cost arithmetic exactly,
//! * [`command`] — the DDR command vocabulary used by the cycle simulator,
//! * [`address`] — typed row/column/page coordinates and linear mappings,
//! * [`scramble`] — vendor-internal address scrambling (system addresses do
//!   *not* correspond to physically adjacent cells; paper Fig. 2a),
//! * [`remap`] — redundant-column remapping of manufacturing-time faults
//!   (paper Fig. 2b),
//! * [`cell`] — bit-exact row content storage with true/anti-cell layout,
//! * [`bank`] — a timing-checked bank state machine,
//! * [`module`] — the [`module::DramModule`] façade tying it all together.
//!
//! The crate is deliberately *content-faithful*: a module stores real bits so
//! that the `failure-model` crate can evaluate data-dependent coupling
//! failures against actual neighbouring cell values after scrambling and
//! remapping — the exact property that makes system-level failure detection
//! hard in the paper.
//!
//! # Example
//!
//! ```
//! use dram::geometry::{DramGeometry, ChipDensity};
//! use dram::timing::TimingParams;
//! use dram::module::DramModule;
//!
//! let geometry = DramGeometry::module_2gb();
//! let timing = TimingParams::ddr3_1600();
//! let module = DramModule::new(geometry, timing, 0xC0FFEE);
//! assert_eq!(module.geometry().rows_per_bank, 32_768);
//! assert_eq!(module.timing().refresh_op_ns(), 39.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod bank;
pub mod cell;
pub mod command;
pub mod error;
pub mod geometry;
pub mod module;
pub mod remap;
pub mod scramble;
pub mod timing;

pub use address::{ColumnAddr, PageId, RowAddr, RowId};
pub use bank::{Bank, BankState};
pub use cell::RowContent;
pub use command::DramCommand;
pub use error::DramError;
pub use geometry::{ChipDensity, DramGeometry};
pub use module::DramModule;
pub use timing::TimingParams;
