//! Typed DRAM coordinates and linear row numbering.
//!
//! Two address spaces coexist in this reproduction, mirroring the paper:
//!
//! * the **system address space** — what the memory controller (and MEMCON)
//!   sees: linear [`RowId`]s / [`PageId`]s,
//! * the **internal device space** — the physical position of cells inside a
//!   bank's array, reachable only through the vendor's scrambler
//!   ([`crate::scramble`]) and remap table ([`crate::remap`]).
//!
//! MEMCON never touches the internal space; the failure model does.

use crate::geometry::DramGeometry;

/// A system-visible page identifier. The paper tracks writes at 8 KB page
/// granularity, which coincides with the DRAM row size, so a `PageId` is the
/// unit PRIL predicts on and a [`RowId`] the unit the refresh manager acts
/// on; the two are numerically identical under the default linear mapping.
pub type PageId = u64;

/// A linear row number across the whole module (`rank`, `bank`, `row`
/// flattened in that order).
pub type RowId = u64;

/// A fully-qualified row coordinate inside a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Rank index.
    pub rank: u8,
    /// Bank index within the rank.
    pub bank: u8,
    /// Row index within the bank.
    pub row: u32,
}

impl RowAddr {
    /// Creates a row address. Validity against a concrete geometry is checked
    /// at the point of use (see [`RowAddr::checked`]).
    #[must_use]
    pub fn new(rank: u8, bank: u8, row: u32) -> Self {
        RowAddr { rank, bank, row }
    }

    /// Creates a row address, returning `None` if it falls outside
    /// `geometry`.
    #[must_use]
    pub fn checked(rank: u8, bank: u8, row: u32, geometry: &DramGeometry) -> Option<Self> {
        let addr = RowAddr { rank, bank, row };
        addr.is_valid(geometry).then_some(addr)
    }

    /// Whether this address falls inside `geometry`.
    #[must_use]
    pub fn is_valid(&self, geometry: &DramGeometry) -> bool {
        self.rank < geometry.ranks
            && self.bank < geometry.banks
            && self.row < geometry.rows_per_bank
    }

    /// Flattens to a linear [`RowId`] (rank-major, then bank, then row).
    #[must_use]
    pub fn to_row_id(&self, geometry: &DramGeometry) -> RowId {
        (u64::from(self.rank) * u64::from(geometry.banks) + u64::from(self.bank))
            * u64::from(geometry.rows_per_bank)
            + u64::from(self.row)
    }

    /// Inverse of [`RowAddr::to_row_id`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the geometry (use
    /// [`DramGeometry::total_rows`] to bound it first).
    #[must_use]
    pub fn from_row_id(id: RowId, geometry: &DramGeometry) -> Self {
        assert!(
            id < geometry.total_rows(),
            "row id {id} out of range ({} total rows)",
            geometry.total_rows()
        );
        let rows = u64::from(geometry.rows_per_bank);
        let row = (id % rows) as u32;
        let bank_linear = id / rows;
        let bank = (bank_linear % u64::from(geometry.banks)) as u8;
        let rank = (bank_linear / u64::from(geometry.banks)) as u8;
        RowAddr { rank, bank, row }
    }
}

impl std::fmt::Display for RowAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}b{}#{}", self.rank, self.bank, self.row)
    }
}

/// A column coordinate: the index of a 64-byte cache block within a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnAddr(pub u32);

impl ColumnAddr {
    /// Whether this column exists in rows of `geometry`.
    #[must_use]
    pub fn is_valid(&self, geometry: &DramGeometry) -> bool {
        self.0 < geometry.blocks_per_row()
    }

    /// Byte offset of this block within its row.
    #[must_use]
    pub fn byte_offset(&self, geometry: &DramGeometry) -> u32 {
        self.0 * geometry.block_bytes
    }
}

impl std::fmt::Display for ColumnAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "col{}", self.0)
    }
}

/// Iterates every valid [`RowAddr`] of a geometry in linear [`RowId`] order.
pub fn iter_rows(geometry: &DramGeometry) -> impl Iterator<Item = RowAddr> + '_ {
    let g = *geometry;
    (0..g.total_rows()).map(move |id| RowAddr::from_row_id(id, &g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_roundtrip_exhaustive_tiny() {
        let g = DramGeometry::tiny();
        for id in 0..g.total_rows() {
            let addr = RowAddr::from_row_id(id, &g);
            assert!(addr.is_valid(&g));
            assert_eq!(addr.to_row_id(&g), id);
        }
    }

    #[test]
    fn row_id_is_rank_major() {
        let g = DramGeometry::tiny(); // 1 rank, 2 banks, 64 rows
        assert_eq!(RowAddr::new(0, 0, 0).to_row_id(&g), 0);
        assert_eq!(RowAddr::new(0, 0, 63).to_row_id(&g), 63);
        assert_eq!(RowAddr::new(0, 1, 0).to_row_id(&g), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_row_id_panics_out_of_range() {
        let g = DramGeometry::tiny();
        let _ = RowAddr::from_row_id(g.total_rows(), &g);
    }

    #[test]
    fn checked_constructor() {
        let g = DramGeometry::tiny();
        assert!(RowAddr::checked(0, 0, 0, &g).is_some());
        assert!(RowAddr::checked(0, 2, 0, &g).is_none());
        assert!(RowAddr::checked(1, 0, 0, &g).is_none());
        assert!(RowAddr::checked(0, 0, 64, &g).is_none());
    }

    #[test]
    fn column_validity_and_offset() {
        let g = DramGeometry::module_2gb();
        assert!(ColumnAddr(0).is_valid(&g));
        assert!(ColumnAddr(127).is_valid(&g));
        assert!(!ColumnAddr(128).is_valid(&g));
        assert_eq!(ColumnAddr(3).byte_offset(&g), 192);
    }

    #[test]
    fn iter_rows_covers_all() {
        let g = DramGeometry::tiny();
        let rows: Vec<_> = iter_rows(&g).collect();
        assert_eq!(rows.len() as u64, g.total_rows());
        assert_eq!(rows[0], RowAddr::new(0, 0, 0));
        assert_eq!(*rows.last().unwrap(), RowAddr::new(0, 1, 63));
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowAddr::new(0, 3, 17).to_string(), "r0b3#17");
        assert_eq!(ColumnAddr(5).to_string(), "col5");
    }

    /// Seeded property loop: random valid addresses round-trip through the
    /// linear row id on the full-size 2 GB module geometry.
    #[test]
    fn prop_row_id_roundtrip() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let g = DramGeometry::module_2gb();
        let mut rng = SmallRng::seed_from_u64(0xADD_0001);
        for _ in 0..512 {
            let addr = RowAddr::new(0, rng.gen_range(0u8..8), rng.gen_range(0u32..32_768));
            assert!(addr.is_valid(&g));
            let id = addr.to_row_id(&g);
            assert_eq!(RowAddr::from_row_id(id, &g), addr);
        }
    }

    /// Seeded property loop: distinct row ids decode to distinct addresses
    /// and equal ids to equal addresses.
    #[test]
    fn prop_row_id_is_injective() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let g = DramGeometry::module_2gb();
        let mut rng = SmallRng::seed_from_u64(0xADD_0002);
        for _ in 0..512 {
            let a = rng.gen_range(0u64..262_144);
            let b = rng.gen_range(0u64..262_144);
            let ra = RowAddr::from_row_id(a, &g);
            let rb = RowAddr::from_row_id(b, &g);
            assert_eq!(a == b, ra == rb, "a={a} b={b}");
        }
    }
}
