//! Shared helpers for the Criterion benchmark harness.
//!
//! The benches regenerate scaled-down versions of every paper table/figure
//! (`benches/figures.rs`, `benches/tables.rs`), measure the core data
//! structures (`benches/micro.rs`), and sweep the design choices DESIGN.md
//! calls out for ablation (`benches/ablations.rs`).

#![warn(missing_docs)]

pub mod micro;

use experiments::RunOptions;

/// Bench-sized experiment options: small enough for Criterion's repeated
/// sampling, large enough to exercise every code path.
#[must_use]
pub fn bench_opts() -> RunOptions {
    RunOptions {
        scale: 0.05,
        instructions: 20_000,
        mixes: 2,
        rows_per_bank: 128,
        snapshots: 1,
        seed: 0xBE11C4,
        jobs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_small() {
        let o = bench_opts();
        assert!(o.rows_per_bank <= RunOptions::quick().rows_per_bank);
        assert!(o.instructions <= RunOptions::quick().instructions);
    }
}
