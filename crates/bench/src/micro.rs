//! Micro-benchmarks of the core data structures: PRIL write handling, the
//! chip tester, the cost model, Pareto sampling, the FR-FCFS controller,
//! and the ECC codes.
//!
//! Lives in the library (rather than only under `benches/`) so that both
//! the `cargo bench` harness (`benches/micro.rs`) and the
//! `cargo run -p xtask -- bench baseline` subcommand run the identical
//! suite; the latter writes the medians to `BENCH_baseline.json`.

use memutil::bench::{BatchSize, Criterion, Throughput};
use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use dram::bank::Bank;
use dram::cell::RowContent;
use dram::command::DramCommand;
use dram::geometry::{ChipDensity, DramGeometry};
use dram::module::DramModule;
use dram::timing::TimingParams;
use failure_model::model::CouplingFailureModel;
use failure_model::params::FailureModelParams;
use failure_model::patterns::TestPattern;
use failure_model::tester::ChipTester;
use memcon::cost::{CostModel, TestMode};
use memcon::ecc::{Crc64, Hamming72};
use memcon::pril::Pril;
use memtrace::interval::WriteIntervalModel;
use memtrace::workload::WorkloadProfile;

/// Registers the whole micro suite on `c` (the entry point shared by the
/// bench harness and `xtask bench baseline`).
pub fn register(c: &mut Criterion) {
    bench_pril(c);
    bench_refreshmgr(c);
    bench_tester(c);
    bench_failure_model(c);
    bench_cost_model(c);
    bench_pareto(c);
    bench_trace_generation(c);
    bench_bank_fsm(c);
    bench_ecc(c);
    bench_telemetry(c);
    bench_fleet(c);
    bench_store(c);
}

fn bench_store(c: &mut Criterion) {
    use store::{DurabilityMode, Record, Store};

    const RECORDS: u64 = 10_000;

    let mut g = c.benchmark_group("store");
    g.sample_size(20);
    g.throughput(Throughput::Elements(RECORDS));
    // WAL framing + checksum cost with IO factored out (InMemory mode):
    // what every journaled engine transition pays.
    g.bench_function("wal_append_10k", |b| {
        b.iter_batched(
            || {
                Store::create(std::path::Path::new("bench-wal"), DurabilityMode::InMemory)
                    // memlint: allow(no-unwrap): in-memory stores cannot fail to create
                    .expect("in-memory store")
            },
            |mut s| {
                for i in 0..RECORDS {
                    s.append(&Record::Progress {
                        quantum: i,
                        now_ns: i * 1000,
                    })
                    // memlint: allow(no-unwrap): in-memory appends cannot fail without faults armed
                    .expect("in-memory append");
                }
                std::hint::black_box(s)
            },
            BatchSize::LargeInput,
        )
    });
    // The recovery scan over the same journal: frame parse, CRC verify,
    // and record decode per entry — the startup cost of a crashed store.
    let image = {
        let mut s = Store::create(std::path::Path::new("bench-wal"), DurabilityMode::InMemory)
            // memlint: allow(no-unwrap): in-memory stores cannot fail to create
            .expect("in-memory store");
        for i in 0..RECORDS {
            s.append(&Record::Progress {
                quantum: i,
                now_ns: i * 1000,
            })
            // memlint: allow(no-unwrap): in-memory appends cannot fail without faults armed
            .expect("in-memory append");
        }
        // memlint: allow(no-unwrap): segment 0 exists after the appends above
        s.mem_segment(0).expect("segment image").to_vec()
    };
    g.bench_function("recover_10k_records", |b| {
        b.iter(|| {
            let scan = store::scan_bytes(std::hint::black_box(&image));
            std::hint::black_box((scan.records.len(), scan.valid_len, scan.torn))
        })
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    use fleet::{Fleet, FleetConfig, FleetPlan};

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    // Trace synthesis is the expensive part of expansion and is not what
    // this family measures, so the plan is built once and shared; each
    // iteration instantiates fresh engines (setup, untimed) and is timed
    // advancing all 64 shards one scheduler epoch.
    let plan = FleetPlan::expand(&FleetConfig::small(64, 0xBE7C4), 0);
    g.throughput(Throughput::Elements(64));
    g.bench_function("step_64dimms", |b| {
        b.iter_batched(
            || Fleet::new(&plan),
            |mut fleet| {
                fleet.run_epoch(1);
                std::hint::black_box(fleet.epoch())
            },
            BatchSize::LargeInput,
        )
    });
    // The same epoch fanned out at --jobs 4: byte-identical results; on a
    // multi-core host this is the scaling headline the `xtask fleet bench`
    // gate enforces, on a single core it measures the fan-out overhead.
    g.bench_function("step_64dimms_jobs4", |b| {
        b.iter_batched(
            || Fleet::new(&plan),
            |mut fleet| {
                fleet.run_epoch(4);
                std::hint::black_box(fleet.epoch())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_failure_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_model");
    // One bank of paper-sized (8 KB) rows with random content: the shape of
    // every ChipTester sweep, Fig. 3/4 data point, and TestEngine oracle call.
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 1,
        rows_per_bank: 512,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let mut module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xFA11);
    let words = geometry.words_per_row();
    let mut rng = SmallRng::seed_from_u64(9);
    module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    let model = CouplingFailureModel::default();

    g.throughput(Throughput::Elements(u64::from(geometry.rows_per_bank)));
    g.bench_function("evaluate_module_1bank", |b| {
        b.iter(|| std::hint::black_box(model.evaluate_module_with_jobs(&module, 328.0, 1).len()))
    });

    // The single internal row carrying the most vulnerable cells: the
    // worst-case per-row evaluation the TestEngine oracle pays on a miss.
    let bits = geometry.bits_per_row();
    let row = (0..geometry.rows_per_bank)
        .max_by_key(|&r| {
            model
                .vulnerable_cells(module.chip_seed(), 0, 0, r, bits)
                .len()
        })
        .unwrap_or(0);
    g.throughput(Throughput::Elements(1));
    g.bench_function("evaluate_row_hot", |b| {
        b.iter(|| std::hint::black_box(model.evaluate_row(&module, 0, 0, row, 328.0).len()))
    });
    g.finish();
}

fn bench_pril(c: &mut Criterion) {
    let mut g = c.benchmark_group("pril");
    let writes: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(1);
        (0..10_000).map(|_| rng.gen_range(0..65_536)).collect()
    };
    g.throughput(Throughput::Elements(writes.len() as u64));
    g.bench_function("on_write_10k", |b| {
        b.iter_batched(
            || Pril::new(65_536, 4096),
            |mut pril| {
                for &w in &writes {
                    pril.on_write(w);
                }
                std::hint::black_box(pril.end_quantum())
            },
            BatchSize::SmallInput,
        )
    });
    // The streaming front door: the same writes through the batch entry
    // point, as a drained ingestion buffer would submit them.
    g.bench_function("on_write_batch_10k", |b| {
        b.iter_batched(
            || Pril::new(65_536, 4096),
            |mut pril| {
                pril.on_write_batch(&writes);
                std::hint::black_box(pril.end_quantum())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_refreshmgr(c: &mut Criterion) {
    use memcon::refreshmgr::{PageState, RefreshManager};
    let mut g = c.benchmark_group("refreshmgr");
    // Sparse due-plane tick: a large population (64 Ki pages) where only a
    // tiny LO-REF cohort comes due inside the polled window — the shape the
    // calendar queue exists for (a linear scan would pay 64 Ki probes per
    // tick regardless of due count).
    const N_PAGES: u64 = 65_536;
    const MS: u64 = 1_000_000;
    g.bench_function("tick_sparse", |b| {
        b.iter_batched(
            || {
                let mut mgr = RefreshManager::new(N_PAGES, 16.0, 64.0);
                // Most pages idle at LO-REF (due at 65 ms); a 512-page hot
                // cohort re-enters HI-REF at 1 ms and is due at 17 ms.
                for page in 0..N_PAGES {
                    mgr.transition(page, PageState::LoRef, MS);
                }
                for page in 0..512u64 {
                    mgr.transition(page, PageState::HiRef, MS);
                }
                mgr
            },
            |mut mgr| {
                let mut due = Vec::new();
                // Eight 2-ms ticks across 16-32 ms: only the hot cohort's
                // 17 ms instants (and their 33 ms reschedules) come due.
                for tick in 8..16u64 {
                    mgr.pop_due_refreshes(tick * 2 * MS, &mut due);
                }
                std::hint::black_box(due.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_tester(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip_tester");
    g.sample_size(10);
    g.bench_function("fill_idle_readback", |b| {
        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 7);
        let mut tester = ChipTester::new(module, FailureModelParams::calibrated());
        b.iter(|| {
            tester.fill_pattern(&TestPattern::Random(3));
            let _ = tester.idle_ms(328.0);
            std::hint::black_box(tester.read_back().flipped_bits())
        })
    });
    g.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("cost_model/min_write_interval", |b| {
        let m = CostModel::paper_default();
        b.iter(|| std::hint::black_box(m.min_write_interval_ms(TestMode::CopyAndCompare)))
    });
}

fn bench_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto");
    let model = WriteIntervalModel::typical();
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sample_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += model.sample_ms(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(20);
    g.bench_function("netflix_scaled", |b| {
        let w = WorkloadProfile::netflix().scaled(0.05);
        b.iter(|| std::hint::black_box(w.generate(11).len()))
    });
    // The same trace through the fanned-out path at --jobs 4 (byte-identical
    // output; on a single-core host this measures the fan-out overhead).
    g.bench_function("netflix_scaled_jobs4", |b| {
        let w = WorkloadProfile::netflix().scaled(0.05);
        b.iter(|| std::hint::black_box(w.generate_with_jobs(11, 4).len()))
    });
    g.finish();
}

fn bench_bank_fsm(c: &mut Criterion) {
    let timing = TimingParams::ddr3_1600();
    c.bench_function("bank_fsm/act_rd_pre_cycle", |b| {
        b.iter_batched(
            Bank::new,
            |mut bank| {
                let mut now = 0;
                for row in 0..64u32 {
                    now = bank
                        .issue(DramCommand::Activate, row, now, &timing)
                        .unwrap();
                    now = bank.issue(DramCommand::Read, row, now, &timing).unwrap();
                    let tras = bank.ready_cycle(DramCommand::Precharge).max(now);
                    now = bank
                        .issue(DramCommand::Precharge, row, tras, &timing)
                        .unwrap();
                }
                std::hint::black_box(bank.acts)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_telemetry(c: &mut Criterion) {
    use std::sync::Arc;

    // Each iteration performs a batch of operations: the single-op cost is
    // a few ns — below the harness/timer floor on a busy host — so per-op
    // numbers are derived (ns ÷ OPS) and the gate compares µs-scale
    // medians that amortize scheduling jitter.
    const OPS: u64 = 512;

    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(OPS));
    // The disabled path is the cost every instrumented call site pays when
    // telemetry is off — the contract is that it stays negligible.
    g.bench_function("counter_add_disabled_512", |b| {
        let registry = telemetry::Registry::new();
        let counter = registry.counter("bench.counter", telemetry::Class::Deterministic);
        b.iter(|| {
            for i in 0..OPS {
                counter.add(std::hint::black_box(i & 1));
            }
        })
    });
    g.bench_function("counter_add_enabled_512", |b| {
        let registry = telemetry::Registry::new();
        registry.set_enabled(true);
        let counter = registry.counter("bench.counter", telemetry::Class::Deterministic);
        b.iter(|| {
            for i in 0..OPS {
                counter.add(std::hint::black_box(i & 1));
            }
        })
    });
    g.bench_function("histogram_record_enabled_512", |b| {
        let registry = telemetry::Registry::new();
        registry.set_enabled(true);
        let hist = registry.histogram(
            "bench.hist",
            telemetry::Class::Deterministic,
            &[1, 8, 64, 512, 4096],
        );
        let mut v = 0u64;
        b.iter(|| {
            for _ in 0..OPS {
                v = (v + 97) % 8192;
                hist.record(std::hint::black_box(v));
            }
        })
    });
    g.bench_function("span_enter_exit_enabled_512", |b| {
        let registry = telemetry::Registry::new();
        registry.set_enabled(true);
        let span = registry.span("bench.span");
        b.iter(|| {
            for _ in 0..OPS {
                let guard = span.start();
                std::hint::black_box(&guard);
            }
        })
    });
    g.bench_function("trace_record_enabled_512", |b| {
        let registry = Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..OPS {
                i += 1;
                registry
                    .trace()
                    .record("bench.event", std::hint::black_box(i));
            }
        })
    });
    g.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    let row: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(4);
        (0..1024).map(|_| rng.gen()).collect()
    };
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("crc64_8kb_row", |b| {
        let crc = Crc64::new();
        b.iter(|| std::hint::black_box(crc.row_signature(&row)))
    });
    g.bench_function("hamming72_encode_decode", |b| {
        let h = Hamming72;
        b.iter(|| {
            let cw = h.encode(std::hint::black_box(0xDEAD_BEEF_CAFE_BABE));
            std::hint::black_box(h.decode(cw ^ (1 << 17)))
        })
    });
    g.finish();
}
