//! `cargo bench --bench micro` — thin harness over the shared suite in
//! `bench_suite::micro`, which `xtask bench baseline` also runs.

use memutil::bench::{criterion_group, criterion_main};

criterion_group!(micro, bench_suite::micro::register);
criterion_main!(micro);
