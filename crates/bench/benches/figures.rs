//! One Criterion bench per paper *figure*: each regenerates a scaled-down
//! version of the figure's computation, so `cargo bench` both times the
//! pipeline and proves every figure stays runnable.

use bench_suite::bench_opts;
use memutil::bench::{criterion_group, criterion_main, Criterion};

macro_rules! fig_bench {
    ($fn_name:ident, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let opts = bench_opts();
            c.bench_function(stringify!($module), |b| {
                b.iter(|| std::hint::black_box(experiments::$module::compute(&opts)))
            });
        }
    };
}

fig_bench!(bench_fig3, fig3);
fig_bench!(bench_fig4, fig4);
fig_bench!(bench_fig5, fig5);
fig_bench!(bench_fig6, fig6);
fig_bench!(bench_fig7, fig7);
fig_bench!(bench_fig8, fig8);
fig_bench!(bench_fig9, fig9);
fig_bench!(bench_fig11, fig11);
fig_bench!(bench_fig12, fig12);
fig_bench!(bench_fig14, fig14);
fig_bench!(bench_fig15, fig15);
fig_bench!(bench_fig16, fig16);
fig_bench!(bench_fig17, fig17);
fig_bench!(bench_fig18, fig18);
fig_bench!(bench_fig19, fig19);

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7,
        bench_fig8, bench_fig9, bench_fig11, bench_fig12, bench_fig14,
        bench_fig15, bench_fig16, bench_fig17, bench_fig18, bench_fig19
}
criterion_main!(figures);
