//! One Criterion bench per paper *table*.

use bench_suite::bench_opts;
use memutil::bench::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("table1", |b| {
        b.iter(|| std::hint::black_box(experiments::table1::render(&opts)))
    });
}

fn bench_table2(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("table2", |b| {
        b.iter(|| std::hint::black_box(experiments::table2::render(&opts)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("table3", |b| {
        b.iter(|| std::hint::black_box(experiments::table3::compute(&opts)))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3
}
criterion_main!(tables);
