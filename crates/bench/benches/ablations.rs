//! Ablation benches for the design choices DESIGN.md calls out: PRIL
//! write-buffer capacity, quantum length, test mode, LO-REF interval, and
//! the concurrent-test budget. Each sweep reports the quality metric in
//! stderr once and benches the run time per point.

use memutil::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use memcon::config::MemconConfig;
use memcon::cost::TestMode;
use memcon::engine::MemconEngine;
use memtrace::workload::WorkloadProfile;

fn trace() -> memtrace::trace::WriteTrace {
    WorkloadProfile::netflix().scaled(0.1).generate(0xAB1A)
}

fn run(config: MemconConfig, trace: &memtrace::trace::WriteTrace) -> f64 {
    let mut engine = MemconEngine::new(config, trace.n_pages());
    engine.run(trace).refresh_reduction
}

fn ablate_buffer_capacity(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation/write_buffer_capacity");
    g.sample_size(10);
    for capacity in [16usize, 256, 4096] {
        let mut config = MemconConfig::paper_default();
        config.write_buffer_capacity = capacity;
        eprintln!(
            "[ablation] buffer capacity {capacity}: reduction {:.3}",
            run(config, &t)
        );
        g.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, _| {
            b.iter(|| std::hint::black_box(run(config, &t)))
        });
    }
    g.finish();
}

fn ablate_quantum(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation/quantum_ms");
    g.sample_size(10);
    for quantum in [512.0, 1024.0, 2048.0] {
        let config = MemconConfig::paper_default().with_quantum_ms(quantum);
        eprintln!(
            "[ablation] quantum {quantum} ms: reduction {:.3}",
            run(config, &t)
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(quantum as u64),
            &quantum,
            |b, _| b.iter(|| std::hint::black_box(run(config, &t))),
        );
    }
    g.finish();
}

fn ablate_test_mode(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation/test_mode");
    g.sample_size(10);
    for mode in TestMode::ALL {
        let config = MemconConfig::paper_default().with_test_mode(mode);
        eprintln!(
            "[ablation] {mode}: MinWriteInterval {} ms, reduction {:.3}",
            config.min_write_interval_ms(),
            run(config, &t)
        );
        g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, _| {
            b.iter(|| std::hint::black_box(run(config, &t)))
        });
    }
    g.finish();
}

fn ablate_lo_interval(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation/lo_interval_ms");
    g.sample_size(10);
    for lo in [64.0, 128.0, 256.0] {
        let mut config = MemconConfig::paper_default();
        config.lo_ms = lo;
        eprintln!(
            "[ablation] LO-REF {lo} ms: bound {:.3}, reduction {:.3}",
            config.cost_model().upper_bound_reduction(),
            run(config, &t)
        );
        g.bench_with_input(BenchmarkId::from_parameter(lo as u64), &lo, |b, _| {
            b.iter(|| std::hint::black_box(run(config, &t)))
        });
    }
    g.finish();
}

fn ablate_concurrent_tests(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation/concurrent_tests");
    g.sample_size(10);
    for slots in [8u32, 64, 1024] {
        let mut config = MemconConfig::paper_default();
        config.concurrent_tests = slots;
        eprintln!(
            "[ablation] {slots} test slots: reduction {:.3}",
            run(config, &t)
        );
        g.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| std::hint::black_box(run(config, &t)))
        });
    }
    g.finish();
}

fn ablate_tracking_policy(c: &mut Criterion) {
    use memcon::pril::{Pril, TrackingPolicy};
    let t = trace();
    let mut g = c.benchmark_group("ablation/tracking_policy");
    g.sample_size(10);
    for policy in [TrackingPolicy::SingleWrite, TrackingPolicy::AnyWrite] {
        // Replay the trace through bare PRIL with 1024 ms quanta and report
        // candidate volume (the buffer-pressure/accuracy tradeoff of the
        // paper's footnote 8).
        let replay = |policy: TrackingPolicy| {
            let mut pril = Pril::with_policy(t.n_pages(), 4096, policy);
            let quantum_ns = 1_024_000_000u64;
            let mut next_q = quantum_ns;
            let mut candidates = 0u64;
            for e in t.events() {
                while e.time_ns >= next_q {
                    candidates += pril.end_quantum().len() as u64;
                    next_q += quantum_ns;
                }
                pril.on_write(e.page);
            }
            candidates + pril.end_quantum().len() as u64
        };
        eprintln!(
            "[ablation] {policy:?}: {} candidates over the trace",
            replay(policy)
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| b.iter(|| std::hint::black_box(replay(p))),
        );
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_buffer_capacity,
    ablate_quantum,
    ablate_test_mode,
    ablate_lo_interval,
    ablate_concurrent_tests,
    ablate_tracking_policy
);
criterion_main!(ablations);
