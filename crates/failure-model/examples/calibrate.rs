//! Calibration scratchpad: measures the Fig. 4 statistics on a scaled
//! module so the model parameters can be tuned against the paper's targets
//! (ALL-FAIL ≈ 13.5 % of rows; program content 0.38 %–5.6 %).

use dram::geometry::{ChipDensity, DramGeometry};
use dram::module::DramModule;
use dram::timing::TimingParams;
use failure_model::model::CouplingFailureModel;
use failure_model::params::FailureModelParams;
use failure_model::tester::ChipTester;
use failure_model::SpecBenchmark;

fn main() {
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 8,
        banks: 8,
        rows_per_bank: 2048,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let interval_ms = 328.0;
    let module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xC0FFEE);
    let model = CouplingFailureModel::new(FailureModelParams::calibrated());
    let all_fail = model.worst_case_failing_row_fraction(&module, interval_ms);
    println!("ALL FAIL: {:.2}% (target 13.5%)", all_fail * 100.0);

    let mut tester = ChipTester::new(module, FailureModelParams::calibrated());

    // Pure-class rates first.
    use failure_model::ContentProfile;
    let classes: [(&str, ContentProfile); 5] = [
        ("pure-zero", ContentProfile::zeroes()),
        ("pure-random", ContentProfile::random_data()),
        (
            "pure-pointer",
            ContentProfile {
                zero: 0.0,
                random: 0.0,
                pointer: 1.0,
                small_int: 0.0,
                text: 0.0,
            },
        ),
        (
            "pure-smallint",
            ContentProfile {
                zero: 0.0,
                random: 0.0,
                pointer: 0.0,
                small_int: 1.0,
                text: 0.0,
            },
        ),
        (
            "pure-text",
            ContentProfile {
                zero: 0.0,
                random: 0.0,
                pointer: 0.0,
                small_int: 0.0,
                text: 1.0,
            },
        ),
    ];
    for (name, profile) in classes {
        let words = geometry.words_per_row();
        tester.fill_with(|row| profile.row_content(99, 0, row, words));
        let _ = tester.idle_ms(interval_ms);
        println!(
            "{:<14} {:>6.2}%",
            name,
            tester.read_back().failing_row_fraction() * 100.0
        );
    }

    for bench in SpecBenchmark::ALL {
        let profile = bench.profile();
        let words = geometry.words_per_row();
        let mut fracs = Vec::new();
        for snapshot in 0..3u32 {
            tester.fill_with(|row| profile.row_content(bench as u64, snapshot, row, words));
            let _ = tester.idle_ms(interval_ms);
            fracs.push(tester.read_back().failing_row_fraction() * 100.0);
        }
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        println!(
            "{:<10} {:>6.2}%  (snapshots: {:?})",
            bench.name(),
            avg,
            fracs
                .iter()
                .map(|f| (f * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
