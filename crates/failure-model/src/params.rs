//! Failure-model parameters and their calibration targets.
//!
//! The model materializes, per row, a sparse set of *vulnerable cells*. Each
//! cell carries a base retention time expressed through an **aggression
//! threshold** `θ`: at the calibration interval the cell fails exactly when
//! the aggressor-weight sum of its hostile neighbours exceeds `θ` (and the
//! cell currently stores charge). A small fraction of cells are *weak* —
//! `θ < 0`, they fail data-independently — matching the paper's footnote 1.
//!
//! The default values ([`FailureModelParams::calibrated`]) were tuned (see
//! `examples/calibrate.rs` and the `fig4` experiment) so that on the scaled
//! test module at the 328 ms test interval:
//!
//! * exhaustive worst-case testing marks **≈ 13.5 %** of rows as able to fail
//!   with some content (paper Fig. 4 "ALL FAIL"),
//! * program-content testing marks **0.38 %–5.6 %** of rows depending on the
//!   benchmark (paper Fig. 4), i.e. a 2.4×–35× gap,
//! * failure counts grow steeply with the refresh interval.

/// Parameters of the coupling/retention failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModelParams {
    /// Expected number of vulnerable cells per 8 KB (65536-bit) row; scaled
    /// linearly for other row sizes.
    pub vulnerable_per_8kb_row: f64,
    /// Fraction of vulnerable cells that are *weak*: they fail at the
    /// calibration interval with no aggressors at all (data-independent
    /// retention failures, trivially detectable per the paper's footnote 1).
    pub weak_fraction: f64,
    /// Shape of the aggression-threshold distribution: `θ = Σmax · u^shape`,
    /// `u ~ U(0,1)`. Larger values concentrate thresholds near zero, making
    /// cells easier to excite with partial aggression.
    pub threshold_shape: f64,
    /// Refresh interval, in ms at the 85 °C reference, at which the threshold
    /// semantics are anchored: a non-weak cell's retention is
    /// `calibration_interval · (1 + θ)`.
    pub calibration_interval_ms: f64,
    /// Horizontal (bitline-coupling) aggressor weight range `[lo, hi]`.
    /// Bitline coupling is the dominant mechanism (paper Section 2, citing
    /// Al-Ars et al. and Redeker et al.).
    pub horizontal_weight: (f64, f64),
    /// Vertical (wordline-neighbour) aggressor weight range `[lo, hi]`;
    /// an order of magnitude weaker than bitline coupling.
    pub vertical_weight: (f64, f64),
}

impl FailureModelParams {
    /// The calibrated default (see module docs for the targets it hits).
    #[must_use]
    pub fn calibrated() -> Self {
        FailureModelParams {
            vulnerable_per_8kb_row: 0.145,
            weak_fraction: 0.03,
            threshold_shape: 3.0,
            calibration_interval_ms: 328.0,
            horizontal_weight: (0.4, 1.0),
            vertical_weight: (0.01, 0.05),
        }
    }

    /// The calibrated parameters re-anchored to a different calibration
    /// interval (e.g. 64 ms when driving the MEMCON engine, whose online
    /// tests run at the LO-REF interval).
    #[must_use]
    pub fn calibrated_at(interval_ms: f64) -> Self {
        FailureModelParams {
            calibration_interval_ms: interval_ms,
            ..FailureModelParams::calibrated()
        }
    }

    /// Maximum possible aggressor sum (all four neighbours hostile at their
    /// maximum weights).
    #[must_use]
    pub fn max_aggressor_sum(&self) -> f64 {
        2.0 * self.horizontal_weight.1 + 2.0 * self.vertical_weight.1
    }

    /// Expected number of vulnerable cells in a row of `bits` bits.
    #[must_use]
    pub fn cells_per_row(&self, bits: u64) -> f64 {
        self.vulnerable_per_8kb_row * bits as f64 / 65_536.0
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vulnerable_per_8kb_row <= 0.0 || !self.vulnerable_per_8kb_row.is_finite() {
            return Err("vulnerable_per_8kb_row must be positive and finite".into());
        }
        if !(0.0..=1.0).contains(&self.weak_fraction) {
            return Err("weak_fraction must be in [0, 1]".into());
        }
        if self.threshold_shape <= 0.0 {
            return Err("threshold_shape must be positive".into());
        }
        if self.calibration_interval_ms <= 0.0 {
            return Err("calibration_interval_ms must be positive".into());
        }
        for (name, (lo, hi)) in [
            ("horizontal_weight", self.horizontal_weight),
            ("vertical_weight", self.vertical_weight),
        ] {
            if !(0.0 <= lo && lo <= hi) {
                return Err(format!("{name} range [{lo}, {hi}] is invalid"));
            }
        }
        Ok(())
    }
}

impl Default for FailureModelParams {
    fn default() -> Self {
        FailureModelParams::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_is_valid() {
        assert!(FailureModelParams::calibrated().validate().is_ok());
    }

    #[test]
    fn cell_rate_is_sparse_and_scales_with_row_size() {
        let p = FailureModelParams::calibrated();
        let per_row = p.cells_per_row(65_536);
        assert!(per_row > 0.01 && per_row < 3.0, "got {per_row}");
        assert!((p.cells_per_row(32_768) - per_row / 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_aggressor_sum_matches_ranges() {
        let p = FailureModelParams::calibrated();
        assert!((p.max_aggressor_sum() - (2.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn reanchoring_changes_only_the_interval() {
        let base = FailureModelParams::calibrated();
        let re = FailureModelParams::calibrated_at(64.0);
        assert_eq!(re.calibration_interval_ms, 64.0);
        assert_eq!(re.vulnerable_per_8kb_row, base.vulnerable_per_8kb_row);
        assert_eq!(re.threshold_shape, base.threshold_shape);
    }

    #[test]
    fn validate_catches_bad_values() {
        let mut p = FailureModelParams::calibrated();
        p.horizontal_weight = (1.0, 0.4);
        assert!(p.validate().is_err());
        let mut p2 = FailureModelParams::calibrated();
        p2.weak_fraction = 1.5;
        assert!(p2.validate().is_err());
        let mut p3 = FailureModelParams::calibrated();
        p3.threshold_shape = 0.0;
        assert!(p3.validate().is_err());
        let mut p4 = FailureModelParams::calibrated();
        p4.vulnerable_per_8kb_row = 0.0;
        assert!(p4.validate().is_err());
    }
}
