//! Manufacturing-style test data patterns.
//!
//! Manufacturers detect data-dependent failures by exhaustively testing with
//! patterns designed to maximize cell-to-cell interference (paper Section 2).
//! At the *system* level the classic patterns lose their adversarial power —
//! scrambling means a system-space checkerboard is not an internal-space
//! checkerboard — which the paper demonstrates and this crate reproduces
//! (see the Fig. 3 experiment). The suite here is what the paper's FPGA
//! infrastructure would write.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use dram::address::RowId;
use dram::cell::RowContent;
use dram::module::DramModule;

/// A module-wide test data pattern, defined over system addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestPattern {
    /// All zeros.
    Solid0,
    /// All ones.
    Solid1,
    /// Alternating bits, phase flipped every row (classic checkerboard).
    Checkerboard,
    /// Inverted checkerboard.
    CheckerboardInv,
    /// Even rows all-zero, odd rows all-one.
    RowStripe,
    /// Inverted row stripe.
    RowStripeInv,
    /// Alternating bit columns (0101… in every row).
    ColStripe,
    /// Inverted column stripe.
    ColStripeInv,
    /// Pseudo-random content from the given seed.
    Random(u64),
}

impl TestPattern {
    /// The deterministic part of a manufacturing suite (all non-random
    /// patterns).
    pub const DETERMINISTIC: [TestPattern; 8] = [
        TestPattern::Solid0,
        TestPattern::Solid1,
        TestPattern::Checkerboard,
        TestPattern::CheckerboardInv,
        TestPattern::RowStripe,
        TestPattern::RowStripeInv,
        TestPattern::ColStripe,
        TestPattern::ColStripeInv,
    ];

    /// A full suite: the deterministic patterns followed by `n_random`
    /// seeded random patterns — the paper's Fig. 3 uses a suite of 100.
    #[must_use]
    pub fn suite(n_random: usize) -> Vec<TestPattern> {
        let mut v: Vec<TestPattern> = Self::DETERMINISTIC.to_vec();
        v.extend((0..n_random as u64).map(TestPattern::Random));
        v
    }

    /// Content of system row `row_id` under this pattern.
    #[must_use]
    pub fn row_content(&self, row_id: RowId, words: usize) -> RowContent {
        match self {
            TestPattern::Solid0 => RowContent::zeroed(words),
            TestPattern::Solid1 => RowContent::ones(words),
            TestPattern::Checkerboard => {
                let w = if row_id.is_multiple_of(2) {
                    0x5555_5555_5555_5555
                } else {
                    0xAAAA_AAAA_AAAA_AAAA
                };
                RowContent::from_words(vec![w; words])
            }
            TestPattern::CheckerboardInv => {
                let w = if row_id.is_multiple_of(2) {
                    0xAAAA_AAAA_AAAA_AAAA
                } else {
                    0x5555_5555_5555_5555
                };
                RowContent::from_words(vec![w; words])
            }
            TestPattern::RowStripe => {
                if row_id.is_multiple_of(2) {
                    RowContent::zeroed(words)
                } else {
                    RowContent::ones(words)
                }
            }
            TestPattern::RowStripeInv => {
                if row_id.is_multiple_of(2) {
                    RowContent::ones(words)
                } else {
                    RowContent::zeroed(words)
                }
            }
            TestPattern::ColStripe => RowContent::from_words(vec![0x5555_5555_5555_5555; words]),
            TestPattern::ColStripeInv => RowContent::from_words(vec![0xAAAA_AAAA_AAAA_AAAA; words]),
            TestPattern::Random(seed) => {
                let mut rng =
                    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(row_id));
                RowContent::from_words((0..words).map(|_| rng.gen()).collect())
            }
        }
    }

    /// Writes this pattern into every row of `module`.
    pub fn fill(&self, module: &mut DramModule) {
        let words = module.geometry().words_per_row();
        module.fill_with(|id| self.row_content(id, words));
    }

    /// Short label for experiment output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TestPattern::Solid0 => "solid0".into(),
            TestPattern::Solid1 => "solid1".into(),
            TestPattern::Checkerboard => "checker".into(),
            TestPattern::CheckerboardInv => "checker~".into(),
            TestPattern::RowStripe => "rowstripe".into(),
            TestPattern::RowStripeInv => "rowstripe~".into(),
            TestPattern::ColStripe => "colstripe".into(),
            TestPattern::ColStripeInv => "colstripe~".into(),
            TestPattern::Random(s) => format!("rand{s}"),
        }
    }
}

impl std::fmt::Display for TestPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::geometry::DramGeometry;
    use dram::timing::TimingParams;

    #[test]
    fn solid_patterns() {
        assert_eq!(TestPattern::Solid0.row_content(0, 4).popcount(), 0);
        assert_eq!(TestPattern::Solid1.row_content(0, 4).popcount(), 256);
    }

    #[test]
    fn checkerboard_alternates_by_row() {
        let even = TestPattern::Checkerboard.row_content(0, 1);
        let odd = TestPattern::Checkerboard.row_content(1, 1);
        assert_eq!(even.as_words()[0], 0x5555_5555_5555_5555);
        assert_eq!(odd.as_words()[0], 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(even.hamming_distance(&odd), 64);
    }

    #[test]
    fn inverses_are_inverses() {
        for (a, b) in [
            (TestPattern::Checkerboard, TestPattern::CheckerboardInv),
            (TestPattern::RowStripe, TestPattern::RowStripeInv),
            (TestPattern::ColStripe, TestPattern::ColStripeInv),
        ] {
            for row in 0..4 {
                let ca = a.row_content(row, 2);
                let cb = b.row_content(row, 2);
                assert_eq!(ca.inverted(), cb, "{a} vs {b} at row {row}");
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_row() {
        let a = TestPattern::Random(5).row_content(10, 8);
        let b = TestPattern::Random(5).row_content(10, 8);
        let c = TestPattern::Random(6).row_content(10, 8);
        let d = TestPattern::Random(5).row_content(11, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn suite_has_expected_size_and_unique_labels() {
        let suite = TestPattern::suite(92);
        assert_eq!(suite.len(), 100);
        let labels: std::collections::HashSet<_> = suite.iter().map(TestPattern::label).collect();
        assert_eq!(labels.len(), 100);
    }

    #[test]
    fn fill_writes_every_row() {
        let mut m = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 0);
        TestPattern::Solid1.fill(&mut m);
        for id in 0..m.geometry().total_rows() {
            assert_eq!(m.read_row_id(id).popcount(), m.geometry().bits_per_row());
        }
        TestPattern::RowStripe.fill(&mut m);
        assert_eq!(m.read_row_id(0).popcount(), 0);
        assert_eq!(m.read_row_id(1).popcount(), m.geometry().bits_per_row());
    }
}
