//! Synthetic SPEC CPU2006-like memory content.
//!
//! Paper Fig. 4 tests real chips with memory-content dumps of 20 SPEC
//! CPU2006 benchmarks, duplicated across the module. We do not have the
//! dumps, so each benchmark gets a *statistical content profile*: a mixture
//! of word classes (zero words, full-entropy data, pointers, small integers,
//! ASCII text) that determines how strongly the image excites coupling
//! aggressors. The profiles were assigned so the failing-row fractions span
//! the published 0.38 %–5.6 % band; what matters downstream is only the
//! *spread* (some content is near-worst-case, some nearly benign), not which
//! named benchmark sits where.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use dram::address::RowId;
use dram::cell::RowContent;

/// One class of memory word, with its characteristic bit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WordClass {
    /// All-zero word.
    Zero,
    /// Full-entropy word.
    Random,
    /// Canonical user-space pointer (shared high bits).
    Pointer,
    /// Small integer (only low bits populated).
    SmallInt,
    /// Printable ASCII bytes.
    Text,
}

impl WordClass {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        match self {
            WordClass::Zero => 0,
            WordClass::Random => rng.gen(),
            WordClass::Pointer => {
                // Canonical user-space pointer: 0x0000_7fXX_XXXX_XXX0-ish.
                let low: u64 = rng.gen_range(0..1u64 << 40);
                0x0000_7f00_0000_0000 | (low & !0x7)
            }
            WordClass::SmallInt => rng.gen_range(0..4096u64),
            WordClass::Text => {
                let mut w = 0u64;
                for i in 0..8 {
                    let b: u64 = rng.gen_range(0x20..0x7F);
                    w |= b << (8 * i);
                }
                w
            }
        }
    }
}

/// Mixture weights over word classes for one program's memory image.
///
/// Weights need not sum to one; they are normalized at sampling time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentProfile {
    /// Fraction of all-zero words (untouched or zero-initialized memory).
    pub zero: f64,
    /// Fraction of full-entropy words (compressed/encoded/floating data).
    pub random: f64,
    /// Fraction of pointer-like words (shared high bits, varying low bits).
    pub pointer: f64,
    /// Fraction of small-integer words (counters, sizes, enum tags).
    pub small_int: f64,
    /// Fraction of ASCII text words.
    pub text: f64,
}

impl ContentProfile {
    /// A profile of pure zero pages (idle memory).
    #[must_use]
    pub fn zeroes() -> Self {
        ContentProfile {
            zero: 1.0,
            random: 0.0,
            pointer: 0.0,
            small_int: 0.0,
            text: 0.0,
        }
    }

    /// A profile of full-entropy data (the most failure-exciting program
    /// content achievable at the system level).
    #[must_use]
    pub fn random_data() -> Self {
        ContentProfile {
            zero: 0.0,
            random: 1.0,
            pointer: 0.0,
            small_int: 0.0,
            text: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.zero + self.random + self.pointer + self.small_int + self.text
    }

    /// Validates that the profile has positive total weight and no negative
    /// components.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            self.zero,
            self.random,
            self.pointer,
            self.small_int,
            self.text,
        ];
        if parts.iter().any(|&p| p < 0.0 || !p.is_finite()) {
            return Err("profile weights must be non-negative and finite".into());
        }
        if self.total() <= 0.0 {
            return Err("profile must have positive total weight".into());
        }
        Ok(())
    }

    /// Samples one 64-bit word from the mixture (word-granularity mixing;
    /// row generation uses page-granularity classes instead, see
    /// [`ContentProfile::row_content`]).
    pub fn sample_word<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let t = self.total();
        let mut x = rng.gen_range(0.0..t);
        if x < self.zero {
            return WordClass::Zero.sample(rng);
        }
        x -= self.zero;
        if x < self.random {
            return WordClass::Random.sample(rng);
        }
        x -= self.random;
        if x < self.pointer {
            return WordClass::Pointer.sample(rng);
        }
        x -= self.pointer;
        if x < self.small_int {
            return WordClass::SmallInt.sample(rng);
        }
        WordClass::Text.sample(rng)
    }

    /// Deterministic content of one row under this profile.
    ///
    /// The mixture weights are applied at **page granularity**: each row
    /// (page) is drawn as one class and filled homogeneously — real memory
    /// images are structured in whole zero pages, heap pages, data arrays,
    /// and so on, and that page-level homogeneity is what limits how much
    /// cell-to-cell interference low-entropy programs excite.
    ///
    /// `snapshot` distinguishes successive content images of the same
    /// program (the paper samples one image per 100 M instructions).
    #[must_use]
    pub fn row_content(&self, seed: u64, snapshot: u32, row_id: RowId, words: usize) -> RowContent {
        let mix = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(snapshot) << 32)
            .wrapping_add(row_id);
        let mut rng = SmallRng::seed_from_u64(mix);
        let t = self.total();
        let mut x = rng.gen_range(0.0..t);
        let class = if x < self.zero {
            WordClass::Zero
        } else {
            x -= self.zero;
            if x < self.random {
                WordClass::Random
            } else {
                x -= self.random;
                if x < self.pointer {
                    WordClass::Pointer
                } else {
                    x -= self.pointer;
                    if x < self.small_int {
                        WordClass::SmallInt
                    } else {
                        WordClass::Text
                    }
                }
            }
        };
        RowContent::from_words((0..words).map(|_| class.sample(&mut rng)).collect())
    }
}

macro_rules! spec_benchmarks {
    ($(($variant:ident, $name:literal, $zero:expr, $random:expr, $pointer:expr, $small:expr, $text:expr)),+ $(,)?) => {
        /// The 20 SPEC CPU2006 benchmarks of paper Fig. 4.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum SpecBenchmark {
            $($variant),+
        }

        impl SpecBenchmark {
            /// All benchmarks, in the paper's Fig. 4 x-axis order.
            pub const ALL: [SpecBenchmark; 20] = [$(SpecBenchmark::$variant),+];

            /// The benchmark's display name as used in Fig. 4.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $(SpecBenchmark::$variant => $name),+
                }
            }

            /// The benchmark's synthetic content profile.
            #[must_use]
            pub fn profile(self) -> ContentProfile {
                match self {
                    $(SpecBenchmark::$variant => ContentProfile {
                        zero: $zero,
                        random: $random,
                        pointer: $pointer,
                        small_int: $small,
                        text: $text,
                    }),+
                }
            }
        }
    };
}

// Profiles assigned to span the 0.38–5.6 % failing-row band of Fig. 4:
// integer / control-heavy codes lean on zeros, small ints, and text;
// floating-point and data-compression codes lean on full-entropy words.
spec_benchmarks! {
    //                       zero  random pointer small  text
    (Perlbench, "PERL",     0.45, 0.15, 0.15, 0.15, 0.10),
    (Bzip2,     "BZIP",     0.05, 0.85, 0.05, 0.00, 0.05),
    (Gcc,       "GCC",      0.35, 0.15, 0.30, 0.15, 0.05),
    (Mcf,       "MCF",      0.15, 0.15, 0.65, 0.05, 0.00),
    (Zeusmp,    "ZEUSMP",   0.08, 0.72, 0.05, 0.15, 0.00),
    (Cactus,    "CACTUS",   0.15, 0.65, 0.05, 0.15, 0.00),
    (Gobmk,     "GOBMK",    0.65, 0.05, 0.10, 0.15, 0.05),
    (Namd,      "NAMD",     0.05, 0.75, 0.05, 0.15, 0.00),
    (Soplex,    "SOPLEX",   0.25, 0.50, 0.10, 0.15, 0.00),
    (Dealii,    "DEALII",   0.25, 0.45, 0.20, 0.10, 0.00),
    (Calculix,  "CALCULIX", 0.20, 0.55, 0.10, 0.15, 0.00),
    (Hmmer,     "HMMER",    0.55, 0.20, 0.10, 0.15, 0.00),
    (Libquantum,"LIBQUANT", 0.00, 0.95, 0.00, 0.05, 0.00),
    (Gems,      "GEMS",     0.00, 0.98, 0.00, 0.02, 0.00),
    (H264ref,   "H264REF",  0.10, 0.70, 0.05, 0.10, 0.05),
    (Tonto,     "TONTO",    0.25, 0.45, 0.10, 0.20, 0.00),
    (Omnetpp,   "OMNETPP",  0.30, 0.05, 0.50, 0.10, 0.05),
    (Lbm,       "LBM",      0.00, 0.99, 0.00, 0.01, 0.00),
    (Xalancbmk, "XALANC",   0.40, 0.05, 0.20, 0.10, 0.25),
    (Astar,     "ASTAR",    0.90, 0.00, 0.00, 0.08, 0.02),
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_benchmarks_all_valid() {
        assert_eq!(SpecBenchmark::ALL.len(), 20);
        for b in SpecBenchmark::ALL {
            assert!(b.profile().validate().is_ok(), "{b} profile invalid");
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            SpecBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn profiles_sum_close_to_one() {
        for b in SpecBenchmark::ALL {
            let p = b.profile();
            let total = p.zero + p.random + p.pointer + p.small_int + p.text;
            assert!((total - 1.0).abs() < 1e-9, "{b} sums to {total}");
        }
    }

    #[test]
    fn zero_profile_produces_zero_rows() {
        let row = ContentProfile::zeroes().row_content(1, 0, 0, 64);
        assert_eq!(row.popcount(), 0);
    }

    #[test]
    fn random_profile_has_half_density() {
        let row = ContentProfile::random_data().row_content(1, 0, 0, 1024);
        let density = row.popcount() as f64 / row.bits() as f64;
        assert!((density - 0.5).abs() < 0.02, "density {density}");
    }

    #[test]
    fn content_is_deterministic_and_snapshot_sensitive() {
        // Use the random-data profile for the sensitivity half: a zero-heavy
        // benchmark profile can legitimately draw the all-zero page class
        // for two different snapshots, making the rows equal by design.
        let p = ContentProfile::random_data();
        let a = p.row_content(7, 0, 42, 32);
        let b = p.row_content(7, 0, 42, 32);
        let c = p.row_content(7, 1, 42, 32);
        let d = p.row_content(8, 0, 42, 32);
        assert_eq!(a, b, "same (seed, snapshot, row) must reproduce");
        assert_ne!(a, c, "snapshot must perturb content");
        assert_ne!(a, d, "seed must perturb content");
        // Benchmark profiles stay deterministic too.
        let g = SpecBenchmark::Gcc.profile();
        assert_eq!(g.row_content(7, 0, 42, 32), g.row_content(7, 0, 42, 32));
    }

    #[test]
    fn entropy_ordering_zero_vs_random() {
        // Bit density should reflect the mixture: LBM (random-heavy) much
        // denser than ASTAR (zero-heavy). Average across many pages because
        // each page is a single class draw.
        let count = |b: SpecBenchmark| -> u64 {
            (0..200)
                .map(|row| b.profile().row_content(1, 0, row, 64).popcount())
                .sum()
        };
        assert!(count(SpecBenchmark::Lbm) > 2 * count(SpecBenchmark::Astar));
    }

    #[test]
    fn pointer_words_share_high_bits() {
        let p = ContentProfile {
            zero: 0.0,
            random: 0.0,
            pointer: 1.0,
            small_int: 0.0,
            text: 0.0,
        };
        let row = p.row_content(1, 0, 0, 16);
        for w in row.as_words() {
            assert_eq!(w >> 40, 0x7f, "pointer word {w:#x} lacks canonical prefix");
        }
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut p = ContentProfile::zeroes();
        p.zero = -1.0;
        assert!(p.validate().is_err());
        let empty = ContentProfile {
            zero: 0.0,
            random: 0.0,
            pointer: 0.0,
            small_int: 0.0,
            text: 0.0,
        };
        assert!(empty.validate().is_err());
    }
}
