//! SoftMC-like chip tester: fill → idle → read back.
//!
//! [`ChipTester`] reproduces the paper's FPGA test loop (Section 5):
//!
//! 1. **fill** the module with content (a test pattern or a program image),
//! 2. **idle** for a refresh interval at the ambient temperature — the
//!    failure model decides which cells leak past recovery,
//! 3. **read back** and diff against the content as written.
//!
//! Like the real instrument, the tester only manipulates *system* addresses;
//! the internal scrambling/remapping/polarity stay hidden inside the module
//! and the failure physics.

use dram::address::RowAddr;
use dram::cell::RowContent;
use dram::module::DramModule;

use crate::model::{CellFailure, CouplingFailureModel};
use crate::params::FailureModelParams;
use crate::patterns::TestPattern;
use crate::temperature::Celsius;

/// Result of a read-back comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadBackReport {
    /// Rows that changed since the fill, with the flipped bit offsets.
    pub failing_rows: Vec<(RowAddr, Vec<u64>)>,
    /// Total rows compared.
    pub total_rows: u64,
}

impl ReadBackReport {
    /// Total number of flipped bits.
    #[must_use]
    pub fn flipped_bits(&self) -> u64 {
        self.failing_rows
            .iter()
            .map(|(_, bits)| bits.len() as u64)
            .sum()
    }

    /// Number of rows containing at least one flip.
    #[must_use]
    pub fn failing_row_count(&self) -> u64 {
        self.failing_rows.len() as u64
    }

    /// Fraction of rows containing at least one flip.
    #[must_use]
    pub fn failing_row_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.failing_row_count() as f64 / self.total_rows as f64
        }
    }

    /// Whether the test observed no failures at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failing_rows.is_empty()
    }
}

/// The fill → idle → read-back instrument.
#[derive(Debug, Clone)]
pub struct ChipTester {
    module: DramModule,
    model: CouplingFailureModel,
    temperature: Celsius,
    golden: Vec<RowContent>,
    /// Worker count for the idle/read-back sweeps (0 = resolve via
    /// [`memutil::par::jobs`]).
    jobs: usize,
}

impl ChipTester {
    /// Wraps a module with the given failure-model parameters at the 85 °C
    /// reference temperature.
    #[must_use]
    pub fn new(module: DramModule, params: FailureModelParams) -> Self {
        ChipTester::with_model(module, CouplingFailureModel::new(params))
    }

    /// Wraps a module with an existing model, sharing its vulnerable-cell
    /// cache — use this when an oracle or a prior sweep has already paid
    /// for the chip's cell structure.
    #[must_use]
    pub fn with_model(module: DramModule, model: CouplingFailureModel) -> Self {
        let golden = (0..module.geometry().total_rows())
            .map(|id| module.read_row_id(id).clone())
            .collect();
        ChipTester {
            module,
            model,
            temperature: Celsius::REFERENCE,
            golden,
            jobs: 0,
        }
    }

    /// Sets the ambient test temperature (the paper tests at 45 °C with a
    /// 4 s interval, equivalent to 328 ms at 85 °C).
    #[must_use]
    pub fn with_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = temperature;
        self
    }

    /// Sets the worker count for the idle/read-back sweeps (`0` resolves
    /// via [`memutil::par::jobs`], `1` is the exact sequential path). The
    /// reports are bit-identical at any value — see [`memutil::par`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The module under test.
    #[must_use]
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// The failure model in use.
    #[must_use]
    pub fn model(&self) -> &CouplingFailureModel {
        &self.model
    }

    /// Consumes the tester, returning the module in its current state.
    #[must_use]
    pub fn into_module(self) -> DramModule {
        self.module
    }

    fn snapshot(&mut self) {
        for (id, slot) in self.golden.iter_mut().enumerate() {
            *slot = self.module.read_row_id(id as u64).clone();
        }
    }

    /// Fills the module with a test pattern and snapshots it as the golden
    /// image.
    pub fn fill_pattern(&mut self, pattern: &TestPattern) {
        pattern.fill(&mut self.module);
        self.snapshot();
    }

    /// Fills the module with arbitrary per-row content and snapshots it.
    pub fn fill_with(&mut self, f: impl FnMut(u64) -> RowContent) {
        self.module.fill_with(f);
        self.snapshot();
    }

    /// Lets the module sit unrefreshed for `interval_ms` of wall time at the
    /// ambient temperature. Failing cells flip in the module content; the
    /// failures are also returned directly (the physics-side view — a real
    /// instrument would only learn them from [`ChipTester::read_back`]).
    pub fn idle_ms(&mut self, interval_ms: f64) -> Vec<CellFailure> {
        let equivalent = self.temperature.equivalent_interval_ms(interval_ms);
        let failures = self
            .model
            .evaluate_module_with_jobs(&self.module, equivalent, self.jobs);
        self.model.apply(&mut self.module, &failures);
        failures
    }

    /// Reads every row back and diffs against the golden image.
    ///
    /// The golden-vs-readback diff fans out over chunked row ranges on the
    /// [`memutil::par`] pool; rows are reduced in row-id order, so the
    /// report is bit-identical to the sequential sweep at any worker count.
    #[must_use]
    pub fn read_back(&self) -> ReadBackReport {
        let g = *self.module.geometry();
        let per_row = memutil::par::ordered_map_with(self.jobs, g.total_rows() as usize, |i| {
            let id = i as u64;
            let diff = self.golden[i].diff_bits(self.module.read_row_id(id));
            (!diff.is_empty()).then(|| (RowAddr::from_row_id(id, &g), diff))
        });
        ReadBackReport {
            failing_rows: per_row.into_iter().flatten().collect(),
            total_rows: g.total_rows(),
        }
    }

    /// Restores the golden image (models refreshing/rewriting the rows
    /// before the next test).
    pub fn restore(&mut self) {
        for (id, row) in self.golden.iter().enumerate() {
            *self
                .module
                .row_mut(RowAddr::from_row_id(id as u64, self.module.geometry()))
                .expect("golden rows are in range") = row.clone();
        }
    }

    /// Runs a whole pattern suite: for each pattern, fill → idle →
    /// read back, returning the per-pattern report.
    ///
    /// Patterns fan out across the pool, each on its own tester clone —
    /// sound because `fill` overwrites every row, so each pattern's report
    /// depends only on the pattern and the chip identity, never on the
    /// previous pattern's residue. The tester is left in the last
    /// pattern's post-test state, exactly as the sequential loop leaves it.
    pub fn run_suite(
        &mut self,
        patterns: &[TestPattern],
        interval_ms: f64,
    ) -> Vec<(TestPattern, ReadBackReport)> {
        let mut runs = memutil::par::ordered_map_with(self.jobs, patterns.len(), |i| {
            let mut tester = self.clone().with_jobs(1);
            tester.fill_pattern(&patterns[i]);
            let _ = tester.idle_ms(interval_ms);
            let report = tester.read_back();
            (tester, (patterns[i], report))
        });
        let mut out = Vec::with_capacity(runs.len());
        if let Some((last, _)) = runs.last_mut() {
            std::mem::swap(&mut self.module, &mut last.module);
            std::mem::swap(&mut self.golden, &mut last.golden);
        }
        for (_, result) in runs {
            out.push(result);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::geometry::DramGeometry;
    use dram::timing::TimingParams;

    fn tester(seed: u64) -> ChipTester {
        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), seed);
        ChipTester::new(module, FailureModelParams::calibrated())
    }

    #[test]
    fn clean_before_idle() {
        let mut t = tester(1);
        t.fill_pattern(&TestPattern::Random(0));
        let report = t.read_back();
        assert!(report.is_clean());
        assert_eq!(report.total_rows, 128);
    }

    #[test]
    fn readback_matches_physics_failures() {
        let mut t = tester(2);
        t.fill_pattern(&TestPattern::Random(1));
        // Long idle at reference temperature to force failures on the tiny
        // module.
        let failures = t.idle_ms(60_000.0);
        let report = t.read_back();
        assert_eq!(report.flipped_bits(), failures.len() as u64);
        if !failures.is_empty() {
            assert!(!report.is_clean());
        }
    }

    #[test]
    fn restore_clears_failures() {
        let mut t = tester(3);
        t.fill_pattern(&TestPattern::Random(2));
        let _ = t.idle_ms(120_000.0);
        t.restore();
        assert!(t.read_back().is_clean());
    }

    #[test]
    fn temperature_scales_failure_count() {
        // The same wall-clock idle produces fewer failures when cooler.
        let mut hot = tester(4);
        hot.fill_pattern(&TestPattern::Random(3));
        let hot_fail = hot.idle_ms(120_000.0).len();

        let mut cold = tester(4).with_temperature(Celsius(45.0));
        cold.fill_pattern(&TestPattern::Random(3));
        let cold_fail = cold.idle_ms(120_000.0).len();
        assert!(
            cold_fail <= hot_fail,
            "cold {cold_fail} should not exceed hot {hot_fail}"
        );
    }

    #[test]
    fn suite_runs_all_patterns() {
        let mut t = tester(5);
        let patterns = TestPattern::suite(2);
        let results = t.run_suite(&patterns, 30_000.0);
        assert_eq!(results.len(), 10);
        for (_, report) in &results {
            assert_eq!(report.total_rows, 128);
        }
    }

    #[test]
    fn failing_row_fraction_bounds() {
        let mut t = tester(6);
        t.fill_pattern(&TestPattern::Random(7));
        let _ = t.idle_ms(500_000.0);
        let r = t.read_back();
        let f = r.failing_row_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert_eq!(r.failing_row_count() == 0, r.is_clean());
    }

    #[test]
    fn reports_are_jobs_invariant() {
        // fill → idle → read back must yield bit-identical reports at any
        // worker count, including the whole-suite sweep.
        let patterns = TestPattern::suite(1);
        let run = |jobs: usize| {
            let mut t = tester(8).with_jobs(jobs);
            let suite = t.run_suite(&patterns, 60_000.0);
            t.fill_pattern(&TestPattern::Random(9));
            let failures = t.idle_ms(60_000.0);
            (suite, failures, t.read_back())
        };
        let sequential = run(1);
        for jobs in [2usize, 8] {
            assert_eq!(sequential, run(jobs), "diverged at jobs={jobs}");
        }
    }

    #[test]
    fn with_model_shares_the_cell_cache() {
        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 12);
        let model = crate::model::CouplingFailureModel::new(FailureModelParams::calibrated());
        // Pay for the chip structure up front, as an oracle would.
        let _ = model.worst_case_failing_row_fraction(&module, 60_000.0);
        let t = ChipTester::with_model(module, model.clone());
        assert_eq!(t.model().cell_cache().chip_count(), 1);
        assert_eq!(model.cell_cache().chip_count(), 1);
    }

    #[test]
    fn hot_charge_images_never_leak_across_writes() {
        // Writes land on the module mid-suite (fill, idle's apply, restore)
        // after rows have gone hot; every report must match a tester whose
        // caches were never heated.
        let patterns = TestPattern::suite(4);
        let mut heated = tester(31);
        heated.fill_pattern(&TestPattern::Random(5));
        for _ in 0..4 {
            // Repeated physics sweeps push every row past the hot-image
            // threshold without mutating content.
            let _ = heated.model().evaluate_module(heated.module(), 60_000.0);
        }
        let mut cold = tester(31);
        cold.fill_pattern(&TestPattern::Random(5));
        assert_eq!(
            heated.run_suite(&patterns, 60_000.0),
            cold.run_suite(&patterns, 60_000.0),
            "heated tester diverged from cold across a suite"
        );
        // And the classic stale-read sequence: idle → restore → idle must
        // reproduce the first result exactly.
        heated.fill_pattern(&TestPattern::Random(6));
        let first = heated.idle_ms(60_000.0);
        heated.restore();
        let second = heated.idle_ms(60_000.0);
        assert_eq!(first, second, "restore left stale charge images behind");
    }

    #[test]
    fn empty_report_fraction_is_zero() {
        let r = ReadBackReport {
            failing_rows: vec![],
            total_rows: 0,
        };
        assert_eq!(r.failing_row_fraction(), 0.0);
    }
}
