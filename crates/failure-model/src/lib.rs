//! Data-dependent DRAM failure substrate for the MEMCON reproduction.
//!
//! The paper characterizes real DDR3 chips with an FPGA-based SoftMC
//! infrastructure: fill memory with content, let it idle for a refresh
//! interval, read it back, and count flipped bits. We do not have that
//! hardware, so this crate implements a *physically-motivated simulation* of
//! the same experiment:
//!
//! * [`params`] — the retention/coupling parameter set, calibrated so the
//!   published statistics hold (≈13.5 % of rows can fail with *some* content,
//!   0.38 %–5.6 % fail with program content — paper Fig. 4),
//! * [`model`] — the bitline-coupling failure model: every cell has a base
//!   retention time from a lognormal tail, and aggressor neighbours holding
//!   the opposite *charge* (after scrambling, remapping, and true/anti-cell
//!   polarity from the `dram` crate) accelerate its leakage,
//! * [`patterns`] — manufacturing-style test data patterns (solid, stripes,
//!   checkerboard, random) used for exhaustive "ALL FAIL" testing,
//! * [`tester`] — a SoftMC-like [`tester::ChipTester`]: fill → idle → read
//!   back, operating purely on system addresses, like the real instrument,
//! * [`content`] — synthetic SPEC CPU2006-like memory images, one statistical
//!   profile per benchmark of paper Fig. 4,
//! * [`temperature`] — the retention/temperature scaling used to map the
//!   paper's 4 s @ 45 °C test to 328 ms @ 85 °C,
//! * [`math`] — the numerically verified normal-distribution helpers the
//!   model samples with.
//!
//! The model is **opaque to the system side**: MEMCON and the memory
//! controller only ever observe "this row, with this content, at this refresh
//! interval, flips these bits", exactly as with a real chip.
//!
//! # Example
//!
//! ```
//! use dram::geometry::DramGeometry;
//! use dram::timing::TimingParams;
//! use dram::module::DramModule;
//! use failure_model::tester::ChipTester;
//! use failure_model::patterns::TestPattern;
//! use failure_model::params::FailureModelParams;
//!
//! let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 42);
//! let mut tester = ChipTester::new(module, FailureModelParams::calibrated());
//! tester.fill_pattern(&TestPattern::Checkerboard);
//! let failures = tester.idle_ms(328.0);
//! let report = tester.read_back();
//! assert_eq!(report.flipped_bits(), failures.len() as u64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod content;
pub mod math;
pub mod model;
pub mod params;
pub mod patterns;
pub mod temperature;
pub mod tester;

pub use cache::VulnerableCellCache;
pub use content::{ContentProfile, SpecBenchmark};
pub use model::{CellFailure, CouplingFailureModel};
pub use params::FailureModelParams;
pub use patterns::TestPattern;
pub use temperature::Celsius;
pub use tester::{ChipTester, ReadBackReport};
