//! Retention/temperature scaling.
//!
//! DRAM retention shortens exponentially with temperature. The paper tests
//! chips with a 4 s refresh interval at 45 °C and states this "corresponds to
//! a refresh interval of 328 ms at 85 °C" (their Section 5, following Liu et
//! al. ISCA'13). We adopt exactly that equivalence: retention scales by
//! `4000/328 ≈ 12.2×` over those 40 °C, i.e. a factor of
//! `(4000/328)^(ΔT/40)` per ΔT.

/// Reference operating temperature at which the failure model's retention
/// parameters are defined (worst-case DDR3 operating point).
pub const REFERENCE_CELSIUS: f64 = 85.0;

/// Retention multiplier across the paper's calibration pair (4 s @ 45 °C ↔
/// 328 ms @ 85 °C).
const CALIBRATION_FACTOR: f64 = 4000.0 / 328.0;
const CALIBRATION_DELTA: f64 = 40.0;

/// A temperature in degrees Celsius.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Celsius(pub f64);

impl Celsius {
    /// The paper's chip-test temperature (45 °C).
    pub const TEST: Celsius = Celsius(45.0);
    /// The worst-case operating temperature (85 °C) the model is calibrated
    /// at.
    pub const REFERENCE: Celsius = Celsius(REFERENCE_CELSIUS);

    /// Multiplier on retention time relative to the 85 °C reference: > 1 when
    /// cooler, < 1 when hotter.
    #[must_use]
    pub fn retention_scale(self) -> f64 {
        let delta = REFERENCE_CELSIUS - self.0;
        CALIBRATION_FACTOR.powf(delta / CALIBRATION_DELTA)
    }

    /// Converts a refresh interval used at this temperature into the
    /// equivalent interval at the 85 °C reference — the form the failure
    /// model consumes.
    ///
    /// `Celsius::TEST.equivalent_interval_ms(4000.0)` ≈ 328 ms, matching the
    /// paper's Section 5.
    #[must_use]
    pub fn equivalent_interval_ms(self, interval_ms: f64) -> f64 {
        interval_ms / self.retention_scale()
    }
}

impl std::fmt::Display for Celsius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}°C", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_pair() {
        let eq = Celsius::TEST.equivalent_interval_ms(4000.0);
        assert!(
            (eq - 328.0).abs() < 1e-9,
            "4 s @ 45C should be 328 ms @ 85C, got {eq}"
        );
    }

    #[test]
    fn reference_is_identity() {
        assert!((Celsius::REFERENCE.retention_scale() - 1.0).abs() < 1e-12);
        assert!((Celsius::REFERENCE.equivalent_interval_ms(64.0) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_is_harsher() {
        // At 95 °C a 64 ms interval stresses cells like a longer interval at
        // 85 °C (DDR3 doubles the refresh rate above 85 °C for this reason).
        let eq = Celsius(95.0).equivalent_interval_ms(64.0);
        assert!(eq > 64.0, "got {eq}");
        let cooler = Celsius(55.0).equivalent_interval_ms(64.0);
        assert!(cooler < 64.0, "got {cooler}");
    }

    #[test]
    fn scale_is_monotone_in_temperature() {
        let mut last = f64::INFINITY;
        for t in [25.0, 45.0, 65.0, 85.0, 95.0] {
            let s = Celsius(t).retention_scale();
            assert!(s < last, "retention must shrink as temperature rises");
            last = s;
        }
    }

    #[test]
    fn display() {
        assert_eq!(Celsius(45.0).to_string(), "45°C");
    }
}
