//! The per-chip vulnerable-cell cache behind the evaluation kernel.
//!
//! The paper's central physical fact is that vulnerable cells are *fixed
//! per chip* — only the content around them changes (Section 3). The model
//! mirrors that: [`crate::model::CouplingFailureModel::vulnerable_cells`]
//! is a pure function of `(chip_seed, rank, bank, internal_row)`, yet the
//! naive evaluation path re-ran its Poisson/RNG sampling on every sweep.
//! [`VulnerableCellCache`] materializes each internal row's cells once per
//! chip and keeps them for the lifetime of the model, together with the
//! remap results ([`dram::remap::RemapTable::physical_of`] /
//! [`dram::remap::RemapTable::live_neighbors`]) and the system-space
//! attribution of every cell — all the per-cell work that does not depend
//! on content.
//!
//! Structure: `cache → chip (keyed by seed + geometry) → bank-major row
//! slots → OnceLock<RowCells>`. Rows materialize lazily and independently,
//! so concurrent [`memutil::par`] workers (which partition sweeps by bank)
//! never contend on a lock: the chip map takes a read lock on the hot
//! path, and each row slot is a lock-free [`OnceLock`].
//!
//! Cloning a cache (or a model holding one) shares the underlying storage,
//! which is what lets `ChipTester::run_suite` clones, the Fig. 4 oracle and
//! tester, and repeated benchmark iterations all pay the RNG sampling once.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use dram::address::RowAddr;
use dram::module::DramModule;

use crate::model::VulnerableCell;
use crate::params::FailureModelParams;

/// Identity of one simulated chip: everything the cell layout depends on.
/// Two modules with equal keys are the same die, so they share cached rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ChipKey {
    chip_seed: u64,
    ranks: u8,
    banks: u8,
    rows_per_bank: u32,
    bits_per_row: u64,
}

impl ChipKey {
    fn of(module: &DramModule) -> ChipKey {
        let g = module.geometry();
        ChipKey {
            chip_seed: module.chip_seed(),
            ranks: g.ranks,
            banks: g.banks,
            rows_per_bank: g.rows_per_bank,
            bits_per_row: g.bits_per_row(),
        }
    }
}

/// One cached vulnerable cell: the sampled physics plus every content-
/// independent lookup the kernel would otherwise repeat per evaluation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachedCell {
    /// The sampled cell (retention and aggressor weights).
    pub cell: VulnerableCell,
    /// Internal bit of the live physical left neighbour — the memoized
    /// `live_neighbors(physical_of(internal_bit)).0`.
    pub left: Option<u64>,
    /// Internal bit of the live physical right neighbour.
    pub right: Option<u64>,
    /// System bit the cell's flip is observed at.
    pub sys_bit: u64,
}

/// The cached cells of one internal row.
#[derive(Debug)]
pub(crate) struct RowCells {
    /// System row the internal row is observed at.
    pub sys_row: u32,
    /// Cells sorted by `internal_bit` (stable: generation order on ties).
    pub cells: Box<[CachedCell]>,
    /// Generation-order permutation: the cell generated `g`-th is
    /// `cells[by_gen[g]]`. The kernel walks this so its output order is
    /// byte-identical to the naive sampling loop.
    pub by_gen: Box<[usize]>,
}

/// All cached rows of one chip, plus the flattened bank list the module
/// sweeps iterate (replacing the per-call `Vec<(rank, bank)>` rebuilds).
#[derive(Debug)]
pub(crate) struct ChipCells {
    rows_per_bank: usize,
    /// `(rank, bank)` in rank-major order.
    bank_list: Vec<(u8, u8)>,
    /// Bank-major row slots: `bank_idx * rows_per_bank + internal_row`.
    rows: Vec<OnceLock<RowCells>>,
}

impl ChipCells {
    fn new(module: &DramModule) -> ChipCells {
        let g = module.geometry();
        let mut bank_list = Vec::with_capacity(usize::from(g.ranks) * usize::from(g.banks));
        for rank in 0..g.ranks {
            for bank in 0..g.banks {
                bank_list.push((rank, bank));
            }
        }
        let rows_per_bank = g.rows_per_bank as usize;
        let total = bank_list.len() * rows_per_bank;
        ChipCells {
            rows_per_bank,
            bank_list,
            rows: (0..total).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The `(rank, bank)` pairs of this chip in rank-major sweep order.
    pub fn bank_list(&self) -> &[(u8, u8)] {
        &self.bank_list
    }

    /// The cached cells of one internal row, materialized on first use.
    pub fn row(
        &self,
        params: &FailureModelParams,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
    ) -> &RowCells {
        let g = module.geometry();
        let bank_idx = usize::from(rank) * usize::from(g.banks) + usize::from(bank);
        let slot = bank_idx * self.rows_per_bank + internal_row as usize;
        self.rows[slot].get_or_init(|| build_row(params, module, rank, bank, internal_row))
    }

    /// [`ChipCells::row`], counting a cold fill into `cold` when this call
    /// materializes the slot. The [`OnceLock`] init closure runs exactly
    /// once per slot process-wide, so summed cold counts are independent
    /// of worker interleaving.
    pub fn row_counted(
        &self,
        params: &FailureModelParams,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        cold: &mut u64,
    ) -> &RowCells {
        let g = module.geometry();
        let bank_idx = usize::from(rank) * usize::from(g.banks) + usize::from(bank);
        let slot = bank_idx * self.rows_per_bank + internal_row as usize;
        let mut built = false;
        let row = self.rows[slot].get_or_init(|| {
            built = true;
            build_row(params, module, rank, bank, internal_row)
        });
        if built {
            *cold += 1;
        }
        row
    }
}

fn build_row(
    params: &FailureModelParams,
    module: &DramModule,
    rank: u8,
    bank: u8,
    internal_row: u32,
) -> RowCells {
    let bits = module.geometry().bits_per_row();
    let generated =
        crate::model::sample_row_cells(params, module.chip_seed(), rank, bank, internal_row, bits);
    let probe_addr = RowAddr::new(rank, bank, 0);
    let remap = module.remap_for(probe_addr);
    let scrambler = module.scrambler_for(probe_addr);

    let mut order: Vec<usize> = (0..generated.len()).collect();
    order.sort_by_key(|&g| generated[g].internal_bit);
    let mut by_gen = vec![0usize; generated.len()];
    for (pos, &g) in order.iter().enumerate() {
        by_gen[g] = pos;
    }
    let cells = order
        .iter()
        .map(|&g| {
            let cell = generated[g];
            let (left, right) = remap.live_neighbors(remap.physical_of(cell.internal_bit));
            CachedCell {
                cell,
                left,
                right,
                sys_bit: scrambler.to_system_bit(cell.internal_bit),
            }
        })
        .collect();
    RowCells {
        sys_row: scrambler.to_system_row(internal_row),
        cells,
        by_gen: by_gen.into_boxed_slice(),
    }
}

/// Shared, lazily populated cache of every chip's vulnerable cells.
///
/// Lives inside [`crate::model::CouplingFailureModel`]; cloning the model
/// (or this cache) shares the storage. Thread-safe: sweeps partitioned by
/// bank never touch the same row slot, and the chip map is read-locked on
/// the hot path.
#[derive(Debug, Clone, Default)]
pub struct VulnerableCellCache {
    inner: Arc<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    chips: RwLock<HashMap<ChipKey, Arc<ChipCells>>>,
}

impl VulnerableCellCache {
    /// The cached cell structure of `module`'s chip, created on first use.
    pub(crate) fn chip(&self, module: &DramModule) -> Arc<ChipCells> {
        let key = ChipKey::of(module);
        if let Some(chip) = self
            .inner
            .chips
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(chip);
        }
        let mut chips = self
            .inner
            .chips
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(chips.entry(key).or_insert_with(|| {
            telemetry::count("failure_model.cache.chip_builds", 1);
            Arc::new(ChipCells::new(module))
        }))
    }

    /// Number of chips with cached structure (diagnostics/tests).
    #[must_use]
    pub fn chip_count(&self) -> usize {
        self.inner
            .chips
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::geometry::DramGeometry;
    use dram::timing::TimingParams;

    #[test]
    fn cached_rows_match_direct_sampling() {
        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 77);
        let params = FailureModelParams::calibrated();
        let cache = VulnerableCellCache::default();
        let chip = cache.chip(&module);
        let bits = module.geometry().bits_per_row();
        for &(rank, bank) in chip.bank_list() {
            for internal_row in 0..module.geometry().rows_per_bank {
                let row = chip.row(&params, &module, rank, bank, internal_row);
                let direct = crate::model::sample_row_cells(
                    &params,
                    module.chip_seed(),
                    rank,
                    bank,
                    internal_row,
                    bits,
                );
                assert_eq!(row.cells.len(), direct.len());
                assert_eq!(row.by_gen.len(), direct.len());
                // `by_gen` recovers the exact generation order.
                for (g, cell) in direct.iter().enumerate() {
                    assert_eq!(&row.cells[row.by_gen[g]].cell, cell);
                }
                // Sorted invariant.
                for pair in row.cells.windows(2) {
                    assert!(pair[0].cell.internal_bit <= pair[1].cell.internal_bit);
                }
                // Precomputed remap and attribution agree with the source.
                let remap = module.remap_for(RowAddr::new(rank, bank, 0));
                let scrambler = module.scrambler_for(RowAddr::new(rank, bank, 0));
                assert_eq!(row.sys_row, scrambler.to_system_row(internal_row));
                for c in &row.cells {
                    let (l, r) = remap.live_neighbors(remap.physical_of(c.cell.internal_bit));
                    assert_eq!((c.left, c.right), (l, r));
                    assert_eq!(c.sys_bit, scrambler.to_system_bit(c.cell.internal_bit));
                }
            }
        }
    }

    #[test]
    fn bank_list_is_rank_major() {
        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 3);
        let cache = VulnerableCellCache::default();
        let chip = cache.chip(&module);
        assert_eq!(chip.bank_list(), &[(0, 0), (0, 1)]);
    }

    #[test]
    fn same_chip_shares_structure_distinct_chips_do_not() {
        let a = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 1);
        let b = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 1);
        let c = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 2);
        let cache = VulnerableCellCache::default();
        assert!(Arc::ptr_eq(&cache.chip(&a), &cache.chip(&b)));
        assert!(!Arc::ptr_eq(&cache.chip(&a), &cache.chip(&c)));
        assert_eq!(cache.chip_count(), 2);
        // A clone shares the same storage.
        let clone = cache.clone();
        assert!(Arc::ptr_eq(&clone.chip(&a), &cache.chip(&a)));
    }
}
