//! Normal-distribution numerics used by the retention model.
//!
//! The failure model samples cell retention times from the far tail of a
//! lognormal distribution. Sampling the tail by rejection would be hopeless
//! (acceptance ≈ 10⁻⁶), so we sample by inverse CDF, conditioned on the tail,
//! which needs an accurate standard-normal CDF `Φ` and quantile `Φ⁻¹`.
//!
//! * [`norm_cdf`] uses the complementary error function via the
//!   Abramowitz–Stegun 7.1.26 rational approximation (|ε| < 1.5 × 10⁻⁷),
//! * [`norm_ppf`] uses Acklam's rational approximation (relative |ε| <
//!   1.15 × 10⁻⁹) refined with one Halley step,
//! * [`poisson_sample`] draws Poisson counts for the sparse per-row
//!   vulnerable-cell sets (λ is always small here, so Knuth's method is
//!   exact and fast).

use memutil::rng::Rng;

/// Complementary error function, rational Chebyshev approximation
/// (Numerical Recipes `erfcc`), with *fractional* error below 1.2 × 10⁻⁷
/// everywhere — including deep tails, which the retention sampler lives in.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function `Φ(x)`, with relative
/// accuracy preserved in the deep negative tail (via [`erfc`]).
#[must_use]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm plus one Halley
/// refinement step).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
#[must_use]
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against the high-accuracy CDF.
    let e = norm_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let u = e / pdf;
    x - u / (1.0 + x * u / 2.0)
}

/// Draws a Poisson(λ) sample with Knuth's multiplication method.
///
/// Exact for any λ, efficient for the small λ (< 10) this crate uses.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
#[must_use]
pub fn poisson_sample<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be non-negative and finite, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Defensive: λ large enough to loop this long should use a
            // different sampler; the model never gets here.
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memutil::rng::SeedableRng;
    use memutil::rng::SmallRng;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 coefficients sum to 1 only to ~1e-9 at x = 0.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn cdf_known_values() {
        // erfc carries ~1.2e-7 fractional error, so ~6e-8 here.
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((norm_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((norm_cdf(-1.96) - 0.024_997_9).abs() < 1e-6);
        assert!((norm_cdf(2.0) - 0.977_249_9).abs() < 1e-6);
    }

    #[test]
    fn cdf_deep_tail_is_positive_and_monotone() {
        let p8 = norm_cdf(-8.0);
        let p7 = norm_cdf(-7.0);
        assert!(p8 > 0.0 && p8 < p7);
        // Reference: Φ(-8) ≈ 6.22e-16.
        assert!((p8 / 6.22e-16 - 1.0).abs() < 0.05, "got {p8}");
        // Reference: Φ(-7) ≈ 1.28e-12.
        assert!((p7 / 1.28e-12 - 1.0).abs() < 0.05, "got {p7}");
    }

    #[test]
    fn ppf_known_values() {
        assert!(norm_ppf(0.5).abs() < 1e-6);
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-5);
        assert!((norm_ppf(0.025) + 1.959_964).abs() < 1e-5);
        assert!((norm_ppf(1e-6) + 4.753_424).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn ppf_rejects_out_of_range() {
        let _ = norm_ppf(1.0);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lambda = 0.4;
        let n = 100_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(poisson_sample(&mut rng, lambda)))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - lambda).abs() < 0.01,
            "sample mean {mean} too far from {lambda}"
        );
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(poisson_sample(&mut rng, 0.0), 0);
    }

    /// Seeded property loop: the quantile function inverts the CDF to 0.1 %
    /// relative accuracy in probability space. Probabilities are drawn
    /// log-uniformly so the deep tail gets exercised, mirroring the original
    /// proptest range `1e-9..0.999_999`.
    #[test]
    fn prop_ppf_inverts_cdf() {
        use memutil::rng::Rng;
        let mut rng = SmallRng::seed_from_u64(0x3A7_0001);
        for _ in 0..512 {
            let exp = rng.gen_range(-9.0f64..-1e-7);
            let p = 10f64.powf(exp).min(0.999_999);
            let x = norm_ppf(p);
            let back = norm_cdf(x);
            assert!(
                (back - p).abs() / p.max(1e-9) < 1e-3,
                "p={p} x={x} back={back}"
            );
        }
    }

    /// Seeded property loop: the CDF is monotone non-decreasing.
    #[test]
    fn prop_cdf_monotone() {
        use memutil::rng::Rng;
        let mut rng = SmallRng::seed_from_u64(0x3A7_0002);
        for _ in 0..512 {
            let a = rng.gen_range(-10.0f64..10.0);
            let b = rng.gen_range(-10.0f64..10.0);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12, "lo={lo} hi={hi}");
        }
    }
}
