//! The bitline-coupling data-dependent failure model.
//!
//! Every DRAM cell has a *base retention time* drawn from the tail of a
//! lognormal distribution. Neighbouring cells that hold the opposite
//! **charge** act as aggressors: parasitic bitline (horizontal) and wordline
//! (vertical) coupling accelerates the victim's leakage by a per-cell weight.
//! A charged cell loses its data during a refresh interval `R` iff
//!
//! ```text
//! retention / (1 + Σ aggressor weights) < R
//! ```
//!
//! Because aggressor geometry lives in the chip's *internal* space — after
//! vendor scrambling ([`dram::scramble`]), column repair ([`dram::remap`]),
//! and true/anti-cell polarity ([`dram::cell`]) — the same system-level data
//! pattern excites different cells on every chip, which is precisely the
//! property that motivates MEMCON.
//!
//! Cells with retention far above any interval of interest can never fail,
//! so only the sparse "band" of potentially vulnerable cells is materialized,
//! deterministically per `(chip seed, rank, bank, row)`: the model is a pure
//! function of the chip identity, like real silicon.
//!
//! # Evaluation kernel
//!
//! Evaluation runs through a two-level fast path that is bit-identical to
//! the definitional one ([`CouplingFailureModel::evaluate_row_reference`],
//! kept for the equivalence tests and the `slow-reference` feature):
//!
//! * the [`crate::cache::VulnerableCellCache`] materializes each row's
//!   cells once per chip — with remap neighbours and system attribution
//!   precomputed — so a sweep pays the Poisson/RNG sampling only on its
//!   first pass and skips empty rows (the vast majority) outright;
//! * charge probes go through [`DramModule::charge_probe`] /
//!   [`DramModule::charge_image_if_hot`]: once a row's charge image is
//!   materialized, victim-vs-vertical-neighbour differences are word-wide
//!   XORs plus a bit extraction instead of five scramble/polarity walks
//!   per cell.

use std::cell::RefCell;
use std::sync::Arc;

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use dram::address::RowAddr;
use dram::module::DramModule;

use crate::cache::{ChipCells, VulnerableCellCache};
use crate::math::poisson_sample;
use crate::params::FailureModelParams;

/// One materialized potentially-vulnerable cell within a row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnerableCell {
    /// Internal (post-scramble, pre-remap) bitline index within the row.
    pub internal_bit: u64,
    /// Base retention time in seconds at the 85 °C reference.
    pub retention_s: f64,
    /// Aggressor weight of the left bitline neighbour.
    pub w_left: f64,
    /// Aggressor weight of the right bitline neighbour.
    pub w_right: f64,
    /// Aggressor weight of the wordline neighbour above.
    pub w_up: f64,
    /// Aggressor weight of the wordline neighbour below.
    pub w_down: f64,
}

impl VulnerableCell {
    /// Maximum possible aggressor sum for this cell.
    #[must_use]
    pub fn max_sum(&self) -> f64 {
        self.w_left + self.w_right + self.w_up + self.w_down
    }

    /// Whether the cell fails at `interval_ms` (85 °C-equivalent) with
    /// aggressor sum `sum`.
    #[must_use]
    pub fn fails(&self, interval_ms: f64, sum: f64) -> bool {
        self.retention_s / (1.0 + sum) * 1000.0 < interval_ms
    }

    /// Whether the cell is *weak*: it fails at `interval_ms` even with no
    /// aggressors (data-independently). The paper's footnote 1 notes these
    /// are trivially detectable; the model tracks them separately.
    #[must_use]
    pub fn is_weak(&self, interval_ms: f64) -> bool {
        self.fails(interval_ms, 0.0)
    }
}

/// One observed cell failure, in both internal and system coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellFailure {
    /// Rank of the failing cell.
    pub rank: u8,
    /// Bank of the failing cell.
    pub bank: u8,
    /// Internal row index.
    pub internal_row: u32,
    /// Internal bitline index.
    pub internal_bit: u64,
    /// System-visible row address (what the memory controller sees flip).
    pub system_row: RowAddr,
    /// System-visible bit offset within the row.
    pub system_bit: u64,
}

fn row_seed(chip_seed: u64, rank: u8, bank: u8, internal_row: u32) -> u64 {
    // splitmix64-style mixing of the coordinates.
    let mut z =
        chip_seed ^ (u64::from(rank) << 56) ^ (u64::from(bank) << 48) ^ u64::from(internal_row);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples the vulnerable cells of one internal row, in generation order.
/// Deterministic in `(chip_seed, rank, bank, internal_row)`; this is the
/// single source of truth both [`CouplingFailureModel::vulnerable_cells`]
/// and the [`VulnerableCellCache`] draw from.
pub(crate) fn sample_row_cells(
    params: &FailureModelParams,
    chip_seed: u64,
    rank: u8,
    bank: u8,
    internal_row: u32,
    bits_per_row: u64,
) -> Vec<VulnerableCell> {
    let mut rng = SmallRng::seed_from_u64(row_seed(chip_seed, rank, bank, internal_row));
    let lambda = params.cells_per_row(bits_per_row);
    let count = poisson_sample(&mut rng, lambda);
    let r_cal_s = params.calibration_interval_ms / 1000.0;
    let (h_lo, h_hi) = params.horizontal_weight;
    let (v_lo, v_hi) = params.vertical_weight;
    (0..count)
        .map(|_| {
            let internal_bit = rng.gen_range(0..bits_per_row);
            let w_left = rng.gen_range(h_lo..=h_hi);
            let w_right = rng.gen_range(h_lo..=h_hi);
            let w_up = rng.gen_range(v_lo..=v_hi);
            let w_down = rng.gen_range(v_lo..=v_hi);
            let retention_s = if rng.gen::<f64>() < params.weak_fraction {
                // Weak cell: retention just below the calibration
                // interval; fails data-independently.
                r_cal_s * rng.gen_range(0.6..1.0)
            } else {
                let max_sum = w_left + w_right + w_up + w_down;
                let u: f64 = rng.gen();
                let theta = max_sum * u.powf(params.threshold_shape);
                r_cal_s * (1.0 + theta)
            };
            VulnerableCell {
                internal_bit,
                retention_s,
                w_left,
                w_right,
                w_up,
                w_down,
            }
        })
        .collect()
}

/// Telemetry handles for one module sweep, bound before the per-bank
/// fan-out. All deterministic class: rows/banks/failure totals are pure
/// simulation state, and cold/warm fill counts come from once-only
/// `OnceLock` initialization, so summed values are independent of worker
/// interleaving.
struct EvalTelemetry {
    banks: Arc<telemetry::Counter>,
    rows: Arc<telemetry::Counter>,
    cold_fills: Arc<telemetry::Counter>,
    warm_hits: Arc<telemetry::Counter>,
    failures: Arc<telemetry::Counter>,
    bank_failures: Arc<telemetry::Histogram>,
}

impl EvalTelemetry {
    /// Bucket edges for the per-bank failure-count histogram.
    const BANK_FAILURE_EDGES: [u64; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

    /// Binds handles on the current registry, or `None` when telemetry is
    /// disabled (the sweep then runs the uninstrumented path).
    ///
    /// The six registry lookups (mutex + name maps) cost ~300 ns — real
    /// money against a single-bank sweep — so the bound handles are
    /// memoized per thread and revalidated by registry identity: repeat
    /// sweeps under the same registry pay one `current()` resolution, an
    /// identity check, and a single `Arc` bump, while a scoped-registry
    /// swap (tests, `xtask obs`) rebinds on first use.
    fn bind() -> Option<Arc<EvalTelemetry>> {
        thread_local! {
            static CACHE: RefCell<Option<(Arc<telemetry::Registry>, Arc<EvalTelemetry>)>> =
                const { RefCell::new(None) };
        }
        let r = telemetry::current();
        if !r.is_enabled() {
            return None;
        }
        CACHE.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some((bound, tm)) = slot.as_ref() {
                if Arc::ptr_eq(bound, &r) {
                    return Some(Arc::clone(tm));
                }
            }
            let tm = Arc::new(EvalTelemetry::bind_on(&r));
            *slot = Some((r, Arc::clone(&tm)));
            Some(tm)
        })
    }

    /// Uncached handle binding against one specific registry.
    fn bind_on(r: &telemetry::Registry) -> EvalTelemetry {
        let det = telemetry::Class::Deterministic;
        EvalTelemetry {
            banks: r.counter("failure_model.eval.banks", det),
            rows: r.counter("failure_model.eval.rows", det),
            cold_fills: r.counter("failure_model.cache.cold_fills", det),
            warm_hits: r.counter("failure_model.cache.warm_hits", det),
            failures: r.counter("failure_model.eval.failures", det),
            bank_failures: r.histogram(
                "failure_model.eval.bank_failures",
                det,
                &Self::BANK_FAILURE_EDGES,
            ),
        }
    }

    /// Batched per-bank update: one call per `(rank, bank)` sweep leg.
    fn note_bank(&self, rows: u64, cold: u64, failures: u64) {
        self.banks.incr();
        self.rows.add(rows);
        self.cold_fills.add(cold);
        self.warm_hits.add(rows.saturating_sub(cold));
        self.failures.add(failures);
        self.bank_failures.record(failures);
    }
}

/// The coupling failure model: the parameters plus a shared, lazily built
/// [`VulnerableCellCache`] of per-chip cell structure. Cloning shares the
/// cache; equality compares parameters only (the cache is pure memoization
/// and never affects results).
#[derive(Debug, Clone)]
pub struct CouplingFailureModel {
    params: FailureModelParams,
    cache: VulnerableCellCache,
}

impl PartialEq for CouplingFailureModel {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
    }
}

impl CouplingFailureModel {
    /// Creates a model with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    #[must_use]
    pub fn new(params: FailureModelParams) -> Self {
        params.validate().expect("invalid failure-model parameters");
        CouplingFailureModel {
            params,
            cache: VulnerableCellCache::default(),
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &FailureModelParams {
        &self.params
    }

    /// The model's vulnerable-cell cache (shared across clones).
    #[must_use]
    pub fn cell_cache(&self) -> &VulnerableCellCache {
        &self.cache
    }

    /// The materialized vulnerable cells of one internal row. Deterministic
    /// in `(chip_seed, rank, bank, internal_row)`.
    ///
    /// Each non-weak cell's retention is `R_cal · (1 + θ)` with aggression
    /// threshold `θ = Σmax_cell · u^shape`: at the calibration interval the
    /// cell fails exactly when its hostile-neighbour weight sum exceeds `θ`.
    /// Weak cells get retention just below `R_cal` and fail unconditionally
    /// (when charged).
    #[must_use]
    pub fn vulnerable_cells(
        &self,
        chip_seed: u64,
        rank: u8,
        bank: u8,
        internal_row: u32,
        bits_per_row: u64,
    ) -> Vec<VulnerableCell> {
        sample_row_cells(
            &self.params,
            chip_seed,
            rank,
            bank,
            internal_row,
            bits_per_row,
        )
    }

    /// Evaluates one internal row of `module` against the current content at
    /// an (85 °C-equivalent) refresh interval, returning the failures.
    ///
    /// Does not modify the module; see [`CouplingFailureModel::apply`] for
    /// committing the flips.
    #[must_use]
    pub fn evaluate_row(
        &self,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        interval_ms: f64,
    ) -> Vec<CellFailure> {
        let mut out = Vec::new();
        self.evaluate_row_into(module, rank, bank, internal_row, interval_ms, &mut out);
        out
    }

    /// [`CouplingFailureModel::evaluate_row`] into a caller-owned scratch
    /// vector: **appends** this row's failures to `out` (clear it first for
    /// a fresh result). Lets sweeps and oracles reuse one allocation.
    pub fn evaluate_row_into(
        &self,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        interval_ms: f64,
        out: &mut Vec<CellFailure>,
    ) {
        let chip = self.cache.chip(module);
        self.eval_row_cached(&chip, module, rank, bank, internal_row, interval_ms, out);
    }

    /// The cached word-parallel evaluation kernel. Bit-identical to
    /// [`CouplingFailureModel::evaluate_row_reference`]: cells are walked in
    /// generation order (via the cache's `by_gen` permutation) and aggressor
    /// weights are summed left, right, up, down, so both the failure list
    /// and every f64 accumulation match the definitional path exactly.
    #[allow(clippy::too_many_arguments)]
    fn eval_row_cached(
        &self,
        chip: &ChipCells,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        interval_ms: f64,
        out: &mut Vec<CellFailure>,
    ) {
        let row = chip.row(&self.params, module, rank, bank, internal_row);
        self.eval_row_cells(row, module, rank, bank, internal_row, interval_ms, out);
    }

    /// The kernel body proper, on already-fetched cached cells — split out
    /// so the telemetry path can fetch rows through
    /// [`ChipCells::row_counted`] without duplicating the evaluation.
    #[allow(clippy::too_many_arguments)]
    fn eval_row_cells(
        &self,
        row: &crate::cache::RowCells,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        interval_ms: f64,
        out: &mut Vec<CellFailure>,
    ) {
        if row.cells.is_empty() {
            return; // most rows: no vulnerable cells, no content probes
        }
        let rows_per_bank = module.geometry().rows_per_bank;
        let victim_img = module.charge_image_if_hot(rank, bank, internal_row);
        let up_img = (internal_row > 0)
            .then(|| module.charge_image_if_hot(rank, bank, internal_row - 1))
            .flatten();
        let down_img = (internal_row + 1 < rows_per_bank)
            .then(|| module.charge_image_if_hot(rank, bank, internal_row + 1))
            .flatten();
        let probe = |img: &Option<Arc<[u64]>>, r: u32, bit: u64| -> bool {
            match img {
                Some(words) => (words[(bit >> 6) as usize] >> (bit & 63)) & 1 == 1,
                None => module.charge_probe(rank, bank, r, bit),
            }
        };
        for &pos in row.by_gen.iter() {
            let c = &row.cells[pos];
            let bit = c.cell.internal_bit;
            let victim_charged = probe(&victim_img, internal_row, bit);
            if !victim_charged {
                continue; // only charged cells leak to a flip
            }
            let mut sum = 0.0;
            if let Some(lb) = c.left {
                if probe(&victim_img, internal_row, lb) != victim_charged {
                    sum += c.cell.w_left;
                }
            }
            if let Some(rb) = c.right {
                if probe(&victim_img, internal_row, rb) != victim_charged {
                    sum += c.cell.w_right;
                }
            }
            if internal_row > 0 {
                let hostile = match (&victim_img, &up_img) {
                    // Word-wide XOR: both polarities are baked into the
                    // images, so a set difference bit *is* a charge
                    // difference.
                    (Some(v), Some(u)) => {
                        let wi = (bit >> 6) as usize;
                        ((v[wi] ^ u[wi]) >> (bit & 63)) & 1 == 1
                    }
                    _ => probe(&up_img, internal_row - 1, bit) != victim_charged,
                };
                if hostile {
                    sum += c.cell.w_up;
                }
            }
            if internal_row + 1 < rows_per_bank {
                let hostile = match (&victim_img, &down_img) {
                    (Some(v), Some(d)) => {
                        let wi = (bit >> 6) as usize;
                        ((v[wi] ^ d[wi]) >> (bit & 63)) & 1 == 1
                    }
                    _ => probe(&down_img, internal_row + 1, bit) != victim_charged,
                };
                if hostile {
                    sum += c.cell.w_down;
                }
            }
            if c.cell.fails(interval_ms, sum) {
                out.push(CellFailure {
                    rank,
                    bank,
                    internal_row,
                    internal_bit: bit,
                    system_row: RowAddr::new(rank, bank, row.sys_row),
                    system_bit: c.sys_bit,
                });
            }
        }
    }

    /// The definitional (uncached, probe-at-a-time) row evaluation the
    /// kernel is tested against. Kept under `cfg(test)` and the
    /// `slow-reference` feature so external users can cross-check too.
    #[cfg(any(test, feature = "slow-reference"))]
    #[must_use]
    pub fn evaluate_row_reference(
        &self,
        module: &DramModule,
        rank: u8,
        bank: u8,
        internal_row: u32,
        interval_ms: f64,
    ) -> Vec<CellFailure> {
        let g = *module.geometry();
        let bits = g.bits_per_row();
        let rows = g.rows_per_bank;
        let probe_addr = RowAddr::new(rank, bank, 0);
        let remap = module.remap_for(probe_addr);
        let mut out = Vec::new();
        for cell in self.vulnerable_cells(module.chip_seed(), rank, bank, internal_row, bits) {
            let victim_charged =
                module.charge_at_internal(rank, bank, internal_row, cell.internal_bit);
            if !victim_charged {
                continue; // only charged cells leak to a flip
            }
            let phys = remap.physical_of(cell.internal_bit);
            let (left, right) = remap.live_neighbors(phys);
            let mut sum = 0.0;
            if let Some(lb) = left {
                if module.charge_at_internal(rank, bank, internal_row, lb) != victim_charged {
                    sum += cell.w_left;
                }
            }
            if let Some(rb) = right {
                if module.charge_at_internal(rank, bank, internal_row, rb) != victim_charged {
                    sum += cell.w_right;
                }
            }
            if internal_row > 0
                && module.charge_at_internal(rank, bank, internal_row - 1, cell.internal_bit)
                    != victim_charged
            {
                sum += cell.w_up;
            }
            if internal_row + 1 < rows
                && module.charge_at_internal(rank, bank, internal_row + 1, cell.internal_bit)
                    != victim_charged
            {
                sum += cell.w_down;
            }
            if cell.fails(interval_ms, sum) {
                let (system_row, system_bit) =
                    module.internal_to_system(rank, bank, internal_row, cell.internal_bit);
                out.push(CellFailure {
                    rank,
                    bank,
                    internal_row,
                    internal_bit: cell.internal_bit,
                    system_row,
                    system_bit,
                });
            }
        }
        out
    }

    /// Evaluates the *system-addressed* row `addr` (translating through the
    /// chip's scrambler to the internal row) against the current content at
    /// `interval_ms` — the view an online tester like MEMCON has.
    #[must_use]
    pub fn evaluate_system_row(
        &self,
        module: &DramModule,
        addr: RowAddr,
        interval_ms: f64,
    ) -> Vec<CellFailure> {
        let internal_row = module.scrambler_for(addr).to_internal_row(addr.row);
        self.evaluate_row(module, addr.rank, addr.bank, internal_row, interval_ms)
    }

    /// Evaluates every row of the module, returning all failures for the
    /// current content at `interval_ms`.
    ///
    /// Runs on the [`memutil::par`] pool at the globally resolved worker
    /// count; see [`CouplingFailureModel::evaluate_module_with_jobs`] for
    /// the determinism contract.
    #[must_use]
    pub fn evaluate_module(&self, module: &DramModule, interval_ms: f64) -> Vec<CellFailure> {
        self.evaluate_module_with_jobs(module, interval_ms, 0)
    }

    /// [`CouplingFailureModel::evaluate_module`] with an explicit worker
    /// count (`jobs = 0` resolves automatically, `jobs = 1` is the plain
    /// sequential loop).
    ///
    /// The sweep fans out per `(rank, bank)` — over the chip cache's
    /// prebuilt bank list — and reduces the per-bank failure lists in
    /// rank-major order, so the result is bit-identical to the sequential
    /// rank → bank → row iteration at any `jobs`.
    #[must_use]
    pub fn evaluate_module_with_jobs(
        &self,
        module: &DramModule,
        interval_ms: f64,
        jobs: usize,
    ) -> Vec<CellFailure> {
        let rows_per_bank = module.geometry().rows_per_bank;
        let chip = self.cache.chip(module);
        let banks = chip.bank_list();
        // Telemetry handles are bound once, outside the fan-out (pool
        // workers must not consult the process-wide current registry);
        // when disabled the per-bank closure is the exact pre-telemetry
        // code path plus one `Option` check.
        let tm = EvalTelemetry::bind();
        // The fault plan is likewise hoisted: when disabled this is one
        // relaxed atomic load and the sweep is the exact pre-fault code
        // path. Injection is *keyed* per (rank, bank, row) — a pure hash of
        // the plan seed — so the result stays bit-identical at any `jobs`.
        let fault_plan = if faultinject::enabled() {
            faultinject::active_plan()
        } else {
            None
        };
        let bits_per_row = module.geometry().words_per_row() as u64 * 64;
        let inject = |rank: u8, bank: u8, row: u32, out: &mut Vec<CellFailure>| {
            let Some(plan) = &fault_plan else { return };
            let key = (u64::from(rank) << 44) | (u64::from(bank) << 36) | u64::from(row);
            if plan.fires(faultinject::Site::DramBitFlip, key) {
                // A transient flip manifests as one extra failing cell.
                let internal_bit = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % bits_per_row;
                let (system_row, system_bit) =
                    module.internal_to_system(rank, bank, row, internal_bit);
                out.push(CellFailure {
                    rank,
                    bank,
                    internal_row: row,
                    internal_bit,
                    system_row,
                    system_bit,
                });
            }
        };
        memutil::par::ordered_flat_map_with(jobs, banks.len(), |i| {
            let (rank, bank) = banks[i];
            let mut out = Vec::new();
            if let Some(tm) = &tm {
                let mut cold = 0u64;
                for row in 0..rows_per_bank {
                    let cells = chip.row_counted(&self.params, module, rank, bank, row, &mut cold);
                    self.eval_row_cells(cells, module, rank, bank, row, interval_ms, &mut out);
                    inject(rank, bank, row, &mut out);
                }
                tm.note_bank(u64::from(rows_per_bank), cold, out.len() as u64);
            } else {
                for row in 0..rows_per_bank {
                    self.eval_row_cached(&chip, module, rank, bank, row, interval_ms, &mut out);
                    inject(rank, bank, row, &mut out);
                }
            }
            out
        })
    }

    /// Commits a set of failures to the module content: each failing
    /// (charged) cell discharges, flipping its system-visible bit.
    pub fn apply(&self, module: &mut DramModule, failures: &[CellFailure]) {
        for f in failures {
            module
                .row_mut(f.system_row)
                .expect("failure address must be valid")
                .flip_bit(f.system_bit);
        }
    }

    /// Physics-side oracle: can this internal row fail at `interval_ms` with
    /// *some* data content (the paper's "ALL FAIL" reference)? True iff some
    /// vulnerable cell fails under maximal aggression.
    #[must_use]
    pub fn row_can_fail(
        &self,
        chip_seed: u64,
        rank: u8,
        bank: u8,
        internal_row: u32,
        bits_per_row: u64,
        interval_ms: f64,
    ) -> bool {
        self.vulnerable_cells(chip_seed, rank, bank, internal_row, bits_per_row)
            .iter()
            .any(|c| c.fails(interval_ms, c.max_sum()))
    }

    /// Physics-side oracle: fraction of rows in the module that can fail at
    /// `interval_ms` with some content.
    #[must_use]
    pub fn worst_case_failing_row_fraction(&self, module: &DramModule, interval_ms: f64) -> f64 {
        self.worst_case_failing_row_fraction_with_jobs(module, interval_ms, 0)
    }

    /// [`CouplingFailureModel::worst_case_failing_row_fraction`] with an
    /// explicit worker count (`jobs = 0` resolves automatically). Fans out
    /// per `(rank, bank)` over the cached cells (content never matters
    /// here, so the cache answers directly); the per-bank failing-row
    /// counts are integers, so the reduction is exact at any `jobs`.
    #[must_use]
    pub fn worst_case_failing_row_fraction_with_jobs(
        &self,
        module: &DramModule,
        interval_ms: f64,
        jobs: usize,
    ) -> f64 {
        let g = *module.geometry();
        let chip = self.cache.chip(module);
        let banks = chip.bank_list();
        let per_bank = memutil::par::ordered_map_with(jobs, banks.len(), |i| {
            let (rank, bank) = banks[i];
            (0..g.rows_per_bank)
                .filter(|&row| {
                    chip.row(&self.params, module, rank, bank, row)
                        .cells
                        .iter()
                        .any(|c| c.cell.fails(interval_ms, c.cell.max_sum()))
                })
                .count() as u64
        });
        per_bank.iter().sum::<u64>() as f64 / g.total_rows() as f64
    }
}

impl Default for CouplingFailureModel {
    fn default() -> Self {
        CouplingFailureModel::new(FailureModelParams::calibrated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::cell::RowContent;
    use dram::geometry::DramGeometry;
    use dram::timing::TimingParams;
    use memutil::rng::SeedableRng;
    use memutil::rng::SmallRng;

    fn test_module(seed: u64) -> DramModule {
        // 2 banks x 64 rows x 256 B rows (2048 bits): small but non-trivial.
        DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), seed)
    }

    #[test]
    fn vulnerable_cells_are_deterministic() {
        let m = CouplingFailureModel::default();
        let a = m.vulnerable_cells(7, 0, 1, 33, 65_536);
        let b = m.vulnerable_cells(7, 0, 1, 33, 65_536);
        assert_eq!(a, b);
    }

    #[test]
    fn vulnerable_cells_differ_across_rows_and_chips() {
        let m = CouplingFailureModel::default();
        // Over many rows, at least some must have distinct cell sets per chip.
        let count = |seed: u64| -> usize {
            (0..2000u32)
                .map(|r| m.vulnerable_cells(seed, 0, 0, r, 65_536).len())
                .sum()
        };
        let a = count(1);
        let b = count(2);
        // Poisson sums with different seeds virtually never collide exactly
        // AND have identical per-row layouts; compare layouts directly.
        let la: Vec<_> = (0..2000u32)
            .map(|r| m.vulnerable_cells(1, 0, 0, r, 65_536))
            .collect();
        let lb: Vec<_> = (0..2000u32)
            .map(|r| m.vulnerable_cells(2, 0, 0, r, 65_536))
            .collect();
        assert_ne!(la, lb, "counts were {a} vs {b}");
    }

    #[test]
    fn cell_count_matches_poisson_rate() {
        let m = CouplingFailureModel::default();
        let bits = 65_536u64;
        let rows = 20_000u32;
        let total: usize = (0..rows)
            .map(|r| m.vulnerable_cells(99, 0, 0, r, bits).len())
            .sum();
        let expected = m.params().cells_per_row(bits) * f64::from(rows);
        let got = total as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt().max(1.0),
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn retention_samples_stay_in_band() {
        let m = CouplingFailureModel::default();
        let r_cal = m.params().calibration_interval_ms / 1000.0;
        let max = r_cal * (1.0 + m.params().max_aggressor_sum());
        for r in 0..5000u32 {
            for c in m.vulnerable_cells(3, 0, 0, r, 65_536) {
                assert!(c.retention_s > 0.0);
                assert!(
                    c.retention_s <= max * 1.0001,
                    "retention {} above band",
                    c.retention_s
                );
                if c.is_weak(m.params().calibration_interval_ms) {
                    assert!(c.retention_s < r_cal);
                } else {
                    assert!(c.retention_s >= r_cal);
                    // Threshold semantics: fails at calibration interval
                    // under maximal aggression.
                    assert!(c.fails(m.params().calibration_interval_ms, c.max_sum() + 1e-9));
                }
            }
        }
    }

    #[test]
    fn weak_cells_are_rare_compared_to_band() {
        let m = CouplingFailureModel::default();
        let mut band = 0u64;
        let mut weak = 0u64;
        for r in 0..50_000u32 {
            for c in m.vulnerable_cells(5, 0, 0, r, 65_536) {
                band += 1;
                if c.is_weak(328.0) {
                    weak += 1;
                }
            }
        }
        assert!(band > 0);
        assert!(
            (weak as f64) < 0.25 * band as f64,
            "weak {weak} of {band} band cells"
        );
    }

    #[test]
    fn no_failures_with_zero_interval() {
        let m = CouplingFailureModel::default();
        let module = test_module(11);
        assert!(m.evaluate_module(&module, 0.0).is_empty());
    }

    #[test]
    fn failures_monotone_in_interval() {
        let m = CouplingFailureModel::default();
        let mut module = test_module(13);
        // Random content maximizes aggressor excitation.
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(0);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        let mut last = 0;
        for interval in [64.0, 328.0, 1000.0, 4000.0, 16_000.0] {
            let n = m.evaluate_module(&module, interval).len();
            assert!(
                n >= last,
                "failure count must grow with interval: {n} < {last} at {interval}"
            );
            last = n;
        }
    }

    #[test]
    fn worst_case_dominates_any_content() {
        let m = CouplingFailureModel::default();
        let mut module = test_module(17);
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(1);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        let interval = 4000.0;
        let failures = m.evaluate_module(&module, interval);
        for f in &failures {
            assert!(
                m.row_can_fail(
                    module.chip_seed(),
                    f.rank,
                    f.bank,
                    f.internal_row,
                    module.geometry().bits_per_row(),
                    interval
                ),
                "observed failure in a row the oracle says cannot fail"
            );
        }
    }

    #[test]
    fn apply_flips_exactly_the_failing_bits() {
        let m = CouplingFailureModel::default();
        let mut module = test_module(19);
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(2);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        let golden = module.clone();
        let failures = m.evaluate_module(&module, 16_000.0);
        let unique: std::collections::HashSet<_> = failures
            .iter()
            .map(|f| (f.system_row, f.system_bit))
            .collect();
        assert_eq!(unique.len(), failures.len(), "duplicate failure records");
        m.apply(&mut module, &failures);
        let mut flipped = 0u64;
        for id in 0..module.geometry().total_rows() {
            flipped += golden
                .read_row_id(id)
                .hamming_distance(module.read_row_id(id));
        }
        assert_eq!(flipped, failures.len() as u64);
    }

    #[test]
    fn evaluate_module_is_jobs_invariant() {
        // The parallel engine's determinism contract: bit-identical output
        // at any worker count, across several chip seeds and contents.
        let m = CouplingFailureModel::default();
        for seed in [11u64, 29, 47] {
            let mut module = test_module(seed);
            let words = module.geometry().words_per_row();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
            module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
            let sequential = m.evaluate_module_with_jobs(&module, 16_000.0, 1);
            for jobs in [2usize, 8] {
                let parallel = m.evaluate_module_with_jobs(&module, 16_000.0, jobs);
                assert_eq!(sequential, parallel, "seed {seed} diverged at jobs={jobs}");
            }
            let frac1 = m.worst_case_failing_row_fraction_with_jobs(&module, 16_000.0, 1);
            for jobs in [2usize, 8] {
                let fracn = m.worst_case_failing_row_fraction_with_jobs(&module, 16_000.0, jobs);
                assert_eq!(
                    frac1.to_bits(),
                    fracn.to_bits(),
                    "seed {seed}: fraction diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn failures_are_content_dependent() {
        // The headline property (paper Fig. 3): the same chip fails in
        // different cells under different content. Use a module large enough
        // to hold a few dozen vulnerable cells.
        let m = CouplingFailureModel::default();
        let g = dram::geometry::DramGeometry {
            ranks: 1,
            chips_per_rank: 1,
            banks: 2,
            rows_per_bank: 512,
            row_bytes: 1024,
            block_bytes: 64,
            density: dram::geometry::ChipDensity::Gb8,
        };
        let mut module = DramModule::new(g, TimingParams::ddr3_1600(), 23);
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(3);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        let a: std::collections::HashSet<_> = m
            .evaluate_module(&module, 60_000.0)
            .into_iter()
            .map(|f| (f.system_row, f.system_bit))
            .collect();
        module.fill_with(|_| RowContent::zeroed(words));
        let b: std::collections::HashSet<_> = m
            .evaluate_module(&module, 60_000.0)
            .into_iter()
            .map(|f| (f.system_row, f.system_bit))
            .collect();
        assert!(!a.is_empty(), "random content should trigger failures");
        assert_ne!(a, b, "failure sets should depend on content");
    }

    /// Reference sweep in the exact order `evaluate_module_with_jobs`
    /// promises: rank-major banks, then rows.
    fn reference_sweep(
        m: &CouplingFailureModel,
        module: &DramModule,
        interval_ms: f64,
    ) -> Vec<CellFailure> {
        let g = *module.geometry();
        let mut out = Vec::new();
        for rank in 0..g.ranks {
            for bank in 0..g.banks {
                for row in 0..g.rows_per_bank {
                    out.extend(m.evaluate_row_reference(module, rank, bank, row, interval_ms));
                }
            }
        }
        out
    }

    #[test]
    fn cached_kernel_matches_reference_exactly() {
        // The tentpole's equivalence contract: across seeds, content
        // profiles, intervals, worker counts, and repeated passes (which
        // drive rows through the cold → hot charge-image transition), the
        // cached kernel returns a byte-identical Vec<CellFailure> — order
        // included — to the definitional probe-at-a-time path.
        let g = DramGeometry {
            ranks: 1,
            chips_per_rank: 1,
            banks: 2,
            rows_per_bank: 512,
            row_bytes: 1024,
            block_bytes: 64,
            density: dram::geometry::ChipDensity::Gb8,
        };
        for seed in [5u64, 21] {
            for profile in 0..3u8 {
                let mut module = DramModule::new(g, TimingParams::ddr3_1600(), seed);
                let words = module.geometry().words_per_row();
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
                match profile {
                    0 => module.fill_with(|_| RowContent::zeroed(words)),
                    1 => module.fill_with(|_| {
                        RowContent::from_words((0..words).map(|_| rng.gen()).collect())
                    }),
                    _ => module
                        .fill_with(|_| RowContent::from_words(vec![0xAAAA_AAAA_AAAA_AAAA; words])),
                }
                let m = CouplingFailureModel::default();
                for interval_ms in [328.0, 60_000.0] {
                    let expect = reference_sweep(&m, &module, interval_ms);
                    for pass in 0..5 {
                        for jobs in [1usize, 2, 8] {
                            let got = m.evaluate_module_with_jobs(&module, interval_ms, jobs);
                            assert_eq!(
                                got, expect,
                                "seed {seed} profile {profile} interval {interval_ms} \
                                 pass {pass} jobs {jobs} diverged from reference"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn evaluate_row_into_appends() {
        let m = CouplingFailureModel::default();
        let g = DramGeometry {
            ranks: 1,
            chips_per_rank: 1,
            banks: 2,
            rows_per_bank: 512,
            row_bytes: 1024,
            block_bytes: 64,
            density: dram::geometry::ChipDensity::Gb8,
        };
        let mut module = DramModule::new(g, TimingParams::ddr3_1600(), 23);
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(3);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        let mut out = Vec::new();
        let mut expect = Vec::new();
        for bank in 0..module.geometry().banks {
            for row in 0..module.geometry().rows_per_bank {
                m.evaluate_row_into(&module, 0, bank, row, 60_000.0, &mut out);
                expect.extend(m.evaluate_row(&module, 0, bank, row, 60_000.0));
            }
        }
        assert!(!out.is_empty(), "expected some failures at 60 s");
        assert_eq!(out, expect);
    }

    #[test]
    fn kernel_tracks_writes_between_sweeps() {
        // A write landing between sweeps must be visible to the kernel even
        // after rows have gone hot (charge images are invalidated by the
        // module; the cell cache is content-independent by construction).
        let m = CouplingFailureModel::default();
        let mut module = test_module(29);
        let words = module.geometry().words_per_row();
        let mut rng = SmallRng::seed_from_u64(7);
        module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
        for _ in 0..4 {
            let _ = m.evaluate_module(&module, 16_000.0); // heat the images
        }
        module.fill_with(|_| RowContent::zeroed(words));
        let got = m.evaluate_module_with_jobs(&module, 16_000.0, 1);
        let expect = reference_sweep(&m, &module, 16_000.0);
        assert_eq!(got, expect, "kernel served stale content after a write");
    }
}
