//! Fault-injected module evaluation.
//!
//! Lives in its own integration-test binary (= its own process) and uses a
//! single `#[test]` because it installs a process-global
//! [`faultinject::FaultPlan`]; concurrent tests in the same process would
//! see the injected faults leak into their assertions.

use std::sync::Arc;

use dram::geometry::DramGeometry;
use dram::module::DramModule;
use dram::timing::TimingParams;
use failure_model::model::CouplingFailureModel;
use faultinject::{FaultPlan, Site, SiteSpec};

#[test]
fn injected_bit_flips_add_failures_stay_jobs_invariant_and_uninstall_cleanly() {
    let m = CouplingFailureModel::default();
    let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 0xFA_11);
    let organic = m.evaluate_module(&module, 16_000.0);

    let plan = Arc::new(FaultPlan::new(0xBEEF).with_site(Site::DramBitFlip, SiteSpec::rate(0.25)));
    let faulted = {
        let _guard = faultinject::install(plan);
        let faulted = m.evaluate_module_with_jobs(&module, 16_000.0, 1);
        assert!(
            faulted.len() > organic.len(),
            "a 25% per-row flip rate must add failures: {} vs {}",
            faulted.len(),
            organic.len()
        );
        // Keyed decisions are a pure hash of (seed, site, row key): any
        // worker count and any repetition produce the identical list.
        for jobs in [2, 8] {
            assert_eq!(
                faulted,
                m.evaluate_module_with_jobs(&module, 16_000.0, jobs),
                "jobs={jobs} diverged"
            );
        }
        assert_eq!(faulted, m.evaluate_module_with_jobs(&module, 16_000.0, 1));
        faulted
    };
    // Dropping the guard restores the organic sweep bit-for-bit.
    assert!(faulted.len() > organic.len());
    assert_eq!(organic, m.evaluate_module(&module, 16_000.0));
}
