//! The write-interval distribution: a short-burst / bounded-Pareto mixture.
//!
//! Paper Section 4.1: write intervals are bimodal — the overwhelming
//! majority are sub-millisecond (bursts of writes to a hot page), while the
//! remainder follow a heavy Pareto tail `P(X > x) = k·x^(−α)` whose rare,
//! very long intervals dominate total time. The mixture here is:
//!
//! * with probability `p_short`: a log-uniform interval in
//!   `[short_lo_ms, short_hi_ms)` (< 1 ms),
//! * otherwise: a [`BoundedPareto`] interval starting at 1 ms.
//!
//! The bounded Pareto keeps every moment finite (α ≤ 1 has infinite mean
//! unbounded) and models the fact that a trace of finite length cannot
//! contain hour-long intervals.

use memutil::rng::Rng;

/// A Pareto distribution truncated to `[xm_ms, cap_ms]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Scale (minimum value), in milliseconds.
    pub xm_ms: f64,
    /// Tail index α; smaller = heavier tail.
    pub alpha: f64,
    /// Upper truncation, in milliseconds.
    pub cap_ms: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < xm_ms < cap_ms` and `alpha > 0`.
    #[must_use]
    pub fn new(xm_ms: f64, alpha: f64, cap_ms: f64) -> Self {
        assert!(xm_ms > 0.0 && cap_ms > xm_ms, "need 0 < xm < cap");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto {
            xm_ms,
            alpha,
            cap_ms,
        }
    }

    /// Complementary CDF `P(X > x)`.
    #[must_use]
    pub fn ccdf(&self, x_ms: f64) -> f64 {
        if x_ms <= self.xm_ms {
            return 1.0;
        }
        if x_ms >= self.cap_ms {
            return 0.0;
        }
        let num =
            (self.xm_ms / x_ms).powf(self.alpha) - (self.xm_ms / self.cap_ms).powf(self.alpha);
        let den = 1.0 - (self.xm_ms / self.cap_ms).powf(self.alpha);
        num / den
    }

    /// Inverse-CDF sample. One-shot convenience over [`BoundedPareto::sampler`];
    /// draws exactly one uniform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sampler().sample(rng)
    }

    /// A sampler with the distribution constants (truncation ratio, inverse
    /// tail index) hoisted out of the per-sample path. Bit-identical to the
    /// pre-hoisting inline computation.
    #[must_use]
    pub fn sampler(&self) -> ParetoSampler {
        ParetoSampler {
            xm_ms: self.xm_ms,
            one_minus_ratio: 1.0 - (self.xm_ms / self.cap_ms).powf(self.alpha),
            inv_alpha: 1.0 / self.alpha,
        }
    }

    /// Expected fraction of *time* spent in intervals of at least
    /// `threshold_ms` (partial expectation over the tail divided by the
    /// mean).
    #[must_use]
    pub fn time_fraction_ge(&self, threshold_ms: f64) -> f64 {
        let t = threshold_ms.max(self.xm_ms);
        if t >= self.cap_ms {
            return 0.0;
        }
        let a = self.alpha;
        let (xm, h) = (self.xm_ms, self.cap_ms);
        let norm = 1.0 - (xm / h).powf(a);
        let partial = if (a - 1.0).abs() < 1e-12 {
            a * xm * (h / t).ln() / norm
        } else {
            a * xm.powf(a) * (h.powf(1.0 - a) - t.powf(1.0 - a)) / ((1.0 - a) * norm)
        };
        partial / self.mean_ms()
    }

    /// Mean of the truncated distribution, in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        let a = self.alpha;
        let (xm, h) = (self.xm_ms, self.cap_ms);
        let norm = 1.0 - (xm / h).powf(a);
        if (a - 1.0).abs() < 1e-12 {
            xm * (h / xm).ln() / norm * a
        } else {
            a * xm.powf(a) * (h.powf(1.0 - a) - xm.powf(1.0 - a)) / ((1.0 - a) * norm)
        }
    }
}

/// [`BoundedPareto`] with per-sample constants precomputed — the hot-path
/// form used by trace synthesis, which draws millions of tail intervals
/// from an unchanging distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoSampler {
    xm_ms: f64,
    one_minus_ratio: f64,
    inv_alpha: f64,
}

impl ParetoSampler {
    /// Maps one uniform draw `u ∈ [0, 1)` through the inverse truncated
    /// CCDF.
    #[inline]
    #[must_use]
    pub fn sample_u(&self, u: f64) -> f64 {
        self.xm_ms / (1.0 - u * self.one_minus_ratio).powf(self.inv_alpha)
    }

    /// Inverse-CDF sample; draws exactly one uniform.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.sample_u(u)
    }
}

/// The full per-page write-interval mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteIntervalModel {
    /// Probability that an interval is a short burst gap.
    pub p_short: f64,
    /// Log-uniform short-interval range, in milliseconds.
    pub short_range_ms: (f64, f64),
    /// The heavy tail.
    pub tail: BoundedPareto,
}

impl WriteIntervalModel {
    /// A representative default: 96 % sub-millisecond bursts, tail index
    /// 0.55, intervals capped at 2 minutes.
    #[must_use]
    pub fn typical() -> Self {
        WriteIntervalModel {
            p_short: 0.96,
            short_range_ms: (0.01, 1.0),
            tail: BoundedPareto::new(1.0, 0.55, 120_000.0),
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p_short) {
            return Err("p_short must be in [0, 1]".into());
        }
        let (lo, hi) = self.short_range_ms;
        if !(0.0 < lo && lo < hi) {
            return Err(format!("short range [{lo}, {hi}) is invalid"));
        }
        if hi > self.tail.xm_ms + 1e-9 {
            return Err("short range must not overlap the Pareto tail".into());
        }
        Ok(())
    }

    /// Samples one interval, in milliseconds. One-shot convenience over
    /// [`WriteIntervalModel::sampler`]; draws exactly two uniforms (branch,
    /// value) on either path.
    pub fn sample_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sampler().sample_ms(rng)
    }

    /// A sampler with the mixture constants (log-range endpoints, Pareto
    /// truncation ratio) hoisted out of the per-sample path. Bit-identical
    /// to the pre-hoisting inline computation.
    #[must_use]
    pub fn sampler(&self) -> IntervalSampler {
        let (lo, hi) = self.short_range_ms;
        IntervalSampler {
            p_short: self.p_short,
            ln_lo: lo.ln(),
            ln_span: hi.ln() - lo.ln(),
            tail: self.tail.sampler(),
        }
    }

    /// Complementary CDF of the mixture, `P(X > x)`.
    #[must_use]
    pub fn ccdf(&self, x_ms: f64) -> f64 {
        let (lo, hi) = self.short_range_ms;
        let short_ccdf = if x_ms <= lo {
            1.0
        } else if x_ms >= hi {
            0.0
        } else {
            1.0 - (x_ms.ln() - lo.ln()) / (hi.ln() - lo.ln())
        };
        self.p_short * short_ccdf + (1.0 - self.p_short) * self.tail.ccdf(x_ms)
    }

    /// Mean interval, in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        let (lo, hi) = self.short_range_ms;
        // Mean of a log-uniform on [lo, hi): (hi - lo) / ln(hi/lo).
        let short_mean = (hi - lo) / (hi / lo).ln();
        self.p_short * short_mean + (1.0 - self.p_short) * self.tail.mean_ms()
    }

    /// Expected fraction of *time* spent in intervals longer than
    /// `threshold_ms` — the quantity behind paper Fig. 9. Valid for
    /// thresholds at or above the tail scale (1 ms): below that, the
    /// short-burst branch's own time above the threshold is not counted.
    #[must_use]
    pub fn expected_time_fraction_ge(&self, threshold_ms: f64) -> f64 {
        debug_assert!(
            threshold_ms >= self.tail.xm_ms,
            "threshold below tail scale"
        );
        // Tail partial expectation E[X·1(X>t)] = time_fraction_ge · E[tail],
        // weighted by the tail branch probability over the mixture mean.
        let partial = self.tail.time_fraction_ge(threshold_ms) * self.tail.mean_ms();
        (1.0 - self.p_short) * partial / self.mean_ms()
    }
}

impl Default for WriteIntervalModel {
    fn default() -> Self {
        WriteIntervalModel::typical()
    }
}

/// [`WriteIntervalModel`] with per-sample constants precomputed, plus a
/// word-parallel batch fill. Every sample consumes exactly two uniforms —
/// one branch draw, one value draw — whichever branch it takes, so the RNG
/// stream position after `n` samples is draw `2n` regardless of outcomes.
/// That fixed draw layout is what lets [`IntervalSampler::fill_ms`] split a
/// block's RNG draws from its transcendental math (the lanes become
/// independent straight-line FP code) while staying bit-identical to `n`
/// scalar [`IntervalSampler::sample_ms`] calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSampler {
    p_short: f64,
    ln_lo: f64,
    ln_span: f64,
    tail: ParetoSampler,
}

impl IntervalSampler {
    /// Maps a (branch, value) uniform pair to one interval in milliseconds.
    #[inline]
    #[must_use]
    pub fn sample_uu(&self, u_branch: f64, u_value: f64) -> f64 {
        if u_branch < self.p_short {
            // Log-uniform across the burst range.
            (self.ln_lo + u_value * self.ln_span).exp()
        } else {
            self.tail.sample_u(u_value)
        }
    }

    /// Samples one interval, in milliseconds (two uniform draws).
    #[inline]
    pub fn sample_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u_branch: f64 = rng.gen();
        let u_value: f64 = rng.gen();
        self.sample_uu(u_branch, u_value)
    }

    /// Fills `out` with samples, block-wise: the RNG draws for a block are
    /// materialized first, then the lanes are evaluated as branch-free
    /// straight-line math over the buffered uniforms. Bit-identical to
    /// calling [`IntervalSampler::sample_ms`] once per slot.
    pub fn fill_ms<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        const BLOCK: usize = 8;
        let mut u = [0.0f64; 2 * BLOCK];
        for chunk in out.chunks_mut(BLOCK) {
            for slot in u.iter_mut().take(2 * chunk.len()) {
                *slot = rng.gen();
            }
            for (i, lane) in chunk.iter_mut().enumerate() {
                *lane = self.sample_uu(u[2 * i], u[2 * i + 1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memutil::rng::SeedableRng;
    use memutil::rng::SmallRng;

    #[test]
    fn pareto_ccdf_endpoints() {
        let p = BoundedPareto::new(1.0, 0.55, 120_000.0);
        assert_eq!(p.ccdf(0.5), 1.0);
        assert_eq!(p.ccdf(1.0), 1.0);
        assert_eq!(p.ccdf(120_000.0), 0.0);
        let mid = p.ccdf(1024.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn pareto_samples_within_bounds_and_match_ccdf() {
        let p = BoundedPareto::new(1.0, 0.55, 120_000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut above_1024 = 0u32;
        for _ in 0..n {
            let x = p.sample(&mut rng);
            assert!((1.0..=120_000.0).contains(&x), "sample {x} out of bounds");
            if x > 1024.0 {
                above_1024 += 1;
            }
        }
        let emp = f64::from(above_1024) / f64::from(n);
        let theory = p.ccdf(1024.0);
        assert!(
            (emp - theory).abs() < 0.005,
            "empirical {emp} vs theoretical {theory}"
        );
    }

    #[test]
    fn pareto_mean_matches_samples() {
        let p = BoundedPareto::new(1.0, 0.7, 60_000.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let emp = sum / f64::from(n);
        let theory = p.mean_ms();
        assert!(
            (emp / theory - 1.0).abs() < 0.1,
            "empirical {emp} vs theoretical {theory}"
        );
    }

    #[test]
    fn mixture_respects_burst_dominance() {
        let m = WriteIntervalModel::typical();
        assert!(m.validate().is_ok());
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sub_ms = (0..n).filter(|_| m.sample_ms(&mut rng) < 1.0).count();
        let frac = sub_ms as f64 / f64::from(n);
        // Paper: >95% of writes within 1 ms.
        assert!(frac > 0.95, "sub-ms fraction {frac}");
    }

    #[test]
    fn long_intervals_are_rare_but_dominate_time() {
        let m = WriteIntervalModel::typical();
        // Paper: <0.43% of writes but ~89.5% of interval time at >=1024 ms.
        let p_long = m.ccdf(1024.0);
        assert!(p_long < 0.0043, "P(X>1024ms) = {p_long}");
        let t_frac = m.expected_time_fraction_ge(1024.0);
        assert!(
            (0.7..0.97).contains(&t_frac),
            "time fraction in long intervals = {t_frac}"
        );
    }

    #[test]
    fn dhr_property() {
        // Decreasing hazard rate: P(X > c + 1024 | X > c) grows with c.
        let m = WriteIntervalModel::typical();
        let cond = |c: f64| m.ccdf(c + 1024.0) / m.ccdf(c);
        let mut last = 0.0;
        for c in [1.0, 16.0, 128.0, 512.0, 2048.0, 16_384.0] {
            let p = cond(c);
            assert!(
                p >= last - 1e-9,
                "hazard not decreasing at {c}: {p} < {last}"
            );
            last = p;
        }
        // Paper Fig. 11: around 0.5-0.8 at CIL = 512 ms.
        let at512 = cond(512.0);
        assert!((0.4..0.9).contains(&at512), "P at CIL 512 = {at512}");
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut m = WriteIntervalModel::typical();
        m.short_range_ms = (0.01, 5.0);
        assert!(m.validate().is_err());
        m.short_range_ms = (1.0, 0.5);
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn pareto_rejects_bad_alpha() {
        let _ = BoundedPareto::new(1.0, 0.0, 10.0);
    }

    /// Seeded property loop: the CCDF is monotone non-increasing for random
    /// shape parameters and argument pairs.
    #[test]
    fn prop_ccdf_monotone() {
        let mut rng = SmallRng::seed_from_u64(0x1A1);
        for _ in 0..512 {
            let a = rng.gen_range(0.2f64..1.5);
            let p = BoundedPareto::new(1.0, a, 120_000.0);
            let x = rng.gen_range(1.0f64..100_000.0);
            let y = rng.gen_range(1.0f64..100_000.0);
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            assert!(p.ccdf(lo) >= p.ccdf(hi), "a={a} lo={lo} hi={hi}");
        }
    }

    /// Seeded equivalence property: the hoisted samplers are bit-identical
    /// to the pre-hoisting inline formulas, and the block fill is
    /// bit-identical to the scalar loop, at every buffer length (partial
    /// trailing blocks included).
    #[test]
    fn prop_samplers_bit_identical() {
        let mut seeds = SmallRng::seed_from_u64(0x5A3);
        for _ in 0..32 {
            let seed: u64 = seeds.gen();
            let a = seeds.gen_range(0.2f64..1.5);
            let m = WriteIntervalModel {
                p_short: seeds.gen_range(0.5f64..0.99),
                short_range_ms: (0.01, 1.0),
                tail: BoundedPareto::new(1.0, a, 120_000.0),
            };
            // Inline formulas as written before the hoist.
            let inline_sample = |rng: &mut SmallRng| -> f64 {
                if rng.gen::<f64>() < m.p_short {
                    let (lo, hi) = m.short_range_ms;
                    (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
                } else {
                    let ratio = (m.tail.xm_ms / m.tail.cap_ms).powf(m.tail.alpha);
                    let u: f64 = rng.gen();
                    m.tail.xm_ms / (1.0 - u * (1.0 - ratio)).powf(1.0 / m.tail.alpha)
                }
            };
            let sampler = m.sampler();
            for len in [0usize, 1, 3, 8, 13, 64] {
                let mut a_rng = SmallRng::seed_from_u64(seed);
                let mut b_rng = SmallRng::seed_from_u64(seed);
                let mut c_rng = SmallRng::seed_from_u64(seed);
                let inline: Vec<f64> = (0..len).map(|_| inline_sample(&mut a_rng)).collect();
                let scalar: Vec<f64> = (0..len).map(|_| sampler.sample_ms(&mut b_rng)).collect();
                let mut block = vec![0.0f64; len];
                sampler.fill_ms(&mut c_rng, &mut block);
                assert!(
                    inline
                        .iter()
                        .zip(&scalar)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "hoisted sampler diverged (seed={seed} len={len})"
                );
                assert!(
                    inline
                        .iter()
                        .zip(&block)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "block fill diverged (seed={seed} len={len})"
                );
                // All three leave the RNG at the same stream position.
                let next: u64 = a_rng.gen();
                assert_eq!(next, b_rng.gen::<u64>());
                assert_eq!(next, c_rng.gen::<u64>());
            }
        }
    }

    /// Seeded property loop: samples always land inside [lower, upper].
    #[test]
    fn prop_samples_in_bounds() {
        let mut seeds = SmallRng::seed_from_u64(0x1A2);
        for _ in 0..64 {
            let seed: u64 = seeds.gen();
            let a = seeds.gen_range(0.2f64..1.5);
            let p = BoundedPareto::new(2.0, a, 50_000.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                let x = p.sample(&mut rng);
                assert!((2.0..=50_000.0).contains(&x), "seed={seed} a={a} x={x}");
            }
        }
    }
}
