//! Workload substrate for the MEMCON reproduction.
//!
//! The paper traces 12 long-running desktop/server applications with an
//! FPGA-based bus tracer (HMTT-like) and observes that per-page **write
//! intervals follow a Pareto distribution** with a decreasing hazard rate:
//! more than 95 % of writes recur within 1 ms, yet the rare long intervals
//! (≥ 1024 ms) cover ~90 % of execution time — which is what lets MEMCON
//! amortize online testing. We do not have the proprietary traces, so this
//! crate generates statistically equivalent ones:
//!
//! * [`interval`] — the bounded-Pareto + short-burst mixture interval model,
//! * [`workload`] — one calibrated profile per Table-1 application,
//! * [`generator`] — per-page renewal-process trace synthesis,
//! * [`trace`] — the write-trace container and per-page interval extraction,
//! * [`stats`] — every statistic the paper's Figs. 7, 8, 9, 11, 12, and 19
//!   compute over traces (log-bucket histograms, Pareto fits with R²,
//!   time-weighted fractions, CIL/RIL conditionals, coverage),
//! * [`cpu`] — synthetic SPEC/TPC-like CPU access traces for the performance
//!   simulator (`memsim`).
//!
//! # Example
//!
//! ```
//! use memtrace::workload::WorkloadProfile;
//! use memtrace::stats;
//!
//! let profile = WorkloadProfile::netflix().scaled(0.1);
//! let trace = profile.generate(42);
//! let intervals = trace.closed_intervals();
//! // The Pareto heavy tail: long intervals dominate time.
//! let frac = stats::time_fraction_ge_ms(&intervals, 1024.0);
//! assert!(frac > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod generator;
pub mod interval;
pub mod stats;
pub mod trace;
pub mod workload;

pub use interval::{BoundedPareto, WriteIntervalModel};
pub use trace::{WriteEvent, WriteTrace};
pub use workload::WorkloadProfile;

/// Nanoseconds per millisecond, the conversion used throughout.
pub const NS_PER_MS: u64 = 1_000_000;
