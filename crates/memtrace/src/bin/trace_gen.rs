//! `trace-gen` — generate and export the Table-1 write traces.
//!
//! The paper published its (binary) write-interval traces online; this tool
//! produces the equivalent artifacts from the calibrated generators, as JSON
//! (the `WriteTrace::to_json` form) or a compact `time_ns page` text
//! listing.
//!
//! ```text
//! trace-gen <workload|all> [--scale S] [--window SECONDS] [--seed N]
//!           [--format json|text] [--out DIR]
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use memtrace::workload::WorkloadProfile;

struct Args {
    workload: String,
    scale: f64,
    window: Option<f64>,
    seed: u64,
    json: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        scale: 1.0,
        window: None,
        seed: 0xC0FFEE,
        json: false,
        out: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => {
                args.window = Some(value("--window")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--format" => {
                args.json = match value("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            w if !w.starts_with("--") && args.workload.is_empty() => args.workload = w.to_string(),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.workload.is_empty() {
        return Err("missing workload (a Table-1 name, or 'all')".into());
    }
    Ok(args)
}

fn export(profile: &WorkloadProfile, args: &Args) -> std::io::Result<()> {
    let mut w = profile.clone().scaled(args.scale);
    if let Some(window) = args.window {
        w = w.with_window(window);
    }
    let trace = w.generate(args.seed);
    std::fs::create_dir_all(&args.out)?;
    let ext = if args.json { "json" } else { "txt" };
    let path = args.out.join(format!("{}.trace.{ext}", w.name));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    if args.json {
        file.write_all(trace.to_json().emit().as_bytes())?;
    } else {
        writeln!(
            file,
            "# workload={} pages={} duration_ns={} events={}",
            w.name,
            trace.n_pages(),
            trace.duration_ns(),
            trace.len()
        )?;
        for e in trace.events() {
            writeln!(file, "{} {}", e.time_ns, e.page)?;
        }
    }
    file.flush()?;
    eprintln!(
        "{}: {} events over {} pages -> {}",
        w.name,
        trace.len(),
        trace.n_pages(),
        path.display()
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: trace-gen <workload|all> [--scale S] [--window SECONDS] \
                 [--seed N] [--format json|text] [--out DIR]"
            );
            std::process::exit(2);
        }
    };
    let profiles: Vec<WorkloadProfile> = if args.workload == "all" {
        WorkloadProfile::all()
    } else {
        match WorkloadProfile::by_name(&args.workload) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "unknown workload '{}'; known: {}, or 'all'",
                    args.workload,
                    WorkloadProfile::all()
                        .iter()
                        .map(|w| w.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    for profile in &profiles {
        if let Err(e) = export(profile, &args) {
            eprintln!("error writing {}: {e}", profile.name);
            std::process::exit(1);
        }
    }
}
