//! The 12 long-running applications of paper Table 1, as calibrated
//! trace-generation profiles.
//!
//! Each profile carries the application's published duration, memory
//! footprint, and thread count, plus the write-interval mixture parameters
//! that reproduce its role in Figs. 7–12: heavier-tailed profiles (games,
//! system management) spend more time in long intervals; busier encoders
//! less. Simulated traces are scaled down (fewer pages, shorter window) —
//! every downstream statistic is a fraction, so scale cancels out.

use crate::generator;
use crate::interval::{BoundedPareto, WriteIntervalModel};
use crate::trace::WriteTrace;

/// Simulated pages per GB of real footprint (downscaling factor).
pub const PAGES_PER_GB: u64 = 128;

/// Default simulated trace window in seconds (real traces span minutes; the
/// interval statistics converge well before that).
pub const DEFAULT_SIM_SECONDS: f64 = 60.0;

/// Fraction of pages that are *hot* (continuously rewritten working-set
/// pages). The remaining *cold* pages receive isolated writebacks separated
/// by long Pareto intervals — the page population real bus traces exhibit:
/// nearly all writes target the few hot pages (paper Fig. 7's sub-ms burst
/// mass), while nearly all page-*time* belongs to cold pages sitting in long
/// intervals (Fig. 9), which is precisely the structure PRIL exploits.
pub const DEFAULT_HOT_FRACTION: f64 = 0.02;

/// A Table-1 workload: metadata plus its write-interval behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Display name (Table 1).
    pub name: String,
    /// Application domain (Table 1 "Type").
    pub kind: String,
    /// Real trace duration in seconds (Table 1 "Time").
    pub duration_s: f64,
    /// Real memory footprint in GB (Table 1 "Mem").
    pub mem_gb: f64,
    /// Thread count (Table 1).
    pub threads: u32,
    /// Simulated trace window in seconds.
    pub sim_seconds: f64,
    /// Simulated footprint in pages.
    pub sim_pages: u64,
    /// Fraction of pages that are hot (burst-written).
    pub hot_fraction: f64,
    /// Interval mixture of hot pages.
    pub model: WriteIntervalModel,
    /// Interval distribution of cold pages (isolated writebacks).
    pub cold_model: BoundedPareto,
    /// Probability that a cold-page interval is a short "revisit" (the
    /// program touches the page again within seconds — the source of PRIL
    /// mispredictions) instead of a long idle draw.
    pub cold_revisit: f64,
}

macro_rules! workloads {
    ($(($fn_name:ident, $name:literal, $kind:literal, $dur:expr, $mem:expr, $threads:expr,
        $p_short:expr, $alpha:expr, $hot_frac:expr, $cap_s:expr)),+ $(,)?) => {
        impl WorkloadProfile {
            $(
                /// The Table-1 workload of the same name.
                #[must_use]
                pub fn $fn_name() -> Self {
                    WorkloadProfile {
                        name: $name.into(),
                        kind: $kind.into(),
                        duration_s: $dur,
                        mem_gb: $mem,
                        threads: $threads,
                        sim_seconds: DEFAULT_SIM_SECONDS,
                        sim_pages: ($mem * PAGES_PER_GB as f64) as u64,
                        hot_fraction: $hot_frac,
                        model: WriteIntervalModel {
                            p_short: $p_short,
                            short_range_ms: (0.01, 1.0),
                            tail: BoundedPareto::new(1.0, $alpha, $cap_s * 1000.0),
                        },
                        cold_model: BoundedPareto::new(30_000.0, 0.30, 7_200_000.0),
                        cold_revisit: 0.10,
                    }
                }
            )+

            /// All 12 workloads in the paper's presentation order.
            #[must_use]
            pub fn all() -> Vec<WorkloadProfile> {
                vec![$(WorkloadProfile::$fn_name()),+]
            }
        }
    };
}

// Tail indices and caps assigned so the per-workload time-in-long-interval
// fractions span the band of paper Fig. 9 (≈75–97 %, average ≈89.5 %):
// smaller α / larger cap = heavier tail = more time in long intervals.
workloads! {
    (ac_brotherhood,   "ACBrother",  "Game",             209.1, 2.8, 8, 0.975, 0.42, 0.025, 180.0),
    (adobe_photoshop,  "AdobePhoto", "Photo editing",    149.2, 3.0, 4, 0.970, 0.52, 0.040, 120.0),
    (all_sysmark,      "AllSysMark", "Media creation",  2064.0, 3.4, 4, 0.980, 0.48, 0.030, 150.0),
    (avchd,            "AVCHD",      "Video playback",   217.3, 5.2, 2, 0.983, 0.55, 0.050, 120.0),
    (blur_motion,      "BlurMotion", "Image processing",  93.4, 0.2, 2, 0.965, 0.65, 0.020, 90.0),
    (final_cut_pro,    "FinalCutPro","Video editing",     76.9, 3.0, 2, 0.970, 0.65, 0.060, 90.0),
    (final_master,     "FinalMaster","Movie display",    248.1, 2.0, 2, 0.980, 0.50, 0.030, 150.0),
    (adobe_premiere,   "AdobePrem",  "Video editing",    298.8, 5.0, 2, 0.975, 0.60, 0.055, 90.0),
    (motion_playback,  "MotionPlay", "Video processing", 233.9, 5.6, 2, 0.970, 0.55, 0.050, 120.0),
    (netflix,          "Netflix",    "Video streaming",  229.4, 4.6, 2, 0.985, 0.45, 0.015, 180.0),
    (system_mgt,       "SystemMgt",  "Win 7 managing",   466.2, 7.6, 2, 0.975, 0.40, 0.020, 240.0),
    (video_encode,     "VideoEnc",   "Video encoding",   299.1, 7.3, 4, 0.960, 0.62, 0.080, 60.0),
}

impl WorkloadProfile {
    /// Scales the simulated footprint (page count) by `factor` — for fast
    /// tests; per-page statistics are page-count-free. The time window is
    /// kept, because interval statistics (Figs. 11, 12) need windows much
    /// longer than the 1024 ms prediction horizon.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        // Keep at least a few dozen pages: below that, the single ceil'd hot
        // page distorts the hot/cold population balance.
        self.sim_pages = ((self.sim_pages as f64 * factor) as u64).max(32);
        self
    }

    /// Sets the simulated trace window.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    #[must_use]
    pub fn with_window(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "window must be positive");
        self.sim_seconds = seconds;
        self
    }

    /// Generates a deterministic write trace for this workload.
    #[must_use]
    pub fn generate(&self, seed: u64) -> WriteTrace {
        generator::generate(self, seed)
    }

    /// Generates the same trace with per-page synthesis fanned across
    /// `jobs` workers (`0` = resolve automatically); byte-identical to
    /// [`WorkloadProfile::generate`] for every `jobs` value.
    #[must_use]
    pub fn generate_with_jobs(&self, seed: u64, jobs: usize) -> WriteTrace {
        generator::generate_with_jobs(self, seed, jobs)
    }

    /// Expected fraction of page-time spent in write intervals of at least
    /// `threshold_ms` — the analytic counterpart of paper Fig. 9, blending
    /// the hot-page mixture with the cold-page tail by page population.
    #[must_use]
    pub fn expected_long_interval_time_fraction(&self, threshold_ms: f64) -> f64 {
        self.hot_fraction * self.model.expected_time_fraction_ge(threshold_ms)
            + (1.0 - self.hot_fraction) * self.cold_model.time_fraction_ge(threshold_ms)
    }

    /// Looks a workload up by its Table-1 display name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        WorkloadProfile::all().into_iter().find(|w| w.name == name)
    }

    /// Deterministically assigns a Table-1 workload to fleet node `node`:
    /// a seeded avalanche hash picks (approximately uniformly) from
    /// [`WorkloadProfile::all`]. Pure in `(seed, node)`, so a fleet's
    /// per-node workload mix is reproducible and independent of the order
    /// nodes are expanded in.
    #[must_use]
    pub fn for_node(seed: u64, node: u64) -> WorkloadProfile {
        // SplitMix64 finalizer (identical constants to memutil's PRNG).
        let mut z = seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut all = WorkloadProfile::all();
        let idx = (z % all.len() as u64) as usize;
        all.swap_remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_with_table1_metadata() {
        let all = WorkloadProfile::all();
        assert_eq!(all.len(), 12);
        // Spot-check Table 1 values.
        let ac = WorkloadProfile::ac_brotherhood();
        assert_eq!(ac.name, "ACBrother");
        assert_eq!(ac.threads, 8);
        assert!((ac.duration_s - 209.1).abs() < 1e-9);
        let sysmgt = WorkloadProfile::system_mgt();
        assert!((sysmgt.mem_gb - 7.6).abs() < 1e-9);
        let sysmark = WorkloadProfile::all_sysmark();
        assert!((sysmark.duration_s - 2064.0).abs() < 1e-9);
    }

    #[test]
    fn names_unique_and_models_valid() {
        let all = WorkloadProfile::all();
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 12);
        for w in &all {
            assert!(w.model.validate().is_ok(), "{} model invalid", w.name);
            assert!(w.sim_pages > 0);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for w in WorkloadProfile::all() {
            assert_eq!(WorkloadProfile::by_name(&w.name), Some(w.clone()));
        }
        assert!(WorkloadProfile::by_name("NotAWorkload").is_none());
    }

    #[test]
    fn scaled_shrinks_pages() {
        let w = WorkloadProfile::netflix();
        let s = w.clone().scaled(0.1);
        assert!(s.sim_pages < w.sim_pages);
        assert!(s.sim_pages >= 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scaled_rejects_zero() {
        let _ = WorkloadProfile::netflix().scaled(0.0);
    }

    #[test]
    fn for_node_is_deterministic_and_mixes_profiles() {
        // Reproducible per node...
        for node in 0..8 {
            assert_eq!(
                WorkloadProfile::for_node(7, node).name,
                WorkloadProfile::for_node(7, node).name
            );
        }
        // ...and a 64-node fleet draws a genuine mix of Table-1 profiles,
        // differently for different fleet seeds.
        let mix = |seed: u64| -> std::collections::BTreeSet<String> {
            (0..64)
                .map(|n| WorkloadProfile::for_node(seed, n).name)
                .collect()
        };
        assert!(mix(7).len() >= 6, "seed 7 drew only {:?}", mix(7));
        let assignments_a: Vec<String> = (0..64)
            .map(|n| WorkloadProfile::for_node(7, n).name)
            .collect();
        let assignments_b: Vec<String> = (0..64)
            .map(|n| WorkloadProfile::for_node(8, n).name)
            .collect();
        assert_ne!(assignments_a, assignments_b);
    }

    #[test]
    fn time_fraction_band_matches_fig9() {
        // Paper Fig. 9: per-workload time in >=1024 ms (closed) write
        // intervals averages 89.5%, ranging roughly 75-97%. Our traces land
        // in the same long-interval-dominated regime (slightly higher,
        // because cold-page intervals are all super-quantum by calibration).
        //
        // Individual seeds can push one heavy-tailed workload below the
        // per-workload floor without being out of regime, so (like
        // `scrambling_breaks_adjacency` in `dram`) the band is asserted
        // over a seed population: most seeds must land fully in band, not
        // one hand-picked seed.
        let seeds: [u64; 5] = [7, 42, 1234, 0xFEED, 0xC0FFEE];
        let in_band = seeds
            .iter()
            .filter(|&&seed| {
                let mut fractions = Vec::new();
                for w in WorkloadProfile::all() {
                    // Full page count: tiny scaled footprints distort the
                    // hot/cold page balance (a single hot page can be half
                    // the footprint).
                    let trace = w.generate(seed);
                    let f = crate::stats::time_fraction_ge_ms(&trace.closed_intervals(), 1024.0);
                    if !(0.60..=1.0).contains(&f) {
                        return false;
                    }
                    fractions.push(f);
                }
                let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
                (0.80..0.999).contains(&avg)
            })
            .count();
        assert!(
            in_band >= 4,
            "only {in_band}/{} seeds landed in the Fig. 9 band (paper avg: 89.5%)",
            seeds.len()
        );
    }

    #[test]
    fn analytic_long_interval_fraction_is_high() {
        for w in WorkloadProfile::all() {
            let f = w.expected_long_interval_time_fraction(1024.0);
            assert!(f > 0.9, "{}: analytic fraction {f}", w.name);
        }
    }
}
