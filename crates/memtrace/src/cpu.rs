//! Synthetic CPU memory-access traces for the performance simulator.
//!
//! The paper's performance evaluation (Figs. 15, 16; Table 3) drives
//! Ramulator with Pin-captured SPEC CPU2006 and TPC traces, combined into 30
//! random 4-application mixes. We synthesize statistically similar access
//! streams instead: each profile specifies DRAM accesses per kilo-instruction
//! (post-cache MPKI), the write fraction, row-buffer locality, and footprint.
//! The generator yields an infinite instruction-annotated access stream the
//! core model consumes.

use memutil::rng::SliceRandom;
use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

/// One application's memory behaviour at the DRAM interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuWorkloadProfile {
    /// Display name.
    pub name: &'static str,
    /// DRAM accesses per 1000 retired instructions (post-LLC misses plus
    /// writebacks).
    pub mpki: f64,
    /// Fraction of accesses that are writes (writebacks).
    pub write_frac: f64,
    /// Probability that the next access falls in the same DRAM row.
    pub row_locality: f64,
    /// Number of distinct rows the workload touches.
    pub footprint_rows: u64,
}

/// The SPEC CPU2006 / TPC profile pool the paper's 30 mixes draw from.
#[must_use]
pub fn spec_tpc_pool() -> Vec<CpuWorkloadProfile> {
    fn p(
        name: &'static str,
        mpki: f64,
        write_frac: f64,
        row_locality: f64,
        footprint_rows: u64,
    ) -> CpuWorkloadProfile {
        CpuWorkloadProfile {
            name,
            mpki,
            write_frac,
            row_locality,
            footprint_rows,
        }
    }
    vec![
        p("mcf", 25.0, 0.25, 0.20, 200_000),
        p("lbm", 30.0, 0.45, 0.65, 100_000),
        p("milc", 18.0, 0.30, 0.45, 120_000),
        p("soplex", 21.0, 0.25, 0.40, 80_000),
        p("libquantum", 25.0, 0.30, 0.95, 8_000),
        p("omnetpp", 10.0, 0.30, 0.25, 60_000),
        p("gems", 15.0, 0.35, 0.50, 150_000),
        p("leslie3d", 12.0, 0.35, 0.55, 90_000),
        p("astar", 5.0, 0.25, 0.30, 40_000),
        p("zeusmp", 6.0, 0.30, 0.50, 70_000),
        p("cactus", 4.0, 0.30, 0.45, 50_000),
        p("gcc", 2.0, 0.30, 0.35, 30_000),
        p("h264ref", 1.5, 0.25, 0.60, 10_000),
        p("perlbench", 1.0, 0.30, 0.40, 15_000),
        p("tpcc", 12.0, 0.35, 0.25, 250_000),
        p("tpch", 18.0, 0.20, 0.50, 300_000),
    ]
}

/// Draws `n_mixes` random `cores`-application mixes from the pool, as the
/// paper does for its 30 four-core workloads.
#[must_use]
pub fn random_mixes(n_mixes: usize, cores: usize, seed: u64) -> Vec<Vec<CpuWorkloadProfile>> {
    let pool = spec_tpc_pool();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_mixes)
        .map(|_| {
            (0..cores)
                .map(|_| *pool.choose(&mut rng).expect("pool is non-empty"))
                .collect()
        })
        .collect()
}

/// One memory access annotated with the number of non-memory instructions
/// retired before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuAccess {
    /// Non-memory instructions preceding this access.
    pub inst_gap: u64,
    /// Target row (workload-local; the simulator maps it onto banks).
    pub row: u64,
    /// Cache-block index within the row.
    pub block: u32,
    /// Whether this is a write (writeback).
    pub is_write: bool,
}

/// Infinite, deterministic access-stream generator for one profile.
#[derive(Debug, Clone)]
pub struct AccessTraceGenerator {
    profile: CpuWorkloadProfile,
    rng: SmallRng,
    row: u64,
    block: u32,
    blocks_per_row: u32,
}

impl AccessTraceGenerator {
    /// Creates a generator with the given block-per-row geometry (128 for
    /// 8 KB rows of 64-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if the profile is degenerate (zero MPKI or footprint).
    #[must_use]
    pub fn new(profile: CpuWorkloadProfile, blocks_per_row: u32, seed: u64) -> Self {
        assert!(profile.mpki > 0.0, "mpki must be positive");
        assert!(profile.footprint_rows > 0, "footprint must be non-empty");
        assert!(blocks_per_row > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let row = rng.gen_range(0..profile.footprint_rows);
        AccessTraceGenerator {
            profile,
            rng,
            row,
            block: 0,
            blocks_per_row,
        }
    }

    /// The profile this generator follows.
    #[must_use]
    pub fn profile(&self) -> &CpuWorkloadProfile {
        &self.profile
    }
}

impl Iterator for AccessTraceGenerator {
    type Item = CpuAccess;

    fn next(&mut self) -> Option<CpuAccess> {
        // Geometric-ish instruction gap with mean 1000/mpki (exponential
        // rounding keeps the mean while allowing zero gaps in bursts).
        let mean_gap = 1000.0 / self.profile.mpki;
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let inst_gap = (-u.ln() * mean_gap) as u64;
        if self.rng.gen::<f64>() < self.profile.row_locality {
            // Stay in the open row, advance sequentially.
            self.block = (self.block + 1) % self.blocks_per_row;
        } else {
            self.row = self.rng.gen_range(0..self.profile.footprint_rows);
            self.block = self.rng.gen_range(0..self.blocks_per_row);
        }
        let is_write = self.rng.gen::<f64>() < self.profile.write_frac;
        Some(CpuAccess {
            inst_gap,
            row: self.row,
            block: self.block,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_varied_intensity() {
        let pool = spec_tpc_pool();
        assert!(pool.len() >= 12);
        let max = pool.iter().map(|p| p.mpki).fold(0.0, f64::max);
        let min = pool.iter().map(|p| p.mpki).fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "pool should span memory intensities");
        let names: std::collections::HashSet<_> = pool.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), pool.len());
    }

    #[test]
    fn mixes_are_deterministic_and_sized() {
        let a = random_mixes(30, 4, 99);
        let b = random_mixes(30, 4, 99);
        assert_eq!(a.len(), 30);
        assert!(a.iter().all(|m| m.len() == 4));
        assert_eq!(a, b);
        assert_ne!(a, random_mixes(30, 4, 100));
    }

    #[test]
    fn generator_respects_mpki() {
        let profile = spec_tpc_pool()[0]; // mcf, mpki 25
        let gen = AccessTraceGenerator::new(profile, 128, 1);
        let n = 50_000;
        let total_inst: u64 = gen
            .take(n)
            .map(|a| a.inst_gap + 1) // the access itself is an instruction
            .sum();
        let mpki = n as f64 * 1000.0 / total_inst as f64;
        assert!(
            (mpki / profile.mpki - 1.0).abs() < 0.1,
            "empirical mpki {mpki} vs {}",
            profile.mpki
        );
    }

    #[test]
    fn generator_respects_write_fraction_and_bounds() {
        let profile = spec_tpc_pool()[1]; // lbm
        let gen = AccessTraceGenerator::new(profile, 128, 2);
        let n = 50_000;
        let mut writes = 0u64;
        for a in gen.take(n) {
            assert!(a.row < profile.footprint_rows);
            assert!(a.block < 128);
            if a.is_write {
                writes += 1;
            }
        }
        let wf = writes as f64 / n as f64;
        assert!(
            (wf - profile.write_frac).abs() < 0.02,
            "write fraction {wf} vs {}",
            profile.write_frac
        );
    }

    #[test]
    fn locality_produces_row_runs() {
        let profile = CpuWorkloadProfile {
            name: "loc",
            mpki: 10.0,
            write_frac: 0.3,
            row_locality: 0.9,
            footprint_rows: 10_000,
        };
        let accesses: Vec<CpuAccess> = AccessTraceGenerator::new(profile, 128, 3)
            .take(10_000)
            .collect();
        let same_row = accesses.windows(2).filter(|w| w[0].row == w[1].row).count();
        let frac = same_row as f64 / (accesses.len() - 1) as f64;
        assert!(frac > 0.85, "same-row fraction {frac}");
    }

    #[test]
    fn generator_is_deterministic() {
        let profile = spec_tpc_pool()[4];
        let a: Vec<_> = AccessTraceGenerator::new(profile, 128, 7)
            .take(100)
            .collect();
        let b: Vec<_> = AccessTraceGenerator::new(profile, 128, 7)
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "mpki must be positive")]
    fn rejects_zero_mpki() {
        let mut p = spec_tpc_pool()[0];
        p.mpki = 0.0;
        let _ = AccessTraceGenerator::new(p, 128, 0);
    }
}
