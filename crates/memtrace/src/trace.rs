//! Write-trace container and interval extraction.
//!
//! A [`WriteTrace`] is the time-ordered sequence of `(time, page)` write
//! events a bus tracer would capture, plus the trace duration and page
//! count. Every downstream consumer — the statistics of Figs. 7–12, PRIL,
//! and the MEMCON engine — reads traces through this type.

use crate::NS_PER_MS;

/// One page-granularity write event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WriteEvent {
    /// Event time in nanoseconds from trace start.
    pub time_ns: u64,
    /// Written page (8 KB granularity, matching the DRAM row size).
    pub page: u64,
}

/// A closed or tail (censored) write interval of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Owning page.
    pub page: u64,
    /// Interval start (time of the write that opened it).
    pub start_ns: u64,
    /// Interval length.
    pub len_ns: u64,
    /// Whether the interval was closed by a subsequent write (`true`) or ran
    /// into the end of the trace (`false`, censored).
    pub closed: bool,
}

impl Interval {
    /// Interval length in milliseconds.
    #[must_use]
    pub fn len_ms(&self) -> f64 {
        self.len_ns as f64 / NS_PER_MS as f64
    }
}

/// A time-ordered page-write trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteTrace {
    events: Vec<WriteEvent>,
    duration_ns: u64,
    n_pages: u64,
}

impl WriteTrace {
    /// Builds a trace from events; sorts them by time (stable on page) and
    /// validates that events fall within `duration_ns` and pages within
    /// `n_pages`.
    ///
    /// # Panics
    ///
    /// Panics if any event lies outside the trace duration or page range.
    #[must_use]
    pub fn new(mut events: Vec<WriteEvent>, duration_ns: u64, n_pages: u64) -> Self {
        // One fused pass: pre-merged producers (the parallel generator)
        // hand events in already sorted, so sortedness is detected while
        // pages are range-checked, and the sort runs only when needed.
        let mut sorted = true;
        let mut pages_ok = true;
        let mut prev = (0u64, 0u64);
        for e in &events {
            sorted &= prev <= (e.time_ns, e.page);
            pages_ok &= e.page < n_pages;
            prev = (e.time_ns, e.page);
        }
        assert!(pages_ok, "event page out of range");
        if !sorted {
            events.sort_unstable();
        }
        if let Some(last) = events.last() {
            assert!(
                last.time_ns <= duration_ns,
                "event at {} ns beyond duration {} ns",
                last.time_ns,
                duration_ns
            );
        }
        WriteTrace {
            events,
            duration_ns,
            n_pages,
        }
    }

    /// The events, in time order.
    #[must_use]
    pub fn events(&self) -> &[WriteEvent] {
        &self.events
    }

    /// Trace duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.duration_ns
    }

    /// Trace duration in milliseconds.
    #[must_use]
    pub fn duration_ms(&self) -> f64 {
        self.duration_ns as f64 / NS_PER_MS as f64
    }

    /// Number of pages in the traced footprint.
    #[must_use]
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Number of write events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All *closed* write intervals (write → next write of the same page).
    #[must_use]
    pub fn closed_intervals(&self) -> Vec<Interval> {
        self.intervals_impl(false)
    }

    /// All intervals including the censored tail of each page (last write →
    /// end of trace).
    #[must_use]
    pub fn intervals_with_tail(&self) -> Vec<Interval> {
        self.intervals_impl(true)
    }

    fn intervals_impl(&self, include_tail: bool) -> Vec<Interval> {
        // BTreeMap, not HashMap: the tail loop below emits one interval per
        // page, and hash order would make the output ordering differ per
        // process. This is a cold path (once per trace).
        let mut last_write: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        let mut out = Vec::new();
        for e in &self.events {
            if let Some(prev) = last_write.insert(e.page, e.time_ns) {
                out.push(Interval {
                    page: e.page,
                    start_ns: prev,
                    len_ns: e.time_ns - prev,
                    closed: true,
                });
            }
        }
        if include_tail {
            for (page, prev) in last_write {
                out.push(Interval {
                    page,
                    start_ns: prev,
                    len_ns: self.duration_ns - prev,
                    closed: false,
                });
            }
        }
        out
    }

    /// Returns a trace with every per-page interval halved (each page's
    /// timeline compressed ×2 towards its first write) — the cache-pressure
    /// sensitivity transform of paper Fig. 19.
    #[must_use]
    pub fn halved_intervals(&self) -> WriteTrace {
        let mut first_write: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let events = self
            .events
            .iter()
            .map(|e| {
                let first = *first_write.entry(e.page).or_insert(e.time_ns);
                WriteEvent {
                    time_ns: first + (e.time_ns - first) / 2,
                    page: e.page,
                }
            })
            .collect();
        WriteTrace::new(events, self.duration_ns, self.n_pages)
    }

    /// Merges several traces onto disjoint page ranges (multi-programmed
    /// composition), keeping the longest duration.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn merge(traces: &[WriteTrace]) -> WriteTrace {
        assert!(!traces.is_empty(), "cannot merge zero traces");
        let mut events = Vec::new();
        let mut page_base = 0u64;
        let mut duration = 0u64;
        for t in traces {
            events.extend(t.events.iter().map(|e| WriteEvent {
                time_ns: e.time_ns,
                page: page_base + e.page,
            }));
            page_base += t.n_pages;
            duration = duration.max(t.duration_ns);
        }
        WriteTrace::new(events, duration, page_base)
    }

    /// Serializes to the compact JSON export format of `trace-gen`:
    /// `{"duration_ns":..,"n_pages":..,"events":[[time_ns,page],..]}`.
    #[must_use]
    pub fn to_json(&self) -> memutil::json::Json {
        use memutil::json::Json;
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| Json::arr().push(e.time_ns).push(e.page))
            .collect();
        Json::obj()
            .field("duration_ns", self.duration_ns)
            .field("n_pages", self.n_pages)
            .field("events", Json::Arr(events))
    }

    /// Parses the [`WriteTrace::to_json`] format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &memutil::json::Json) -> Result<WriteTrace, String> {
        use memutil::json::Json;
        let duration_ns = json
            .get("duration_ns")
            .and_then(Json::as_u64)
            .ok_or("missing duration_ns")?;
        let n_pages = json
            .get("n_pages")
            .and_then(Json::as_u64)
            .ok_or("missing n_pages")?;
        let Some(Json::Arr(raw)) = json.get("events") else {
            return Err("missing events array".into());
        };
        let mut events = Vec::with_capacity(raw.len());
        for item in raw {
            let Json::Arr(pair) = item else {
                return Err("event is not a [time_ns, page] pair".into());
            };
            let (Some(time_ns), Some(page)) = (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) else {
                return Err("event pair holds non-integers".into());
            };
            if time_ns > duration_ns {
                return Err(format!("event at {time_ns} ns beyond duration"));
            }
            if page >= n_pages {
                return Err(format!("event page {page} out of range"));
            }
            events.push(WriteEvent { time_ns, page });
        }
        Ok(WriteTrace::new(events, duration_ns, n_pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ms: u64, page: u64) -> WriteEvent {
        WriteEvent {
            time_ns: time_ms * NS_PER_MS,
            page,
        }
    }

    #[test]
    fn events_are_sorted_on_construction() {
        let t = WriteTrace::new(vec![ev(5, 0), ev(1, 1), ev(3, 0)], 10 * NS_PER_MS, 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![NS_PER_MS, 3 * NS_PER_MS, 5 * NS_PER_MS]);
    }

    #[test]
    fn closed_intervals_per_page() {
        let t = WriteTrace::new(
            vec![ev(0, 0), ev(10, 0), ev(30, 0), ev(5, 1)],
            100 * NS_PER_MS,
            2,
        );
        let mut iv = t.closed_intervals();
        iv.sort_by_key(|i| (i.page, i.start_ns));
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0].page, 0);
        assert_eq!(iv[0].len_ns, 10 * NS_PER_MS);
        assert_eq!(iv[1].len_ns, 20 * NS_PER_MS);
        assert!(iv.iter().all(|i| i.closed));
    }

    #[test]
    fn tail_intervals_are_censored() {
        let t = WriteTrace::new(vec![ev(0, 0), ev(40, 1)], 100 * NS_PER_MS, 2);
        let iv = t.intervals_with_tail();
        assert_eq!(iv.len(), 2);
        for i in &iv {
            assert!(!i.closed);
        }
        let page1 = iv.iter().find(|i| i.page == 1).unwrap();
        assert_eq!(page1.len_ns, 60 * NS_PER_MS);
    }

    #[test]
    fn halving_halves_closed_intervals() {
        let t = WriteTrace::new(vec![ev(10, 0), ev(30, 0), ev(70, 0)], 100 * NS_PER_MS, 1);
        let h = t.halved_intervals();
        let iv = h.closed_intervals();
        assert_eq!(iv[0].len_ns, 10 * NS_PER_MS);
        assert_eq!(iv[1].len_ns, 20 * NS_PER_MS);
        // First write time unchanged.
        assert_eq!(h.events()[0].time_ns, 10 * NS_PER_MS);
    }

    #[test]
    fn merge_offsets_pages() {
        let a = WriteTrace::new(vec![ev(1, 0)], 10 * NS_PER_MS, 2);
        let b = WriteTrace::new(vec![ev(2, 1)], 20 * NS_PER_MS, 3);
        let m = WriteTrace::merge(&[a, b]);
        assert_eq!(m.n_pages(), 5);
        assert_eq!(m.duration_ns(), 20 * NS_PER_MS);
        assert_eq!(m.events()[1].page, 3); // b's page 1 offset by a's 2 pages
    }

    #[test]
    #[should_panic(expected = "beyond duration")]
    fn rejects_event_past_duration() {
        let _ = WriteTrace::new(vec![ev(11, 0)], 10 * NS_PER_MS, 1);
    }

    #[test]
    #[should_panic(expected = "page out of range")]
    fn rejects_bad_page() {
        let _ = WriteTrace::new(vec![ev(1, 5)], 10 * NS_PER_MS, 2);
    }

    #[test]
    fn interval_len_ms() {
        let i = Interval {
            page: 0,
            start_ns: 0,
            len_ns: 2_500_000,
            closed: true,
        };
        assert!((i.len_ms() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = WriteTrace::new(vec![], NS_PER_MS, 0);
        assert!(t.is_empty());
        assert!(t.closed_intervals().is_empty());
        assert!(t.intervals_with_tail().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let t = WriteTrace::new(vec![ev(1, 0), ev(2, 1)], 10 * NS_PER_MS, 2);
        let s = t.to_json().emit();
        let back = WriteTrace::from_json(&memutil::json::Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        use memutil::json::Json;
        let missing = Json::obj().field("n_pages", 2u64);
        assert!(WriteTrace::from_json(&missing).is_err());
        let bad_page = Json::parse(r#"{"duration_ns":100,"n_pages":1,"events":[[5,9]]}"#).unwrap();
        assert!(WriteTrace::from_json(&bad_page).is_err());
    }
}
