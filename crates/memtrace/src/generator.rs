//! Per-page renewal-process trace synthesis.
//!
//! Each page writes according to an independent renewal process whose
//! inter-write intervals come from the workload's
//! [`WriteIntervalModel`](crate::interval::WriteIntervalModel). The first
//! write of each page lands at a uniformly random phase within its first
//! sampled interval, approximating a stationary start so the trace window
//! does not begin with a synchronized write burst across all pages.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::trace::{WriteEvent, WriteTrace};
use crate::workload::WorkloadProfile;
use crate::NS_PER_MS;

fn page_seed(seed: u64, page: u64) -> u64 {
    let mut z = seed ^ page.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^ (z >> 32)
}

/// Generates a deterministic write trace for `profile` from `seed`.
///
/// # Panics
///
/// Panics if the profile's interval model fails validation.
#[must_use]
pub fn generate(profile: &WorkloadProfile, seed: u64) -> WriteTrace {
    profile
        .model
        .validate()
        .expect("invalid write-interval model");
    let duration_ns = (profile.sim_seconds * 1000.0 * NS_PER_MS as f64) as u64;
    // At least one hot page whenever the fraction is positive, so scaled-down
    // test traces keep both page classes.
    let hot_pages = if profile.hot_fraction > 0.0 {
        (profile.hot_fraction * profile.sim_pages as f64).ceil() as u64
    } else {
        0
    };
    let mut events = Vec::new();
    for page in 0..profile.sim_pages {
        let mut rng = SmallRng::seed_from_u64(page_seed(seed, page));
        let hot = page < hot_pages;
        let sample_ms = |rng: &mut SmallRng| {
            if hot {
                profile.model.sample_ms(rng)
            } else if rng.gen::<f64>() < profile.cold_revisit {
                // A quick revisit: the program touches the page again within
                // seconds (log-uniform 1-20 s).
                (1000f64.ln() + rng.gen::<f64>() * (20_000f64.ln() - 1000f64.ln())).exp()
            } else {
                profile.cold_model.sample(rng)
            }
        };
        // Stationary-ish phase: the first write falls inside the first
        // interval at a uniform point.
        let mut t_ns = (sample_ms(&mut rng) * rng.gen::<f64>() * NS_PER_MS as f64) as u64;
        while t_ns <= duration_ns {
            events.push(WriteEvent {
                time_ns: t_ns,
                page,
            });
            let step = (sample_ms(&mut rng) * NS_PER_MS as f64) as u64;
            // Intervals are strictly positive (≥ 10 µs by construction), but
            // guard against pathological parameterizations.
            t_ns = t_ns.saturating_add(step.max(1));
        }
    }
    WriteTrace::new(events, duration_ns, profile.sim_pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_netflix() -> WorkloadProfile {
        WorkloadProfile::netflix().scaled(0.05)
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_netflix();
        assert_eq!(p.generate(1), p.generate(1));
        assert_ne!(p.generate(1), p.generate(2));
    }

    #[test]
    fn events_within_bounds() {
        let p = small_netflix();
        let t = p.generate(3);
        assert!(!t.is_empty());
        for e in t.events() {
            assert!(e.time_ns <= t.duration_ns());
            assert!(e.page < t.n_pages());
        }
    }

    #[test]
    fn every_hot_page_writes_quickly() {
        // Hot pages have ~10 ms mean intervals: a 2-second window covers all
        // of them. (Cold pages idle for minutes and may legitimately stay
        // silent in a short window.)
        let mut p = small_netflix();
        p.sim_pages = 32;
        p.hot_fraction = 1.0;
        p.sim_seconds = 2.0;
        let t = p.generate(4);
        let pages: std::collections::HashSet<_> = t.events().iter().map(|e| e.page).collect();
        assert_eq!(pages.len(), 32);
    }

    #[test]
    fn cold_pages_write_rarely_but_do_write() {
        let mut p = small_netflix();
        p.sim_pages = 64;
        p.hot_fraction = 0.0;
        p.sim_seconds = 60.0;
        let t = p.generate(9);
        let pages: std::collections::HashSet<_> = t.events().iter().map(|e| e.page).collect();
        // Cold pages idle on multi-minute scales: only some write within a
        // minute, and those write just a handful of times.
        assert!(pages.len() > 5, "only {} cold pages wrote", pages.len());
        assert!(pages.len() < 60, "cold pages too active: {}", pages.len());
        let per_page = t.len() as f64 / pages.len().max(1) as f64;
        assert!(
            per_page < 10.0,
            "cold pages too busy: {per_page} writes each"
        );
    }

    #[test]
    fn burst_dominance_survives_generation() {
        // Paper Fig. 7: >95% of (closed) write intervals under 1 ms.
        let p = small_netflix();
        let t = p.generate(5);
        let intervals = t.closed_intervals();
        let sub_ms = intervals.iter().filter(|i| i.len_ms() < 1.0).count();
        let frac = sub_ms as f64 / intervals.len() as f64;
        assert!(frac > 0.93, "sub-ms interval fraction {frac}");
    }

    #[test]
    fn long_intervals_dominate_time() {
        // Paper Fig. 9 shape at trace level (tail-censored intervals count
        // as idle time too).
        let mut p = WorkloadProfile::system_mgt();
        p.sim_pages = 200;
        let t = p.generate(6);
        let intervals = t.intervals_with_tail();
        let frac = stats::time_fraction_ge_ms(&intervals, 1024.0);
        assert!(frac > 0.6, "long-interval time fraction {frac}");
    }
}
