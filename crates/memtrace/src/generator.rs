//! Per-page renewal-process trace synthesis.
//!
//! Each page writes according to an independent renewal process whose
//! inter-write intervals come from the workload's
//! [`WriteIntervalModel`](crate::interval::WriteIntervalModel). The first
//! write of each page lands at a uniformly random phase within its first
//! sampled interval, approximating a stationary start so the trace window
//! does not begin with a synchronized write burst across all pages.
//!
//! # Parallel synthesis (raw-speed wave 2)
//!
//! Pages are statistically independent (each owns a PRNG derived from
//! `(seed, page)` via [`page_seed`]), so synthesis fans the per-page
//! renewal loops across [`memutil::par`] and k-way-merges the per-page
//! event runs — each already time-sorted — into the global `(time, page)`
//! order that [`WriteTrace::new`] expects. The merge output is exactly the
//! sorted concatenation the pre-wave generator produced, so traces are
//! **byte-identical at any `--jobs`** (and to the retained [`reference`]
//! generator). The per-page loops draw hot-page intervals through the
//! hoisted block sampler
//! ([`IntervalSampler::fill_ms`](crate::interval::IntervalSampler::fill_ms));
//! every mixture branch consumes exactly two uniforms, so buffering draws
//! ahead never changes the stream an event sees, and the per-page PRNG is
//! discarded afterwards, so tail overdraw is unobservable.

use std::cmp::Reverse;

use memutil::par;
use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::interval::{IntervalSampler, ParetoSampler};
use crate::trace::{WriteEvent, WriteTrace};
use crate::workload::WorkloadProfile;
use crate::NS_PER_MS;

fn page_seed(seed: u64, page: u64) -> u64 {
    let mut z = seed ^ page.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^ (z >> 32)
}

/// Per-profile sampling constants, hoisted once per trace so the per-page
/// loops run free of `ln`/`powf` recomputation.
struct ProfileSamplers {
    hot: IntervalSampler,
    cold_revisit: f64,
    ln_revisit_lo: f64,
    ln_revisit_span: f64,
    cold_tail: ParetoSampler,
    /// Expected hot-page event count, for run preallocation.
    hot_events_hint: usize,
}

impl ProfileSamplers {
    fn new(profile: &WorkloadProfile, duration_ns: u64) -> Self {
        let duration_ms = duration_ns as f64 / NS_PER_MS as f64;
        ProfileSamplers {
            hot: profile.model.sampler(),
            cold_revisit: profile.cold_revisit,
            // A quick revisit: the program touches the page again within
            // seconds (log-uniform 1-20 s).
            ln_revisit_lo: 1000f64.ln(),
            ln_revisit_span: 20_000f64.ln() - 1000f64.ln(),
            cold_tail: profile.cold_model.sampler(),
            // ×2 headroom: the renewal count routinely lands well above
            // duration/mean (short draws dominate the realized path), and
            // one avoided regrow is worth far more than the slack.
            hot_events_hint: (duration_ms / profile.model.mean_ms().max(1e-9)) as usize * 2 + 16,
        }
    }

    /// One cold-page interval: revisit-or-tail, two uniform draws.
    #[inline]
    fn cold_sample_ms(&self, rng: &mut SmallRng) -> f64 {
        let u_branch: f64 = rng.gen();
        let u_value: f64 = rng.gen();
        if u_branch < self.cold_revisit {
            (self.ln_revisit_lo + u_value * self.ln_revisit_span).exp()
        } else {
            self.cold_tail.sample_u(u_value)
        }
    }
}

/// Synthesizes one page's time-sorted event run.
fn page_events(
    s: &ProfileSamplers,
    hot_pages: u64,
    duration_ns: u64,
    seed: u64,
    page: u64,
) -> Vec<WriteEvent> {
    let mut rng = SmallRng::seed_from_u64(page_seed(seed, page));
    let ns_per_ms = NS_PER_MS as f64;
    let mut events = Vec::new();
    if page < hot_pages {
        events.reserve(s.hot_events_hint);
        // Stationary-ish phase: the first write falls inside the first
        // interval at a uniform point.
        let mut t_ns = (s.hot.sample_ms(&mut rng) * rng.gen::<f64>() * ns_per_ms) as u64;
        // From here the stream is pure (branch, value) pairs: block-buffer
        // the draws and evaluate the lanes straight-line.
        let mut buf = [0.0f64; 32];
        'window: while t_ns <= duration_ns {
            s.hot.fill_ms(&mut rng, &mut buf);
            for &step_ms in &buf {
                if t_ns > duration_ns {
                    break 'window;
                }
                events.push(WriteEvent {
                    time_ns: t_ns,
                    page,
                });
                let step = (step_ms * ns_per_ms) as u64;
                // Intervals are strictly positive (≥ 10 µs by construction),
                // but guard against pathological parameterizations.
                t_ns = t_ns.saturating_add(step.max(1));
            }
        }
    } else {
        let mut t_ns = (s.cold_sample_ms(&mut rng) * rng.gen::<f64>() * ns_per_ms) as u64;
        while t_ns <= duration_ns {
            events.push(WriteEvent {
                time_ns: t_ns,
                page,
            });
            let step = (s.cold_sample_ms(&mut rng) * ns_per_ms) as u64;
            t_ns = t_ns.saturating_add(step.max(1));
        }
    }
    events
}

/// Merges two time-sorted runs into `out` with galloping chunk copies:
/// each step binary-searches how far the current run extends below the
/// other run's head and copies that whole stretch at once, so a dominant
/// run (the usual shape — one hot page among many near-silent cold pages)
/// moves in a handful of `memcpy`-sized blocks instead of per-event steps.
/// Equal `(time, page)` keys are identical events, so either tie side
/// yields the same bytes.
fn merge_two(a: &[WriteEvent], b: &[WriteEvent], out: &mut Vec<WriteEvent>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            let run = a[i..].partition_point(|e| *e <= b[j]);
            out.extend_from_slice(&a[i..i + run]);
            i += run;
        } else {
            let run = b[j..].partition_point(|e| *e < a[i]);
            out.extend_from_slice(&b[j..j + run]);
            j += run;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// K-way merge of per-page runs (each time-sorted, one page per run) into
/// global `(time, page)` order. Ties across pages are broken by page id —
/// the same total order `sort_unstable` imposes on the concatenated vector,
/// so the result is identical to sort-after-concat.
///
/// Runs are merged two-shortest-first (Huffman order): small cold-page runs
/// coalesce among themselves before the dominant hot run is touched, so the
/// big run is copied O(1) times rather than once per merge level, and total
/// work stays O(N log k) for k same-sized runs.
fn merge_runs(runs: Vec<Vec<WriteEvent>>) -> Vec<WriteEvent> {
    let mut runs: Vec<Vec<WriteEvent>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    // Longest first, so the two shortest sit at the tail.
    runs.sort_unstable_by_key(|r| Reverse(r.len()));
    while runs.len() > 1 {
        let (Some(b), Some(a)) = (runs.pop(), runs.pop()) else {
            break;
        };
        let mut merged = Vec::with_capacity(a.len() + b.len());
        merge_two(&a, &b, &mut merged);
        let pos = runs.partition_point(|r| r.len() > merged.len());
        runs.insert(pos, merged);
    }
    runs.pop().unwrap_or_default()
}

/// Generates a deterministic write trace for `profile` from `seed`.
///
/// # Panics
///
/// Panics if the profile's interval model fails validation.
#[must_use]
pub fn generate(profile: &WorkloadProfile, seed: u64) -> WriteTrace {
    generate_with_jobs(profile, seed, 1)
}

/// Below this page count the pool is bypassed and synthesis runs inline.
/// A scaled-down trace (tens of pages, ~100 µs of work) loses more to
/// worker spawn/handoff than the fan-out returns — the
/// `trace_generation/netflix_scaled_jobs4` bench measured the pooled path
/// ~17 % *slower* than sequential at 32 pages. Output is unaffected:
/// `ordered_map_with` is byte-identical at every `jobs` value, so forcing
/// `jobs = 1` only picks the cheaper schedule.
pub const PARALLEL_PAGE_THRESHOLD: u64 = 128;

/// The job count synthesis actually uses: small traces are forced onto the
/// inline sequential path regardless of the requested fan-out.
fn effective_jobs(sim_pages: u64, jobs: usize) -> usize {
    if sim_pages < PARALLEL_PAGE_THRESHOLD {
        1
    } else {
        jobs
    }
}

/// Generates the trace with per-page synthesis fanned across `jobs`
/// workers (`0` = resolve automatically, as in [`memutil::par`]). The
/// result is byte-identical for every `jobs` value. Traces smaller than
/// [`PARALLEL_PAGE_THRESHOLD`] pages skip the pool entirely.
///
/// # Panics
///
/// Panics if the profile's interval model fails validation.
#[must_use]
pub fn generate_with_jobs(profile: &WorkloadProfile, seed: u64, jobs: usize) -> WriteTrace {
    profile
        .model
        .validate()
        .expect("invalid write-interval model");
    let duration_ns = (profile.sim_seconds * 1000.0 * NS_PER_MS as f64) as u64;
    // At least one hot page whenever the fraction is positive, so scaled-down
    // test traces keep both page classes.
    let hot_pages = if profile.hot_fraction > 0.0 {
        (profile.hot_fraction * profile.sim_pages as f64).ceil() as u64
    } else {
        0
    };
    let jobs = effective_jobs(profile.sim_pages, jobs);
    let samplers = ProfileSamplers::new(profile, duration_ns);
    let runs = par::ordered_map_with(jobs, profile.sim_pages as usize, |page| {
        page_events(&samplers, hot_pages, duration_ns, seed, page as u64)
    });
    WriteTrace::new(merge_runs(runs), duration_ns, profile.sim_pages)
}

/// The pre-wave sequential generator — one PRNG walk per page pushing into
/// a single vector, sorted by [`WriteTrace::new`] — retained as the slow
/// reference. [`generate_with_jobs`] is pinned byte-identical to it at
/// every `jobs` value by the equivalence property tests.
#[cfg(any(test, feature = "slow-reference"))]
pub mod reference {
    use super::{page_seed, Rng, SeedableRng, SmallRng, WorkloadProfile, WriteEvent, WriteTrace};
    use crate::NS_PER_MS;

    /// Sequential trace synthesis (the pre-wave implementation). Unlike
    /// the fast path it performs no model validation — equivalence
    /// harnesses hand it the same already-validated profiles.
    #[must_use]
    pub fn generate(profile: &WorkloadProfile, seed: u64) -> WriteTrace {
        let duration_ns = (profile.sim_seconds * 1000.0 * NS_PER_MS as f64) as u64;
        let hot_pages = if profile.hot_fraction > 0.0 {
            (profile.hot_fraction * profile.sim_pages as f64).ceil() as u64
        } else {
            0
        };
        let mut events = Vec::new();
        for page in 0..profile.sim_pages {
            let mut rng = SmallRng::seed_from_u64(page_seed(seed, page));
            let hot = page < hot_pages;
            let sample_ms = |rng: &mut SmallRng| {
                if hot {
                    profile.model.sample_ms(rng)
                } else if rng.gen::<f64>() < profile.cold_revisit {
                    (1000f64.ln() + rng.gen::<f64>() * (20_000f64.ln() - 1000f64.ln())).exp()
                } else {
                    profile.cold_model.sample(rng)
                }
            };
            let mut t_ns = (sample_ms(&mut rng) * rng.gen::<f64>() * NS_PER_MS as f64) as u64;
            while t_ns <= duration_ns {
                events.push(WriteEvent {
                    time_ns: t_ns,
                    page,
                });
                let step = (sample_ms(&mut rng) * NS_PER_MS as f64) as u64;
                t_ns = t_ns.saturating_add(step.max(1));
            }
        }
        WriteTrace::new(events, duration_ns, profile.sim_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_netflix() -> WorkloadProfile {
        WorkloadProfile::netflix().scaled(0.05)
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_netflix();
        assert_eq!(p.generate(1), p.generate(1));
        assert_ne!(p.generate(1), p.generate(2));
    }

    #[test]
    fn events_within_bounds() {
        let p = small_netflix();
        let t = p.generate(3);
        assert!(!t.is_empty());
        for e in t.events() {
            assert!(e.time_ns <= t.duration_ns());
            assert!(e.page < t.n_pages());
        }
    }

    #[test]
    fn every_hot_page_writes_quickly() {
        // Hot pages have ~10 ms mean intervals: a 2-second window covers all
        // of them. (Cold pages idle for minutes and may legitimately stay
        // silent in a short window.)
        let mut p = small_netflix();
        p.sim_pages = 32;
        p.hot_fraction = 1.0;
        p.sim_seconds = 2.0;
        let t = p.generate(4);
        let pages: std::collections::HashSet<_> = t.events().iter().map(|e| e.page).collect();
        assert_eq!(pages.len(), 32);
    }

    #[test]
    fn cold_pages_write_rarely_but_do_write() {
        let mut p = small_netflix();
        p.sim_pages = 64;
        p.hot_fraction = 0.0;
        p.sim_seconds = 60.0;
        let t = p.generate(9);
        let pages: std::collections::HashSet<_> = t.events().iter().map(|e| e.page).collect();
        // Cold pages idle on multi-minute scales: only some write within a
        // minute, and those write just a handful of times.
        assert!(pages.len() > 5, "only {} cold pages wrote", pages.len());
        assert!(pages.len() < 60, "cold pages too active: {}", pages.len());
        let per_page = t.len() as f64 / pages.len().max(1) as f64;
        assert!(
            per_page < 10.0,
            "cold pages too busy: {per_page} writes each"
        );
    }

    #[test]
    fn burst_dominance_survives_generation() {
        // Paper Fig. 7: >95% of (closed) write intervals under 1 ms.
        let p = small_netflix();
        let t = p.generate(5);
        let intervals = t.closed_intervals();
        let sub_ms = intervals.iter().filter(|i| i.len_ms() < 1.0).count();
        let frac = sub_ms as f64 / intervals.len() as f64;
        assert!(frac > 0.93, "sub-ms interval fraction {frac}");
    }

    #[test]
    fn long_intervals_dominate_time() {
        // Paper Fig. 9 shape at trace level (tail-censored intervals count
        // as idle time too).
        let mut p = WorkloadProfile::system_mgt();
        p.sim_pages = 200;
        let t = p.generate(6);
        let intervals = t.intervals_with_tail();
        let frac = stats::time_fraction_ge_ms(&intervals, 1024.0);
        assert!(frac > 0.6, "long-interval time fraction {frac}");
    }

    /// Seeded equivalence property: the fanned-out generator is
    /// byte-identical to the retained sequential reference at jobs
    /// {1, 2, 8}, across seeds and both a hot-heavy and a cold-heavy
    /// profile.
    #[test]
    fn prop_matches_reference_at_any_jobs() {
        let mut cold_heavy = small_netflix();
        cold_heavy.hot_fraction = 0.0;
        cold_heavy.sim_seconds = 30.0;
        // Above the bypass threshold, so the pooled path stays exercised
        // (the two small profiles take the forced-sequential path).
        let mut pooled = WorkloadProfile::netflix().scaled(0.25);
        pooled.sim_seconds = 10.0;
        assert!(pooled.sim_pages >= PARALLEL_PAGE_THRESHOLD);
        for profile in [small_netflix(), cold_heavy, pooled] {
            for seed in [1u64, 11, 0xDEAD_BEEF] {
                let expect = reference::generate(&profile, seed);
                for jobs in [1usize, 2, 8] {
                    let got = generate_with_jobs(&profile, seed, jobs);
                    assert_eq!(
                        got, expect,
                        "trace diverged from reference (seed={seed} jobs={jobs})"
                    );
                }
            }
        }
    }

    #[test]
    fn small_traces_bypass_the_pool() {
        // Below the threshold the requested fan-out is overridden to the
        // inline sequential path: the per-trace work is too small to
        // amortize the worker handoff (the `netflix_scaled_jobs4` bench
        // regression). At and above the threshold the request stands.
        let p = small_netflix();
        assert!(p.sim_pages < PARALLEL_PAGE_THRESHOLD);
        assert_eq!(effective_jobs(p.sim_pages, 4), 1);
        assert_eq!(effective_jobs(PARALLEL_PAGE_THRESHOLD - 1, 8), 1);
        assert_eq!(effective_jobs(PARALLEL_PAGE_THRESHOLD, 8), 8);
        assert_eq!(effective_jobs(PARALLEL_PAGE_THRESHOLD, 0), 0);
    }
}
