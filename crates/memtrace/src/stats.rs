//! Interval statistics behind paper Figs. 7, 8, 9, 11, 12, and 19.
//!
//! All functions operate on extracted [`Interval`]s (see
//! [`WriteTrace::closed_intervals`](crate::trace::WriteTrace::closed_intervals))
//! and return plain numbers/series, so the experiment harness can print them
//! in the paper's layout directly.

use crate::trace::Interval;

/// One bucket of the Fig. 7 write-interval histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket in milliseconds (the `< 1 ms`
    /// bucket has `lo_ms == 0.0`).
    pub lo_ms: f64,
    /// Exclusive upper bound in milliseconds.
    pub hi_ms: f64,
    /// Fraction of all intervals landing in the bucket (0–1).
    pub fraction: f64,
}

/// Fig. 7: distribution of write-interval lengths over power-of-two buckets
/// `[1, 2), [2, 4), … [32768, ∞)` ms plus a leading `< 1 ms` bucket.
#[must_use]
pub fn log2_histogram(intervals: &[Interval]) -> Vec<HistogramBucket> {
    const TOP: f64 = 32_768.0;
    let mut counts = [0u64; 17]; // <1, 1..2, …, 16384..32768, >=32768
    for iv in intervals {
        let ms = iv.len_ms();
        let idx = if ms < 1.0 {
            0
        } else if ms >= TOP {
            16
        } else {
            1 + ms.log2().floor() as usize
        };
        counts[idx] += 1;
    }
    let total = intervals.len().max(1) as f64;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let (lo, hi) = match i {
                0 => (0.0, 1.0),
                16 => (TOP, f64::INFINITY),
                _ => (2f64.powi(i as i32 - 1), 2f64.powi(i as i32)),
            };
            HistogramBucket {
                lo_ms: lo,
                hi_ms: hi,
                fraction: c as f64 / total,
            }
        })
        .collect()
}

/// Empirical complementary CDF `P(len > x)` at the given abscissae.
#[must_use]
pub fn ccdf_points(intervals: &[Interval], xs_ms: &[f64]) -> Vec<(f64, f64)> {
    let mut lens: Vec<f64> = intervals.iter().map(Interval::len_ms).collect();
    lens.sort_by(|a, b| a.partial_cmp(b).expect("interval lengths are finite"));
    let n = lens.len().max(1) as f64;
    xs_ms
        .iter()
        .map(|&x| {
            let above = lens.partition_point(|&l| l <= x);
            (x, (lens.len() - above) as f64 / n)
        })
        .collect()
}

/// Result of fitting `P(len > x) = k · x^(−α)` by least squares on the
/// log-log plane (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFit {
    /// Fitted tail index α.
    pub alpha: f64,
    /// Fitted scale k.
    pub k: f64,
    /// Coefficient of determination of the log-log regression.
    pub r2: f64,
    /// Number of (x, p) points used.
    pub points: usize,
}

/// Fits the Pareto tail of the interval distribution over logarithmically
/// spaced abscissae in `[x_min_ms, x_max_ms]`.
///
/// Returns `None` if fewer than three abscissae carry positive probability
/// mass (nothing to regress on).
#[must_use]
pub fn pareto_fit(intervals: &[Interval], x_min_ms: f64, x_max_ms: f64) -> Option<ParetoFit> {
    let n_points = 24;
    let xs: Vec<f64> = (0..n_points)
        .map(|i| {
            (x_min_ms.ln() + (x_max_ms.ln() - x_min_ms.ln()) * i as f64 / (n_points - 1) as f64)
                .exp()
        })
        .collect();
    // Require a minimum tail sample behind each point: CCDF estimates backed
    // by a handful of intervals are log-noise and would corrupt the fit.
    let min_tail_count = 10.0;
    let n_intervals = intervals.len() as f64;
    let pts: Vec<(f64, f64)> = ccdf_points(intervals, &xs)
        .into_iter()
        .filter(|&(_, p)| p * n_intervals >= min_tail_count)
        .map(|(x, p)| (x.ln(), p.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot <= 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(ParetoFit {
        alpha: -slope,
        k: intercept.exp(),
        r2,
        points: pts.len(),
    })
}

/// Fig. 9: fraction of total interval *time* spent in intervals at least
/// `threshold_ms` long.
#[must_use]
pub fn time_fraction_ge_ms(intervals: &[Interval], threshold_ms: f64) -> f64 {
    let total: f64 = intervals.iter().map(|i| i.len_ns as f64).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let long: f64 = intervals
        .iter()
        .filter(|i| i.len_ms() >= threshold_ms)
        .map(|i| i.len_ns as f64)
        .sum();
    long / total
}

/// Fig. 11: for each current-interval length `c`, the probability that the
/// remaining interval length exceeds `ril_ms`, i.e.
/// `P(len > c + ril | len > c)` over closed intervals.
#[must_use]
pub fn p_ril_gt_given_cil(intervals: &[Interval], ril_ms: f64, cils_ms: &[f64]) -> Vec<(f64, f64)> {
    let mut lens: Vec<f64> = intervals
        .iter()
        .filter(|i| i.closed)
        .map(Interval::len_ms)
        .collect();
    lens.sort_by(|a, b| a.partial_cmp(b).expect("interval lengths are finite"));
    cils_ms
        .iter()
        .map(|&c| {
            let alive = lens.len() - lens.partition_point(|&l| l <= c);
            let long = lens.len() - lens.partition_point(|&l| l <= c + ril_ms);
            let p = if alive == 0 {
                0.0
            } else {
                long as f64 / alive as f64
            };
            (c, p)
        })
        .collect()
}

/// Fig. 12: time coverage of predicting at current-interval length `c`.
/// A prediction at `c` is *correct* when the interval indeed continues for
/// more than `ril_ms`; the covered time is the remainder `(len − c)` of each
/// correctly predicted interval, normalized by total interval time.
#[must_use]
pub fn coverage_given_cil(intervals: &[Interval], ril_ms: f64, cils_ms: &[f64]) -> Vec<(f64, f64)> {
    let total: f64 = intervals.iter().map(|i| i.len_ns as f64 / 1e6).sum();
    cils_ms
        .iter()
        .map(|&c| {
            if total <= 0.0 {
                return (c, 0.0);
            }
            let covered: f64 = intervals
                .iter()
                .filter(|i| i.len_ms() > c + ril_ms)
                .map(|i| i.len_ms() - c)
                .sum();
            (c, covered / total)
        })
        .collect()
}

/// The standard CIL abscissae of Figs. 11 and 12: 1, 2, 4, … 32768 ms.
#[must_use]
pub fn standard_cils_ms() -> Vec<f64> {
    (0..16).map(|i| 2f64.powi(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadProfile;

    fn iv(len_ms: f64) -> Interval {
        Interval {
            page: 0,
            start_ns: 0,
            len_ns: (len_ms * 1e6) as u64,
            closed: true,
        }
    }

    #[test]
    fn histogram_buckets_sum_to_one() {
        let intervals: Vec<Interval> = [0.5, 0.7, 1.5, 3.0, 100.0, 40_000.0]
            .iter()
            .map(|&l| iv(l))
            .collect();
        let h = log2_histogram(&intervals);
        assert_eq!(h.len(), 17);
        let sum: f64 = h.iter().map(|b| b.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((h[0].fraction - 2.0 / 6.0).abs() < 1e-9, "sub-ms bucket");
        assert!((h[16].fraction - 1.0 / 6.0).abs() < 1e-9, "overflow bucket");
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = log2_histogram(&[iv(2.0)]);
        // 2.0 ms falls in [2,4).
        let idx = h.iter().position(|b| b.fraction > 0.0).unwrap();
        assert_eq!(h[idx].lo_ms, 2.0);
        assert_eq!(h[idx].hi_ms, 4.0);
    }

    #[test]
    fn ccdf_is_monotone_and_correct() {
        let intervals: Vec<Interval> = [1.0, 2.0, 3.0, 4.0].iter().map(|&l| iv(l)).collect();
        let pts = ccdf_points(&intervals, &[0.5, 1.0, 2.5, 4.0, 5.0]);
        let ps: Vec<f64> = pts.iter().map(|p| p.1).collect();
        assert_eq!(ps, vec![1.0, 0.75, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn pareto_fit_recovers_alpha() {
        // Synthesize a clean Pareto sample and check recovery.
        use memutil::rng::SeedableRng;
        use memutil::rng::SmallRng;
        let p = crate::interval::BoundedPareto::new(1.0, 0.6, 1.0e7);
        let mut rng = SmallRng::seed_from_u64(7);
        let intervals: Vec<Interval> = (0..100_000).map(|_| iv(p.sample(&mut rng))).collect();
        let fit = pareto_fit(&intervals, 1.0, 10_000.0).unwrap();
        assert!(
            (fit.alpha - 0.6).abs() < 0.05,
            "alpha {} (expected 0.6)",
            fit.alpha
        );
        assert!(fit.r2 > 0.99, "r2 {}", fit.r2);
    }

    #[test]
    fn pareto_fit_on_generated_workloads_matches_fig8() {
        // Paper Fig. 8: R² between 0.93 and 0.99 over the tail region.
        for w in [
            WorkloadProfile::ac_brotherhood(),
            WorkloadProfile::netflix(),
            WorkloadProfile::system_mgt(),
        ] {
            let t = w.clone().scaled(0.3).with_window(60.0).generate(11);
            let intervals = t.closed_intervals();
            let fit = pareto_fit(&intervals, 1.0, 10_000.0).unwrap();
            assert!(fit.r2 > 0.8, "{}: r2 {}", w.name, fit.r2);
            assert!(
                fit.alpha > 0.2 && fit.alpha < 1.2,
                "{}: alpha {}",
                w.name,
                fit.alpha
            );
        }
    }

    #[test]
    fn time_fraction_simple() {
        let intervals = vec![iv(1.0), iv(999.0), iv(2000.0)];
        let f = time_fraction_ge_ms(&intervals, 1024.0);
        assert!((f - 2000.0 / 3000.0).abs() < 1e-9);
        assert_eq!(time_fraction_ge_ms(&[], 1.0), 0.0);
    }

    #[test]
    fn ril_conditional_increases_with_cil() {
        let w = WorkloadProfile::netflix().scaled(0.5).with_window(120.0);
        let t = w.generate(13);
        let intervals = t.closed_intervals();
        let pts = p_ril_gt_given_cil(&intervals, 1024.0, &standard_cils_ms());
        // Probability at tiny CIL is small (burst intervals dominate); at
        // 512 ms it is substantial (paper: 50-80%); it rises with CIL up to
        // the region where few intervals survive and sampling noise sets in.
        let at_1 = pts[0].1;
        let at_512 = pts.iter().find(|p| p.0 == 512.0).unwrap().1;
        assert!(at_1 < 0.25, "P at CIL=1: {at_1}");
        assert!((0.35..1.0).contains(&at_512), "P at CIL=512: {at_512}");
        assert!(at_512 > 2.0 * at_1, "DHR growth from CIL 1 to 512");
        for w in pts.windows(2).take_while(|w| w[1].0 <= 1024.0) {
            if w[0].1 > 0.0 && w[1].1 > 0.0 {
                assert!(w[1].1 > w[0].1 - 0.1, "non-monotone: {w:?}");
            }
        }
    }

    #[test]
    fn coverage_decreases_with_cil() {
        let w = WorkloadProfile::ac_brotherhood()
            .scaled(0.02)
            .with_window(120.0);
        let t = w.generate(17);
        let intervals = t.intervals_with_tail();
        let pts = coverage_given_cil(&intervals, 1024.0, &standard_cils_ms());
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "coverage must not increase");
        }
        // Paper Fig. 12: still substantial at 512-2048 ms.
        let at_1024 = pts.iter().find(|p| p.0 == 1024.0).unwrap().1;
        assert!(at_1024 > 0.5, "coverage at CIL 1024: {at_1024}");
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert_eq!(log2_histogram(&[]).len(), 17);
        assert!(pareto_fit(&[], 1.0, 100.0).is_none());
        assert_eq!(p_ril_gt_given_cil(&[], 1024.0, &[1.0])[0].1, 0.0);
        assert_eq!(coverage_given_cil(&[], 1024.0, &[1.0])[0].1, 0.0);
    }
}
