//! `xtask fleet` — fleet-scale simulation driver and CI gates.
//!
//! * `fleet run` — expand and run a fleet, printing the roll-up summary
//!   (or the full `memcon-fleet/v1` JSON with `--json`).
//! * `fleet bench` — the scaling gate: one 64-DIMM fleet stepped at
//!   `--jobs 1` and `--jobs 4`; on hosts with ≥ 4 CPUs the parallel run
//!   must be ≥ 2.5× faster (explicitly marked `gate skipped (cpus=N)`
//!   elsewhere). Both runs must also be byte-identical, so the gate
//!   doubles as a determinism check. The outcome lands in
//!   `target/FLEET_bench.json` (`memcon-fleetbench/v1`) with the gate
//!   disposition recorded as `passed` / `failed` / `skipped`.
//! * `fleet soak` — chaos soak: seeded all-site fault plans over a fleet,
//!   asserting no panic, zero uncorrectable escapes, refresh-correctness
//!   on every shard, and jobs 1-vs-4 byte-identical results.
//! * `fleet --smoke` — the quick CI leg: a small fleet (fault-free and
//!   faulted) byte-diffed at jobs 1 vs 4, fleet report and telemetry
//!   deterministic section both.

use std::sync::Arc;

use ::fleet::engine::run_fleet;
use ::fleet::{FleetConfig, FleetReport};
use faultinject::{FaultPlan, Site, SiteSpec};

/// Base seed of fleet soak plan `i` (plan seed = base + i).
const PLAN_SEED_BASE: u64 = 0xF1EE_7000;

/// Required jobs-4-over-jobs-1 speedup of the 64-DIMM bench on hosts with
/// at least [`GATE_MIN_CPUS`] CPUs.
const GATE_SPEEDUP: f64 = 2.5;

/// CPU count below which the bench speedup gate is informational only.
const GATE_MIN_CPUS: usize = 4;

/// Schema tag of the `fleet bench` JSON report written to
/// `target/FLEET_bench.json`.
const FLEET_BENCH_SCHEMA: &str = "memcon-fleetbench/v1";

/// Entry point for `xtask fleet <args>`; returns a process exit code.
#[must_use]
pub fn fleet_cmd(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke_cmd(),
        Some("run") => run_cmd(&args[1..]),
        Some("bench") => bench_cmd(),
        Some("soak") => soak_cmd(&args[1..]),
        other => {
            eprintln!("fleet: unknown subcommand {other:?} (expected run, bench, soak, --smoke)");
            2
        }
    }
}

/// Runs `config` at `jobs` under a fresh enabled telemetry registry and
/// returns the report plus the byte-stable pair the determinism gates
/// compare: (fleet report deterministic section, telemetry deterministic
/// section).
fn run_instrumented(config: &FleetConfig, jobs: usize) -> (FleetReport, String, String) {
    let registry = Arc::new(telemetry::Registry::new());
    registry.set_enabled(true);
    let guard = telemetry::install(Arc::clone(&registry));
    let report = run_fleet(config, jobs);
    drop(guard);
    let telemetry_det = registry
        .report()
        .get("deterministic")
        .cloned()
        .unwrap_or_else(memutil::json::Json::obj)
        .emit();
    let report_det = report.deterministic_emit();
    (report, report_det, telemetry_det)
}

fn print_summary(report: &FleetReport) {
    println!(
        "fleet: {} shards, {} epochs x {} quanta, seed {:#x}",
        report.shards_total, report.epochs, report.epoch_quanta, report.seed
    );
    println!(
        "fleet: refresh reduction {:.2}% (ops {:.0} vs baseline {:.0}), lo coverage {:.2}%",
        report.refresh_reduction * 100.0,
        report.refresh_ops,
        report.baseline_ops,
        report.lo_coverage * 100.0
    );
    println!(
        "fleet: tests {} correct / {} mispredicted, {} failing, {} final hi pages, {} faults",
        report.tests_correct,
        report.tests_mispredicted,
        report.failing_tests,
        report.final_hi_pages,
        report.faults_injected
    );
    let lat = &report.step_latency;
    println!(
        "fleet: step latency over {} samples: p50 {}us p99 {}us max {}us",
        lat.samples,
        lat.p50_ns / 1_000,
        lat.p99_ns / 1_000,
        lat.max_ns / 1_000
    );
}

fn run_cmd(args: &[String]) -> i32 {
    let mut nodes = 64u64;
    let mut seed = 0xF1EE7u64;
    let mut jobs = 0usize;
    let mut json = false;
    let mut faults = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let take = |it: &mut std::slice::Iter<'_, String>, what: &str| {
            let v = it.next().and_then(|v| v.parse::<u64>().ok());
            if v.is_none() {
                eprintln!("fleet: {what} expects a number");
            }
            v
        };
        match arg.as_str() {
            "--nodes" => match take(&mut it, "--nodes") {
                Some(n) => nodes = n,
                None => return 2,
            },
            "--seed" => match take(&mut it, "--seed") {
                Some(s) => seed = s,
                None => return 2,
            },
            "--jobs" => match take(&mut it, "--jobs") {
                Some(j) => jobs = j as usize,
                None => return 2,
            },
            "--json" => json = true,
            "--faults" => faults = true,
            other => {
                eprintln!(
                    "fleet: unknown argument {other:?} \
                     (expected --nodes N, --seed S, --jobs J, --json, --faults)"
                );
                return 2;
            }
        }
    }
    let mut config = FleetConfig::small(nodes, seed);
    if faults {
        config.fault_plan = Some(soak_plan(PLAN_SEED_BASE));
    }
    if let Err(e) = config.validate() {
        eprintln!("fleet: invalid configuration: {e}");
        return 2;
    }
    let (report, _, _) = run_instrumented(&config, jobs);
    if json {
        println!("{}", report.to_json().emit());
    } else {
        print_summary(&report);
    }
    if report.uncorrectable_escapes > 0 {
        eprintln!(
            "fleet: FAILED: {} uncorrectable escapes",
            report.uncorrectable_escapes
        );
        return 1;
    }
    0
}

/// An all-sites fault plan at moderate rates (the chaos-soak shape).
fn soak_plan(seed: u64) -> Arc<FaultPlan> {
    let mut plan = FaultPlan::new(seed);
    for site in Site::ALL {
        plan = plan.with_site(site, SiteSpec::rate(0.05));
    }
    Arc::new(plan)
}

/// The quick CI leg: a small fleet byte-diffed at jobs 1 vs 4, fault-free
/// and with a fault plan armed.
fn smoke_cmd() -> i32 {
    let mut failed = false;
    for faults in [false, true] {
        let mut config = FleetConfig::small(8, 0x540CE);
        if faults {
            config.fault_plan = Some(soak_plan(PLAN_SEED_BASE));
        }
        let label = if faults { "faulted" } else { "fault-free" };
        let (report_1, det_1, tel_1) = run_instrumented(&config, 1);
        let (_, det_4, tel_4) = run_instrumented(&config, 4);
        if det_1 != det_4 {
            eprintln!("fleet: smoke FAILED ({label}): fleet report diverges at jobs 1 vs 4");
            failed = true;
        }
        if tel_1 != tel_4 {
            eprintln!(
                "fleet: smoke FAILED ({label}): telemetry deterministic section diverges \
                 at jobs 1 vs 4"
            );
            failed = true;
        }
        if report_1.uncorrectable_escapes > 0 {
            eprintln!(
                "fleet: smoke FAILED ({label}): {} uncorrectable escapes",
                report_1.uncorrectable_escapes
            );
            failed = true;
        }
        if faults && report_1.faults_injected == 0 {
            eprintln!("fleet: smoke FAILED ({label}): fault plan armed but nothing fired");
            failed = true;
        }
        if !failed {
            println!(
                "fleet: smoke {label}: jobs 1 vs 4 byte-identical \
                 ({} report bytes, {} telemetry bytes)",
                det_1.len(),
                tel_1.len()
            );
        }
    }
    if failed {
        1
    } else {
        println!("fleet: smoke passed");
        0
    }
}

/// The 64-DIMM scaling gate: same fleet plan stepped at jobs 1 and 4,
/// byte-compared, with the ≥ 2.5× speedup requirement enforced on hosts
/// with ≥ 4 CPUs.
fn bench_cmd() -> i32 {
    if cfg!(debug_assertions) {
        println!(
            "fleet: NOTE: xtask built without optimizations; prefer \
             `cargo run --release -p xtask -- fleet bench`"
        );
    }
    let config = FleetConfig::small(64, 0xBE7C4);
    let plan = ::fleet::FleetPlan::expand(&config, 0);
    let time_run = |jobs: usize| -> (String, u64) {
        // Best of 3: the gate compares compute scaling, not scheduler
        // noise; the minimum is the standard noise-robust statistic here
        // (same philosophy as `bench compare`'s min check).
        let mut best_ns = u64::MAX;
        let mut det = String::new();
        for _ in 0..3 {
            let mut fleet = ::fleet::Fleet::new(&plan);
            let (report, elapsed_ns) = telemetry::time_ns(|| fleet.run_to_completion(jobs));
            best_ns = best_ns.min(elapsed_ns);
            det = report.deterministic_emit();
        }
        (det, best_ns)
    };
    let (det_1, ns_1) = time_run(1);
    let (det_4, ns_4) = time_run(4);
    if det_1 != det_4 {
        eprintln!("fleet: bench FAILED: jobs 1 vs 4 results diverge");
        return 1;
    }
    let speedup = ns_1 as f64 / ns_4.max(1) as f64;
    println!(
        "fleet: 64-DIMM step: jobs 1 {}ms, jobs 4 {}ms, speedup {speedup:.2}x",
        ns_1 / 1_000_000,
        ns_4 / 1_000_000
    );
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let gate = if cpus < GATE_MIN_CPUS {
        "skipped"
    } else if speedup < GATE_SPEEDUP {
        "failed"
    } else {
        "passed"
    };
    write_bench_report(ns_1, ns_4, speedup, cpus, gate);
    match gate {
        "skipped" => {
            // The explicit marker a CI log scraper can key on: the speedup
            // requirement was NOT evaluated, it did not vacuously pass.
            println!("fleet: gate skipped (cpus={cpus}): host below {GATE_MIN_CPUS} CPUs, {GATE_SPEEDUP}x speedup gate is informational only");
            0
        }
        "failed" => {
            eprintln!(
                "fleet: bench FAILED: speedup {speedup:.2}x below the {GATE_SPEEDUP}x gate \
                 on a {cpus}-CPU host"
            );
            1
        }
        _ => {
            println!("fleet: speedup gate passed ({speedup:.2}x >= {GATE_SPEEDUP}x)");
            0
        }
    }
}

/// Writes the machine-readable `fleet bench` outcome (including a gate
/// disposition of `passed` / `failed` / `skipped`, so a low-CPU host's
/// skip is recorded rather than indistinguishable from a pass) to
/// `target/FLEET_bench.json`.
fn write_bench_report(ns_1: u64, ns_4: u64, speedup: f64, cpus: usize, gate: &str) {
    let report = memutil::json::Json::obj()
        .field("schema", FLEET_BENCH_SCHEMA)
        .field("nodes", 64u64)
        .field("ns_jobs1", ns_1)
        .field("ns_jobs4", ns_4)
        .field("speedup", speedup)
        .field("cpus", cpus as u64)
        .field("gate_min_cpus", GATE_MIN_CPUS as u64)
        .field("gate_speedup", GATE_SPEEDUP)
        .field("gate", gate)
        .field(
            "profile",
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        )
        .emit();
    let path = crate::workspace_root().join("target/FLEET_bench.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, report + "\n") {
        Ok(()) => println!("fleet: bench report written to {}", path.display()),
        Err(e) => eprintln!("fleet: could not write {}: {e}", path.display()),
    }
}

fn soak_cmd(args: &[String]) -> i32 {
    let mut plans = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--plans" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("fleet: --plans expects a number");
                return 2;
            };
            plans = n;
        } else if let Some(v) = arg.strip_prefix("--plans=") {
            let Ok(n) = v.parse() else {
                eprintln!("fleet: --plans expects a number, got '{v}'");
                return 2;
            };
            plans = n;
        } else {
            eprintln!("fleet: unknown argument {arg:?} (expected --plans N)");
            return 2;
        }
    }
    if plans == 0 {
        eprintln!("fleet: --plans must be at least 1");
        return 2;
    }
    let mut failed = false;
    for i in 0..plans {
        let seed = PLAN_SEED_BASE + i as u64;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| soak_one(seed)));
        match outcome {
            Ok(Ok(summary)) => {
                println!(
                    "fleet: soak plan {}/{plans} (seed {seed:#x}): {summary}",
                    i + 1
                );
            }
            Ok(Err(e)) => {
                eprintln!(
                    "fleet: soak plan {}/{plans} (seed {seed:#x}) FAILED: {e}",
                    i + 1
                );
                failed = true;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                eprintln!(
                    "fleet: soak plan {}/{plans} (seed {seed:#x}) PANICKED: {msg}",
                    i + 1
                );
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("fleet: soak FAILED");
        1
    } else {
        println!("fleet: soak passed ({plans} plan(s))");
        0
    }
}

/// One soak plan: a 16-shard faulted fleet at jobs 1 vs 4.
fn soak_one(seed: u64) -> Result<String, String> {
    let mut config = FleetConfig::small(16, seed ^ 0xBAD5EED);
    config.fault_plan = Some(soak_plan(seed));
    let run = |jobs: usize| -> (FleetReport, String, String) { run_instrumented(&config, jobs) };
    let (report, det_1, tel_1) = run(1);
    let (_, det_4, tel_4) = run(4);
    if det_1 != det_4 {
        return Err("fleet report diverges at jobs 1 vs 4".into());
    }
    if tel_1 != tel_4 {
        return Err("telemetry deterministic section diverges at jobs 1 vs 4".into());
    }
    if report.faults_injected == 0 {
        return Err("plan armed but no fault fired".into());
    }
    if report.uncorrectable_escapes > 0 {
        return Err(format!(
            "{} uncorrectable escapes",
            report.uncorrectable_escapes
        ));
    }
    Ok(format!(
        "{} faults over {} shards, reduction {:.2}%, jobs 1-vs-4 identical",
        report.faults_injected,
        report.shards_total,
        report.refresh_reduction * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gate_passes() {
        assert_eq!(smoke_cmd(), 0);
    }

    #[test]
    fn soak_plan_arms_every_site() {
        let plan = soak_plan(PLAN_SEED_BASE);
        for site in Site::ALL {
            assert!(plan.site(site).is_some(), "{} not armed", site.name());
        }
    }

    #[test]
    fn run_cmd_rejects_bad_flags() {
        assert_eq!(run_cmd(&["--bogus".to_string()]), 2);
        assert_eq!(fleet_cmd(&["frobnicate".to_string()]), 2);
    }
}
