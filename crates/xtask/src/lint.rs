//! `memlint` — repo-specific source lints with a ratcheted allowlist.
//!
//! Five rules, all motivated by past or feared bug classes in a
//! cycle-accurate DRAM simulator:
//!
//! * **`no-unwrap`** — `.unwrap()` / `.expect(...)` in non-test library
//!   code. Library crates must surface errors as values; aborting inside
//!   a long figure-reproduction run loses hours of work.
//! * **`no-panic`** — `panic!` in non-test library code, same rationale.
//!   (Deliberate invariant panics, e.g. the `strict-invariants` auditor,
//!   are frozen in the ratchet or carry an inline allow marker.)
//! * **`cast-truncation`** — `as` casts to a type narrower than 64 bits on
//!   lines handling addresses or cycle counts (identifiers mentioning
//!   `cycle`/`addr`/`row`/`col`/`bank`/`page`). A truncated cycle counter
//!   silently wraps after hours of simulated time.
//! * **`float-eq`** — `==` / `!=` where an operand is a timing value
//!   (identifier containing `_ns` or `_ms`). Timing arithmetic mixes
//!   ns→cycle conversions; exact float comparison is almost always a bug
//!   outside of test assertions on closed-form constants.
//! * **`no-instant`** — `Instant::now` outside `crates/telemetry/`. Wall
//!   clocks in simulation code are the classic way nondeterminism sneaks
//!   into "deterministic" results; all timing measurements must flow
//!   through the telemetry spans (reported in the non-deterministic
//!   `timing` section) or the frozen `memutil::bench` harness.
//!
//! The scanner is a line-based heuristic, not a parser: string literals,
//! char literals and comments are stripped before matching, `#[cfg(test)]`
//! regions are excluded by brace tracking, and a raw line containing
//! `memlint: allow` is skipped entirely (a standalone comment line with the
//! marker also covers the line below it). Bypassing it is easy — the point
//! is to catch the default path, not an adversary.
//!
//! Pre-existing violations are frozen per `(rule, file)` in
//! `memlint.ratchet`; only *new* violations fail the lint.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How a source file is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: all four rules apply.
    Library,
    /// Binary targets (`src/main.rs`, `src/bin/**`): panics and unwraps
    /// are legitimate CLI error handling; only the data-integrity rules
    /// (`cast-truncation`, `float-eq`) apply.
    Binary,
    /// Tests, benches, examples: no rules apply.
    Test,
}

/// One rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`no-unwrap`, `no-panic`, `cast-truncation`,
    /// `float-eq`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// All rule identifiers, in report order.
pub const RULES: [&str; 5] = [
    "no-unwrap",
    "no-panic",
    "cast-truncation",
    "float-eq",
    "no-instant",
];

/// Classifies a workspace-relative path.
#[must_use]
pub fn classify(path: &str) -> FileClass {
    let p = path.replace('\\', "/");
    for dir in ["tests/", "benches/", "examples/"] {
        if p.starts_with(dir) || p.contains(&format!("/{dir}")) {
            return FileClass::Test;
        }
    }
    if p.ends_with("/main.rs") || p.contains("/bin/") {
        return FileClass::Binary;
    }
    FileClass::Library
}

/// Strips string literals, char literals, and `//` comments from one line
/// of source, so rule needles never match inside quoted text. Returns the
/// stripped line and whether a `/* … */` block comment opened (`true`) or
/// the incoming block-comment state after the line.
fn strip_line(raw: &str, mut in_block: bool) -> (String, bool) {
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if in_block {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break,
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                in_block = true;
                i += 2;
            }
            b'"' => {
                // Skip the string literal, honouring backslash escapes.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push(' ');
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{..}') vs lifetime ('a in
                // generics): a literal is one (possibly escaped) char then
                // a closing quote; a lifetime never closes.
                let rest = &raw[i + 1..];
                let close = if rest.starts_with('\\') {
                    // Skip the backslash and the escaped char (which may
                    // itself be a quote), then find the closing quote.
                    rest.char_indices()
                        .nth(2)
                        .and_then(|(k, _)| rest[k..].find('\'').map(|j| k + j))
                } else {
                    let mut it = rest.char_indices();
                    match (it.next(), it.next()) {
                        (Some((_, c)), Some((k, '\''))) if c != '\'' => Some(k),
                        _ => None,
                    }
                };
                if let Some(j) = close {
                    i += 1 + j + 1;
                    out.push(' ');
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    (out, in_block)
}

/// A source line after preprocessing: raw text, stripped text, and whether
/// it sits inside a `#[cfg(test)]` region.
#[derive(Debug)]
struct Line {
    number: usize,
    raw: String,
    stripped: String,
    in_test: bool,
}

/// Splits `content` into preprocessed lines, tracking block comments and
/// `#[cfg(test)]` regions (attribute, optional further attributes, then
/// the braced item — skipped until its braces balance).
fn preprocess(content: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut in_block = false;
    // cfg(test) tracking: armed after the attribute, counting once the
    // item's first `{` appears, inside until depth returns to zero.
    let mut armed = false;
    let mut depth: i64 = 0;
    let mut opened = false;
    let mut in_test = false;

    for (idx, raw) in content.lines().enumerate() {
        let (stripped, next_block) = strip_line(raw, in_block);
        in_block = next_block;
        let trimmed = stripped.trim();

        if !in_test && trimmed.starts_with("#[cfg(test)]") {
            armed = true;
            depth = 0;
            opened = false;
        } else if armed && !in_test {
            // Skip any further attributes between #[cfg(test)] and the item.
            if !trimmed.starts_with("#[") {
                in_test = true;
            }
        }

        if in_test {
            for c in stripped.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            lines.push(Line {
                number: idx + 1,
                raw: raw.to_string(),
                stripped,
                in_test: true,
            });
            if opened && depth <= 0 {
                in_test = false;
                armed = false;
            }
            continue;
        }

        lines.push(Line {
            number: idx + 1,
            raw: raw.to_string(),
            stripped,
            in_test: false,
        });
    }
    lines
}

/// Identifier-ish token ending at byte `end` of `s`, skipping whitespace
/// (for operand checks around an operator).
fn token_before(s: &str, mut end: usize) -> &str {
    let bytes = s.as_bytes();
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphanumeric() || "_.()".contains(c) {
            start -= 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// Identifier-ish token starting at byte `start` of `s`, skipping
/// whitespace.
fn token_after(s: &str, mut start: usize) -> &str {
    let bytes = s.as_bytes();
    while start < bytes.len() && bytes[start].is_ascii_whitespace() {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_ascii_alphanumeric() || "_.()".contains(c) {
            end += 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// Integer types narrower than the 64-bit address/cycle domain.
const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments marking a line as address/cycle arithmetic.
const ADDR_CYCLE_WORDS: [&str; 6] = ["cycle", "addr", "row", "col", "bank", "page"];

fn timing_token(tok: &str) -> bool {
    tok.contains("_ns") || tok.contains("_ms")
}

/// Scans one file's content. `path` is workspace-relative and determines
/// which rules apply (see [`classify`]).
#[must_use]
pub fn scan_source(path: &str, content: &str) -> Vec<Violation> {
    let class = classify(path);
    if class == FileClass::Test {
        return Vec::new();
    }
    // Built by concatenation so the scanner never flags its own source.
    let allow_marker: String = ["memlint:", " allow"].concat();
    let unwrap_needle: String = [".unwrap", "()"].concat();
    let expect_needle: String = [".expect", "("].concat();
    let panic_needle: String = ["panic", "!"].concat();
    let instant_needle: String = ["Instant::", "now"].concat();
    // The telemetry crate owns the wall clock (span timers); everyone else
    // must route timing through it.
    let instant_exempt = path.replace('\\', "/").starts_with("crates/telemetry/");

    let mut out = Vec::new();
    // A marker suppresses its own line; a standalone comment line carrying
    // the marker suppresses the line below it (survives rustfmt splitting
    // a trailing comment off a long statement).
    let mut prev_comment_allows = false;
    for line in preprocess(content) {
        let has_marker = line.raw.contains(&allow_marker);
        let suppressed = line.in_test || has_marker || prev_comment_allows;
        prev_comment_allows = has_marker && line.raw.trim_start().starts_with("//");
        if suppressed {
            continue;
        }
        let s = &line.stripped;
        let mut push = |rule: &'static str| {
            out.push(Violation {
                rule,
                path: path.to_string(),
                line: line.number,
                excerpt: line.raw.trim().to_string(),
            });
        };

        if class == FileClass::Library {
            if s.contains(&unwrap_needle) || s.contains(&expect_needle) {
                push("no-unwrap");
            }
            // `debug_assert!`/`assert!` are fine; only the explicit macro
            // counts, and `#[should_panic]` never survives stripping into
            // a bare `panic!` token.
            if find_macro(s, &panic_needle) {
                push("no-panic");
            }
        }

        // Determinism and data-integrity rules apply to libraries and
        // binaries alike.
        if !instant_exempt && s.contains(&instant_needle) {
            push("no-instant");
        }
        let lower = s.to_lowercase();
        if ADDR_CYCLE_WORDS.iter().any(|w| lower.contains(w)) {
            let mut from = 0;
            while let Some(pos) = s[from..].find(" as ") {
                let at = from + pos;
                let target = token_after(s, at + 4);
                let target_ty = target.trim_end_matches([',', ')', ';', '}']);
                if NARROW_TYPES.contains(&target_ty) {
                    push("cast-truncation");
                    break;
                }
                from = at + 4;
            }
        }

        for op in ["==", "!="] {
            let mut from = 0;
            let mut hit = false;
            while let Some(pos) = s[from..].find(op) {
                let at = from + pos;
                let prev = at.checked_sub(1).map(|i| s.as_bytes()[i] as char);
                let next = s.as_bytes().get(at + op.len()).map(|&b| b as char);
                let standalone =
                    !matches!(prev, Some('<' | '>' | '!' | '=')) && !matches!(next, Some('='));
                if standalone
                    && (timing_token(token_before(s, at))
                        || timing_token(token_after(s, at + op.len())))
                {
                    hit = true;
                    break;
                }
                from = at + op.len();
            }
            if hit {
                push("float-eq");
                break;
            }
        }
    }
    out
}

/// `panic!` must be a macro invocation, not a substring of another
/// identifier (e.g. `should_panic` or `catch_panic!`-style names).
fn find_macro(s: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = s[from..].find(needle) {
        let at = from + pos;
        let prev = at.checked_sub(1).map(|i| s.as_bytes()[i] as char);
        let boundary = !matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Ratchet
// ---------------------------------------------------------------------------

/// Frozen violation counts, keyed by `(rule, workspace-relative path)`.
pub type Ratchet = BTreeMap<(String, String), usize>;

/// Parses a ratchet file: one `rule<TAB>path<TAB>count` entry per line,
/// `#` comments and blank lines ignored.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_ratchet(text: &str) -> Result<Ratchet, String> {
    let mut map = Ratchet::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let entry = (|| {
            let rule = parts.next()?;
            let path = parts.next()?;
            let count: usize = parts.next()?.parse().ok()?;
            Some(((rule.to_string(), path.to_string()), count))
        })();
        match entry {
            Some((key, count)) => {
                map.insert(key, count);
            }
            None => return Err(format!("ratchet line {} is malformed: {line:?}", idx + 1)),
        }
    }
    Ok(map)
}

/// Serialises a ratchet (zero-count entries dropped, keys sorted).
#[must_use]
pub fn format_ratchet(ratchet: &Ratchet) -> String {
    let mut out = String::from(
        "# memlint ratchet: frozen per-(rule, file) violation counts.\n\
         # Regenerate with `cargo run -p xtask -- lint --update-ratchet`.\n\
         # Counts may only decrease; new violations fail the lint.\n",
    );
    for ((rule, path), count) in ratchet {
        if *count > 0 {
            out.push_str(&format!("{rule}\t{path}\t{count}\n"));
        }
    }
    out
}

/// Collapses violations into per-`(rule, file)` counts.
#[must_use]
pub fn count_by_rule_file(violations: &[Violation]) -> Ratchet {
    let mut map = Ratchet::new();
    for v in violations {
        *map.entry((v.rule.to_string(), v.path.clone())).or_insert(0) += 1;
    }
    map
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Every violation found (frozen ones included).
    pub violations: Vec<Violation>,
    /// `(rule, file)` pairs whose count exceeds the ratchet, with the
    /// (current, frozen) counts.
    pub regressions: Vec<((String, String), usize, usize)>,
    /// `(rule, file)` pairs now below their frozen count (debt paid down;
    /// the ratchet can be tightened).
    pub improvements: Vec<((String, String), usize, usize)>,
    /// Whether `--update-ratchet` rewrote the ratchet file.
    pub updated: bool,
}

impl Report {
    /// Whether the lint gate passes (no regressions).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ((rule, path), current, frozen) in &self.regressions {
            writeln!(
                f,
                "memlint: {rule} regressed in {path}: {current} violations (ratchet allows {frozen})"
            )?;
            for v in self
                .violations
                .iter()
                .filter(|v| v.rule == rule && &v.path == path)
            {
                writeln!(f, "  {v}")?;
            }
        }
        for ((rule, path), current, frozen) in &self.improvements {
            writeln!(
                f,
                "memlint: note: {rule} improved in {path}: {current} (ratchet froze {frozen}) — \
                 run `cargo run -p xtask -- lint --update-ratchet` to tighten"
            )?;
        }
        if self.updated {
            writeln!(f, "memlint: ratchet updated")?;
        }
        writeln!(
            f,
            "memlint: {} files, {} violations ({} frozen), {}",
            self.files,
            self.violations.len(),
            self.violations.len()
                - self
                    .regressions
                    .iter()
                    .map(|(_, c, fz)| c - fz)
                    .sum::<usize>(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Compares current counts against the frozen ratchet.
#[must_use]
pub fn compare(
    current: &Ratchet,
    frozen: &Ratchet,
) -> (
    Vec<((String, String), usize, usize)>,
    Vec<((String, String), usize, usize)>,
) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (key, &count) in current {
        let allowed = frozen.get(key).copied().unwrap_or(0);
        if count > allowed {
            regressions.push((key.clone(), count, allowed));
        } else if count < allowed {
            improvements.push((key.clone(), count, allowed));
        }
    }
    for (key, &allowed) in frozen {
        if allowed > 0 && !current.contains_key(key) {
            improvements.push((key.clone(), 0, allowed));
        }
    }
    (regressions, improvements)
}

/// Recursively collects `.rs` files below `dir` (skipping `target/`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The ratchet file name at the workspace root.
pub const RATCHET_FILE: &str = "memlint.ratchet";

/// Runs the lint over `root/crates` and `root/tests`, compares against the
/// ratchet, and optionally rewrites it.
///
/// # Errors
///
/// I/O failures and a malformed ratchet file are reported as strings.
pub fn run(root: &Path, update_ratchet: bool) -> Result<Report, String> {
    let mut files = Vec::new();
    // The umbrella crate lives at the root (src/, tests/, examples/);
    // everything else under crates/.
    collect_rs_files(&root.join("crates"), &mut files)?;
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        violations.extend(scan_source(&rel, &content));
    }

    let ratchet_path = root.join(RATCHET_FILE);
    let frozen = if ratchet_path.is_file() {
        let text = fs::read_to_string(&ratchet_path)
            .map_err(|e| format!("cannot read {RATCHET_FILE}: {e}"))?;
        parse_ratchet(&text)?
    } else {
        Ratchet::new()
    };

    let current = count_by_rule_file(&violations);
    let (regressions, improvements) = compare(&current, &frozen);

    let mut updated = false;
    if update_ratchet {
        fs::write(&ratchet_path, format_ratchet(&current))
            .map_err(|e| format!("cannot write {RATCHET_FILE}: {e}"))?;
        updated = true;
    }

    Ok(Report {
        files: files.len(),
        violations,
        regressions: if updated { Vec::new() } else { regressions },
        improvements: if updated { Vec::new() } else { improvements },
        updated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> =
            scan_source(path, src).into_iter().map(|v| v.rule).collect();
        rules.dedup();
        rules
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/dram/src/bank.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/memtrace/src/bin/trace_gen.rs"),
            FileClass::Binary
        );
        assert_eq!(
            classify("crates/experiments/src/main.rs"),
            FileClass::Binary
        );
        assert_eq!(
            classify("crates/memcon/tests/engine_properties.rs"),
            FileClass::Test
        );
        assert_eq!(classify("crates/bench/benches/micro.rs"), FileClass::Test);
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Test);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
    }

    #[test]
    fn unwrap_flagged_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
        assert!(v[0].excerpt.contains("x.unwrap()"));
    }

    #[test]
    fn expect_flagged_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n";
        assert_eq!(rules_hit(LIB, src), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_allowed_in_tests_binaries_and_cfg_test() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(scan_source("crates/demo/tests/it.rs", src).is_empty());
        assert!(scan_source("crates/demo/src/main.rs", src).is_empty());
        let lib = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use super::*;\n\
                   #[test]\n\
                   fn t() { ok(); Some(3).unwrap(); panic!(\"fine here\") }\n\
                   }\n";
        assert!(scan_source(LIB, lib).is_empty());
    }

    #[test]
    fn code_after_cfg_test_region_is_scanned_again() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn later(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn panic_flagged_only_as_macro() {
        assert_eq!(
            rules_hit(LIB, "fn f() { panic!(\"no\") }\n"),
            vec!["no-panic"]
        );
        // Substrings of identifiers don't count.
        assert!(scan_source(LIB, "fn f() { my_should_panic!powers() }\n").is_empty());
    }

    #[test]
    fn needles_inside_strings_and_comments_ignored() {
        let src = "const HELP: &str = \"call .unwrap() or panic!\";\n\
                   // the old code used row as u32 here\n\
                   /* block: cycle as u16 */\n";
        assert!(scan_source(LIB, src).is_empty());
    }

    #[test]
    fn truncating_cast_on_cycle_line_flagged() {
        let src = "fn f(cycle: u64) -> u32 { cycle as u32 }\n";
        let v = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "cast-truncation");
    }

    #[test]
    fn widening_or_offdomain_casts_pass() {
        // u64 target: not truncating.
        assert!(scan_source(LIB, "fn f(row: u32) -> u64 { row as u64 }\n").is_empty());
        // Narrow cast on a line with no address/cycle identifiers.
        assert!(scan_source(LIB, "fn g(flags: u64) -> u8 { flags as u8 }\n").is_empty());
    }

    #[test]
    fn cast_rule_applies_to_binaries_too() {
        let src = "fn f(addr: u64) -> u16 { addr as u16 }\n";
        let v = scan_source("crates/demo/src/main.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "cast-truncation");
    }

    #[test]
    fn float_eq_on_timing_values_flagged() {
        let src = "fn f(a_ns: f64, b: f64) -> bool { a_ns == b }\n";
        assert_eq!(rules_hit(LIB, src), vec!["float-eq"]);
        let src2 = "fn f(t: &T) -> bool { t.trcd_ns != 11.0 }\n";
        assert_eq!(rules_hit(LIB, src2), vec!["float-eq"]);
    }

    #[test]
    fn float_eq_ignores_orderings_and_nontiming() {
        assert!(scan_source(LIB, "fn f(a_ns: f64) -> bool { a_ns >= 1.0 }\n").is_empty());
        assert!(scan_source(LIB, "fn f(n: u64) -> bool { n == 3 }\n").is_empty());
    }

    #[test]
    fn instant_now_flagged_outside_telemetry() {
        let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        assert_eq!(rules_hit(LIB, src), vec!["no-instant"]);
        // Binaries are not exempt: a wall clock in the experiments CLI
        // would leak into "deterministic" output just the same.
        let v = scan_source("crates/demo/src/main.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-instant");
    }

    #[test]
    fn instant_now_allowed_in_telemetry_and_tests() {
        let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        assert!(scan_source("crates/telemetry/src/metrics.rs", src).is_empty());
        assert!(scan_source("crates/demo/tests/it.rs", src).is_empty());
        // Mentions in strings or comments never count.
        let doc =
            "// prefer telemetry spans over Instant::now\nconst H: &str = \"Instant::now\";\n";
        assert!(scan_source(LIB, doc).is_empty());
    }

    #[test]
    fn inline_allow_marker_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // memlint: allow\n";
        assert!(scan_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_marker_on_preceding_comment_line_suppresses() {
        let src = "// memlint: allow (deliberate)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(scan_source(LIB, src).is_empty());
        // The marker covers exactly one line, not everything after it.
        let src2 = "// memlint: allow\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = scan_source(LIB, src2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        // A marker on a code line does not spill onto the next line.
        let src3 = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // memlint: allow\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = scan_source(LIB, src3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn ratchet_roundtrip_and_compare() {
        let mut current = Ratchet::new();
        current.insert(("no-unwrap".into(), "crates/a/src/lib.rs".into()), 3);
        current.insert(("no-panic".into(), "crates/b/src/lib.rs".into()), 1);
        let text = format_ratchet(&current);
        let parsed = parse_ratchet(&text).unwrap();
        assert_eq!(parsed, current);

        // Equal counts: clean pass.
        let (reg, imp) = compare(&current, &parsed);
        assert!(reg.is_empty() && imp.is_empty());

        // One count above the freeze: regression.
        let mut worse = current.clone();
        worse.insert(("no-unwrap".into(), "crates/a/src/lib.rs".into()), 4);
        let (reg, _) = compare(&worse, &parsed);
        assert_eq!(
            reg,
            vec![(("no-unwrap".into(), "crates/a/src/lib.rs".into()), 4, 3)]
        );

        // A brand-new (rule, file) pair is a regression against count 0.
        let mut novel = current.clone();
        novel.insert(("float-eq".into(), "crates/c/src/lib.rs".into()), 1);
        let (reg, _) = compare(&novel, &parsed);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].2, 0);

        // Paid-down debt and fully fixed files surface as improvements.
        let mut better = current.clone();
        better.insert(("no-unwrap".into(), "crates/a/src/lib.rs".into()), 1);
        better.remove(&("no-panic".to_string(), "crates/b/src/lib.rs".to_string()));
        let (reg, imp) = compare(&better, &parsed);
        assert!(reg.is_empty());
        assert_eq!(imp.len(), 2);
    }

    #[test]
    fn ratchet_rejects_malformed_lines() {
        assert!(parse_ratchet("# comment\n\nno-unwrap\tcrates/a.rs\t2\n").is_ok());
        assert!(parse_ratchet("no-unwrap crates/a.rs 2\n").is_err());
        assert!(parse_ratchet("no-unwrap\tcrates/a.rs\tmany\n").is_err());
    }

    #[test]
    fn report_display_names_file_and_line() {
        let violations = vec![Violation {
            rule: "no-unwrap",
            path: "crates/a/src/lib.rs".into(),
            line: 7,
            excerpt: "x.unwrap()".into(),
        }];
        let current = count_by_rule_file(&violations);
        let (regressions, improvements) = compare(&current, &Ratchet::new());
        let report = Report {
            files: 1,
            violations,
            regressions,
            improvements,
            updated: false,
        };
        assert!(!report.passed());
        let text = report.to_string();
        assert!(text.contains("crates/a/src/lib.rs:7: no-unwrap"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn lifetimes_survive_char_stripping() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(scan_source(LIB, src).is_empty());
        // A char literal containing a quote-sensitive byte is still removed.
        let src2 = "fn g() -> char { '\\'' }\n";
        assert!(scan_source(LIB, src2).is_empty());
    }
}
