//! `xtask chaos` — the seeded fault-injection soak gate.
//!
//! Each soak plan is one [`FaultPlan`] (every site armed at a moderate
//! rate) driven through two independent legs:
//!
//! * **MEMCON leg** — the fig9-style workload set (all twelve profiles)
//!   runs through one [`MemconEngine`] per workload, fanned out across the
//!   [`memutil::par`] pool at `--jobs 1` and `--jobs 4` under fresh
//!   telemetry registries. The gate asserts: no panic, zero
//!   `uncorrectable_escapes`, the refresh-correctness invariant holds on
//!   every engine, the plan actually fired, and both the per-engine
//!   recovery results and the telemetry `deterministic` sections are
//!   byte-identical across worker counts.
//! * **memsim leg** — a controller under dense test traffic with the same
//!   plan, its command bus recorded and replayed through the offline
//!   [`ProtocolChecker::audit`]. A faults-off control run must audit
//!   clean; every injected `tRRD`/`tFAW` violation must be flagged by the
//!   audit (detection completeness).
//!
//! `chaos health` is the observable variant of the soak: a faulted fleet
//! runs with the SLO monitor armed, the gate asserts prompt alerting
//! (within two epochs of the first injected fault), dumps the
//! `memcon-flightrec/v1` flight record, and byte-compares the series and
//! alert log across worker counts; `--serve` exposes the live scrape
//! endpoint while it runs.
//!
//! `chaos overhead` is the faults-disabled cost gate: it measures the
//! `evaluate_module_1bank` kernel with no plan installed against a
//! zero-rate plan installed (the injector's worst idle case — gate check
//! plus keyed-hash draw, nothing firing), in alternating rounds with the
//! same noise philosophy as `obs overhead`, and fails when every round
//! shows both the median and the minimum more than 2 % apart.

use std::sync::Arc;

use faultinject::{FaultPlan, FaultSession, Site, SiteSpec};
use memcon::config::MemconConfig;
use memcon::engine::{MemconEngine, RecoveryStats};
use memcon::refreshmgr::PageState;
use memtrace::workload::WorkloadProfile;
use memutil::json::Json;

/// Base seed of soak plan `i` (plan seed = base + i).
const PLAN_SEED_BASE: u64 = 0xC4A0_5000;

/// Overhead the installed-but-idle injector may add to the evaluation
/// kernel (same limit as the telemetry gate in `obs overhead`).
const OVERHEAD_LIMIT: f64 = 0.02;

/// Entry point for `xtask chaos <args>`; returns a process exit code.
#[must_use]
pub fn chaos_cmd(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("overhead") {
        return overhead_cmd();
    }
    if args.first().map(String::as_str) == Some("health") {
        return health_cmd(&args[1..]);
    }
    let mut plans = 3usize;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--plans" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("chaos: --plans expects a number");
                return 2;
            };
            plans = n;
        } else if let Some(v) = arg.strip_prefix("--plans=") {
            let Ok(n) = v.parse() else {
                eprintln!("chaos: --plans expects a number, got '{v}'");
                return 2;
            };
            plans = n;
        } else {
            eprintln!(
                "chaos: unknown argument {arg:?} (expected --plans N, --quick, health, overhead)"
            );
            return 2;
        }
    }
    if plans == 0 {
        eprintln!("chaos: --plans must be at least 1");
        return 2;
    }

    let mut failed = false;
    for i in 0..plans {
        let seed = PLAN_SEED_BASE + i as u64;
        // A panic anywhere in the soak is itself a gate failure ("no
        // panic"), so it must be caught and reported, not abort xtask.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| soak_plan(seed, quick)));
        match outcome {
            Ok(Ok(summary)) => {
                println!("chaos: plan {}/{plans} (seed {seed:#x}): {summary}", i + 1);
            }
            Ok(Err(e)) => {
                eprintln!("chaos: plan {}/{plans} (seed {seed:#x}) FAILED: {e}", i + 1);
                failed = true;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                eprintln!(
                    "chaos: plan {}/{plans} (seed {seed:#x}) PANICKED: {msg}",
                    i + 1
                );
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("chaos: FAILED");
        1
    } else {
        println!("chaos: all {plans} plan(s) passed");
        0
    }
}

/// An all-sites plan at moderate rates: high enough that a quick soak
/// still fires every layer, low enough that most tests complete.
fn chaos_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with_site(Site::SimCmdDrop, SiteSpec::rate(0.05))
            .with_site(Site::SimCmdDup, SiteSpec::rate(0.05))
            .with_site(Site::SimTimingViolation, SiteSpec::rate(0.05))
            .with_site(Site::SimRefreshOverrun, SiteSpec::rate(0.20))
            .with_site(Site::DramBitFlip, SiteSpec::rate(0.01))
            .with_site(Site::DramVrt, SiteSpec::rate(0.01))
            .with_site(Site::TestPreempt, SiteSpec::rate(0.10))
            .with_site(Site::TornRead, SiteSpec::rate(0.10))
            .with_site(Site::OracleDisagree, SiteSpec::rate(0.10))
            .with_site(Site::EccCorrectable, SiteSpec::rate(0.20))
            .with_site(Site::EccUncorrectable, SiteSpec::rate(0.05))
            // The store sites stay cold in this soak (no store attached)
            // but are armed so every registered site is covered; the
            // `xtask crash` gate drives them against live WALs.
            .with_site(Site::StoreTornWrite, SiteSpec::rate(0.02))
            .with_site(Site::StoreShortRead, SiteSpec::rate(0.05))
            .with_site(Site::StoreCorruptRecord, SiteSpec::rate(0.02)),
    )
}

/// What one engine run contributes to the cross-jobs comparison.
type EngineOutcome = (Result<(), String>, RecoveryStats, Vec<PageState>);

/// Runs both soak legs for one plan; `Ok` carries a one-line summary.
fn soak_plan(seed: u64, quick: bool) -> Result<String, String> {
    let plan = chaos_plan(seed);
    let scale = if quick { 0.01 } else { 0.05 };
    let traces: Vec<_> = WorkloadProfile::all()
        .into_iter()
        .map(|w| w.scaled(scale).generate(seed))
        .collect();

    // One engine per workload, each owning its plan (and therefore its
    // decision streams), fanned across the pool. The registry is fresh per
    // worker count so the deterministic sections compare exactly.
    let run_fleet = |jobs: usize| -> (String, Vec<EngineOutcome>) {
        let registry = Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let guard = telemetry::install(Arc::clone(&registry));
        let results = memutil::par::ordered_map_with(jobs, traces.len(), |i| {
            let mut engine = MemconEngine::new(MemconConfig::paper_default(), traces[i].n_pages());
            engine.set_fault_plan(Some(Arc::clone(&plan)));
            let _ = engine.run(&traces[i]);
            (
                engine.verify_refresh_correctness(),
                *engine.recovery_stats(),
                engine.final_states().to_vec(),
            )
        });
        drop(guard);
        let det = registry
            .report()
            .get("deterministic")
            .cloned()
            .unwrap_or_else(Json::obj)
            .emit();
        (det, results)
    };
    let (det_seq, seq) = run_fleet(1);
    let (det_par, par) = run_fleet(4);

    for (i, (invariant, _, _)) in seq.iter().enumerate() {
        if let Err(e) = invariant {
            return Err(format!(
                "workload #{i}: refresh-correctness invariant violated: {e}"
            ));
        }
    }
    if seq != par {
        return Err(
            "recovery stats / final refresh bins diverge between --jobs 1 and --jobs 4".to_string(),
        );
    }
    if det_seq != det_par {
        return Err(
            "telemetry deterministic sections diverge between --jobs 1 and --jobs 4".to_string(),
        );
    }
    let injected: u64 = seq
        .iter()
        .map(|(_, r, _)| r.faults_injected.iter().sum::<u64>())
        .sum();
    if injected == 0 {
        return Err("plan never fired in the MEMCON leg (soak proved nothing)".to_string());
    }
    let escapes: u64 = seq.iter().map(|(_, r, _)| r.uncorrectable_escapes).sum();
    if escapes != 0 {
        return Err(format!(
            "{escapes} uncorrectable ECC error(s) escaped without pinning their page"
        ));
    }
    let degraded: u64 = seq.iter().map(|(_, r, _)| r.degraded_rows).sum();

    let memsim = memsim_leg(&plan, quick)?;
    Ok(format!(
        "{injected} engine faults, {degraded} rows degraded, 0 escapes, \
         jobs 1 vs 4 byte-identical; {memsim}"
    ))
}

/// Drives a faulted controller under dense test traffic and audits the
/// recorded command bus offline; a faults-off control run must stay clean.
fn memsim_leg(plan: &Arc<FaultPlan>, quick: bool) -> Result<String, String> {
    use dram::geometry::ChipDensity;
    use memsim::config::{RefreshPolicy, SystemConfig};
    use memsim::controller::MemoryController;
    use memsim::protocol::ProtocolChecker;
    use memsim::testinject::{TestInjectConfig, TestTrafficInjector};

    let cycles: u64 = if quick { 120_000 } else { 400_000 };
    let cfg = SystemConfig::new(1, ChipDensity::Gb8, RefreshPolicy::baseline_16ms());
    // Much denser than the paper's Table-3 rates on purpose: back-to-back
    // activates are what give the tRRD/tFAW sites something to violate.
    let traffic = TestInjectConfig {
        concurrent_tests: 8192,
        window_ms: 64.0,
        read_blocks_per_test: 256,
        write_blocks_per_test: 128,
    };
    let drive = |session: Option<FaultSession>| {
        let mut ctrl = MemoryController::new(&cfg);
        ctrl.set_fault_session(session);
        ctrl.record_commands(true);
        let mut injector = TestTrafficInjector::new(
            traffic,
            ctrl.n_banks(),
            cfg.geometry.rows_per_bank,
            cfg.timing.tck_ns,
            11,
        );
        let mut next_id = 0;
        for now in 0..cycles {
            ctrl.tick(now);
            let _ = ctrl.drain_completions();
            injector.step(now, &mut ctrl, &mut next_id);
        }
        let trace = ctrl.take_command_trace();
        let violations =
            ProtocolChecker::audit(*ctrl.timing(), ctrl.n_banks(), ctrl.trefi_cycles(), &trace);
        (ctrl.stats, violations)
    };

    let (_, control_violations) = drive(None);
    if let Some(v) = control_violations.first() {
        return Err(format!("faults-off control run failed the audit: {v}"));
    }
    let (stats, violations) = drive(Some(FaultSession::with_plan(Arc::clone(plan))));
    let injected = stats.faults_dropped
        + stats.faults_duplicated
        + stats.faults_timing
        + u64::from(stats.faults_refresh_overrun_cycles > 0);
    if injected == 0 {
        return Err("plan never fired in the memsim leg (soak proved nothing)".to_string());
    }
    // Detection completeness: every forced-through ACT broke a rank
    // constraint at issue time, so the offline audit must flag each one.
    if (violations.len() as u64) < stats.faults_timing {
        return Err(format!(
            "injected {} tRRD/tFAW violations but the offline audit flagged only {}",
            stats.faults_timing,
            violations.len()
        ));
    }
    Ok(format!(
        "memsim: {} dropped, {} duplicated, {} timing faults ({} flagged by audit), \
         {} overrun cycles",
        stats.faults_dropped,
        stats.faults_duplicated,
        stats.faults_timing,
        violations.len(),
        stats.faults_refresh_overrun_cycles
    ))
}

/// Maximum epochs the health monitor may lag the first injected fault
/// before the gate fails.
const ALERT_LAG_EPOCHS: u64 = 2;

/// `chaos health` — the observable chaos soak: a faulted fleet runs with
/// the SLO monitor armed (default rules plus a fault-activity rule over
/// `fleet.obs.faults_injected`); the gate asserts an alert fires within
/// [`ALERT_LAG_EPOCHS`] epochs of the first injected fault, writes the
/// `memcon-flightrec/v1` dump to `target/FLIGHTREC_chaos.json`, and
/// byte-compares the deterministic time-series and the alert log at
/// jobs 1 vs 4. `--serve[=ADDR]` additionally exposes the jobs-1 run's
/// registry and monitor on a live scrape endpoint while it runs.
fn health_cmd(args: &[String]) -> i32 {
    let mut serve: Option<String> = None;
    for arg in args {
        if arg == "--serve" {
            serve = Some("127.0.0.1:0".to_string());
        } else if let Some(addr) = arg.strip_prefix("--serve=") {
            serve = Some(addr.to_string());
        } else {
            eprintln!("chaos: unknown argument {arg:?} (expected --serve[=ADDR])");
            return 2;
        }
    }
    match health_soak(serve.as_deref()) {
        Ok(summary) => {
            println!("chaos: health soak: {summary}");
            0
        }
        Err(e) => {
            eprintln!("chaos: health soak FAILED: {e}");
            1
        }
    }
}

/// What one armed fleet run contributes to the jobs comparison and the
/// alert-latency check.
struct HealthRun {
    /// Serialized deterministic telemetry section (time-series included).
    det: String,
    /// Rendered alert lines in firing order.
    alerts: Vec<String>,
    /// Epoch of the first alert, if any.
    first_alert_epoch: Option<u64>,
    /// Epoch of the first nonzero `fleet.obs.faults_injected` delta.
    first_fault_epoch: Option<u64>,
    /// `memcon-flightrec/v1` dump taken at run end.
    flightrec: Json,
}

fn health_soak(serve: Option<&str>) -> Result<String, String> {
    let plan = chaos_plan(PLAN_SEED_BASE + 0x5EA1);
    let mut config = ::fleet::FleetConfig::small(8, 0x5EA1_7B);
    config.fault_plan = Some(plan);

    let run = |jobs: usize| -> Result<HealthRun, String> {
        let registry = Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        registry.set_timeseries_capacity(1024);
        let guard = telemetry::install(Arc::clone(&registry));
        let fleet_plan = ::fleet::FleetPlan::expand(&config, jobs);
        let mut fleet = ::fleet::Fleet::new(&fleet_plan);
        let mut monitor = telemetry::HealthMonitor::with_default_rules();
        monitor.add_rule(telemetry::health::Rule::delta_above(
            "fault-activity",
            telemetry::health::Severity::Warning,
            "fleet.obs.faults_injected",
            0,
        ));
        let monitor = Arc::new(std::sync::Mutex::new(monitor));
        fleet.set_health_monitor(Arc::clone(&monitor));
        // Live scrape endpoint over this run's registry + monitor; only
        // meaningful on the serial leg (the jobs-4 leg reruns the same
        // deterministic soak).
        let server = match (serve, jobs) {
            (Some(addr), 1) => {
                let s = telemetry::ScrapeServer::start(
                    Arc::clone(&registry),
                    Some(Arc::clone(&monitor)),
                    addr,
                )
                .map_err(|e| format!("scrape endpoint: {e}"))?;
                println!(
                    "chaos: scrape endpoint live at {} (METRICS | HEALTH | SERIES <name>)",
                    s.local_addr()
                );
                Some(s)
            }
            _ => None,
        };
        let _ = fleet.run_to_completion(jobs);
        drop(guard);
        if let Some(s) = server {
            s.shutdown();
        }
        let det = registry
            .report()
            .get("deterministic")
            .cloned()
            .unwrap_or_else(Json::obj)
            .emit();
        let first_fault_epoch = registry
            .series("fleet.obs.faults_injected")
            .iter()
            .find(|(_, v)| *v > 0)
            .map(|(t, _)| *t);
        // memlint: allow(no-unwrap): a poisoned monitor must fail the gate, not go silent
        let monitor = monitor.lock().expect("monitor poisoned");
        Ok(HealthRun {
            det,
            alerts: monitor
                .alerts()
                .iter()
                .map(telemetry::health::Alert::line)
                .collect(),
            first_alert_epoch: monitor.first_alert_epoch(),
            first_fault_epoch,
            flightrec: telemetry::flight_record(&registry, &monitor, 16),
        })
    };

    let serial = run(1)?;
    let parallel = run(4)?;
    if serial.det != parallel.det {
        return Err("telemetry deterministic sections diverge at jobs 1 vs 4".into());
    }
    if serial.alerts != parallel.alerts {
        return Err("health alert logs diverge at jobs 1 vs 4".into());
    }
    let first_fault = serial
        .first_fault_epoch
        .ok_or("plan never fired (health soak proved nothing)")?;
    let first_alert = serial
        .first_alert_epoch
        .ok_or("faults injected but the armed monitor never alerted")?;
    if first_alert > first_fault + ALERT_LAG_EPOCHS {
        return Err(format!(
            "monitor too slow: first fault at epoch {first_fault}, first alert at epoch \
             {first_alert} (allowed lag {ALERT_LAG_EPOCHS})"
        ));
    }
    let path = crate::workspace_root().join("target/FLIGHTREC_chaos.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, serial.flightrec.emit() + "\n")
        .map_err(|e| format!("could not write {}: {e}", path.display()))?;
    Ok(format!(
        "first fault epoch {first_fault}, first alert epoch {first_alert} \
         (lag {} <= {ALERT_LAG_EPOCHS}), {} alert(s), jobs 1 vs 4 identical, \
         flight record at {}",
        first_alert.saturating_sub(first_fault),
        serial.alerts.len(),
        path.display()
    ))
}

/// Measures `evaluate_module_1bank` with no fault plan against a zero-rate
/// plan installed, in alternating rounds; fails only when every round
/// shows both the median and the minimum above [`OVERHEAD_LIMIT`] (the
/// same best-round verdict as `obs overhead` — a real regression
/// reproduces in every round, a scheduling stall does not).
fn overhead_cmd() -> i32 {
    use dram::cell::RowContent;
    use dram::geometry::{ChipDensity, DramGeometry};
    use dram::module::DramModule;
    use dram::timing::TimingParams;
    use memutil::rng::{Rng, SeedableRng, SmallRng};

    if cfg!(debug_assertions) {
        println!(
            "chaos: NOTE: measuring a debug build; prefer `cargo run --release -p xtask -- chaos overhead`"
        );
    }
    // The benchmark module from `bench_suite::micro::bench_failure_model`.
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 1,
        rows_per_bank: 512,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let mut module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xFA11);
    let words = geometry.words_per_row();
    let mut rng = SmallRng::seed_from_u64(9);
    module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    let model = failure_model::model::CouplingFailureModel::default();
    // Warm the vulnerable-cell cache so both arms measure the steady state.
    let _ = model.evaluate_module_with_jobs(&module, 328.0, 1);

    // A plan that arms the evaluation site at rate 0: the gate check and
    // the per-row keyed draw both run, nothing ever fires.
    let idle_plan =
        Arc::new(FaultPlan::new(0xC4A0).with_site(Site::DramBitFlip, SiteSpec::rate(0.0)));

    let measure = |c: &mut memutil::bench::Criterion, name: String| {
        c.bench_function(&name, |b| {
            b.iter(|| {
                std::hint::black_box(model.evaluate_module_with_jobs(&module, 328.0, 1).len())
            })
        });
    };
    const ROUNDS: usize = 3;
    let mut criterion = memutil::bench::Criterion::default()
        .measurement_time(std::time::Duration::from_millis(600));
    for round in 0..ROUNDS {
        measure(&mut criterion, format!("faults_off_r{round}"));
        let guard = faultinject::install(Arc::clone(&idle_plan));
        measure(&mut criterion, format!("faults_idle_r{round}"));
        drop(guard);
    }
    let results = criterion.final_summary();
    let find = |name: String| results.iter().find(|r| r.name == name);
    let mut any_round_ok = false;
    for round in 0..ROUNDS {
        let (Some(off), Some(idle)) = (
            find(format!("faults_off_r{round}")),
            find(format!("faults_idle_r{round}")),
        ) else {
            eprintln!("chaos: overhead benchmarks produced no samples");
            return 1;
        };
        let median_delta = (idle.median_ns - off.median_ns) / off.median_ns;
        let min_delta = (idle.min_ns - off.min_ns) / off.min_ns;
        let ok = median_delta <= OVERHEAD_LIMIT || min_delta <= OVERHEAD_LIMIT;
        any_round_ok |= ok;
        println!(
            "chaos: injector overhead on evaluate_module_1bank, round {}/{ROUNDS}: \
             median {:+.2}%, min {:+.2}% (limit {:.0}%) {}",
            round + 1,
            median_delta * 100.0,
            min_delta * 100.0,
            OVERHEAD_LIMIT * 100.0,
            if ok { "ok" } else { "over" }
        );
    }
    if any_round_ok {
        0
    } else {
        eprintln!(
            "chaos: FAILED: an installed-but-idle fault plan costs more than {:.0}% \
             on the evaluation kernel in every round",
            OVERHEAD_LIMIT * 100.0
        );
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plan_arms_every_site() {
        let plan = chaos_plan(1);
        for site in Site::ALL {
            assert!(plan.site(site).is_some(), "{} not armed", site.name());
        }
    }

    #[test]
    fn plan_seeds_differ_per_index() {
        // Same site decisions under different seeds must diverge somewhere;
        // a constant plan would make `--plans N` meaningless.
        let a = chaos_plan(PLAN_SEED_BASE);
        let b = chaos_plan(PLAN_SEED_BASE + 1);
        let diverges = (0..10_000)
            .any(|i| a.fires(Site::EccCorrectable, i) != b.fires(Site::EccCorrectable, i));
        assert!(diverges);
    }
}
