//! `xtask top` — terminal viewer for a live scrape endpoint.
//!
//! Connects to the read-only line-protocol endpoint a soak exposes (e.g.
//! `chaos health --serve=127.0.0.1:9853`) and prints the `HEALTH` summary
//! plus the `METRICS` snapshot — one-shot by default, redrawn every N
//! seconds with `--watch N`. `--series NAME` appends the per-epoch points
//! of one named metric. Purely a client: it never mutates the observed
//! process.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Entry point for `xtask top <args>`; returns a process exit code.
#[must_use]
pub fn top_cmd(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut watch: Option<u64> = None;
    let mut series: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--watch" {
            let Some(secs) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("top: --watch expects a number of seconds");
                return 2;
            };
            watch = Some(secs);
        } else if let Some(v) = arg.strip_prefix("--watch=") {
            let Ok(secs) = v.parse() else {
                eprintln!("top: --watch expects a number of seconds, got '{v}'");
                return 2;
            };
            watch = Some(secs);
        } else if arg == "--series" {
            let Some(name) = it.next() else {
                eprintln!("top: --series expects a metric name");
                return 2;
            };
            series.push(name.clone());
        } else if let Some(name) = arg.strip_prefix("--series=") {
            series.push(name.to_string());
        } else if arg.starts_with("--") {
            eprintln!("top: unknown argument {arg:?} (expected ADDR, --watch N, --series NAME)");
            return 2;
        } else if addr.is_none() {
            addr = Some(arg.clone());
        } else {
            eprintln!("top: more than one address given ({arg:?})");
            return 2;
        }
    }
    let Some(addr) = addr else {
        eprintln!(
            "top: no endpoint address; usage: xtask top HOST:PORT [--watch N] [--series NAME]"
        );
        return 2;
    };

    loop {
        match snapshot(&addr, &series) {
            Ok(text) => {
                if watch.is_some() {
                    // ANSI clear + home: redraw in place like top(1).
                    print!("\x1b[2J\x1b[H");
                }
                println!("top: {addr}");
                print!("{text}");
            }
            Err(e) => {
                eprintln!("top: {addr}: {e}");
                return 1;
            }
        }
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return 0,
        }
    }
}

/// One full display frame: `HEALTH`, `METRICS`, and any requested series.
fn snapshot(addr: &str, series: &[String]) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&scrape_one(addr, "HEALTH")?);
    out.push_str(&scrape_one(addr, "METRICS")?);
    for name in series {
        out.push_str(&format!("series {name}\n"));
        out.push_str(&scrape_one(addr, &format!("SERIES {name}"))?);
    }
    Ok(out)
}

/// Sends one command and returns the reply body (the `END` terminator
/// stripped, `ERR` replies surfaced as errors).
fn scrape_one(addr: &str, command: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(format!("{command}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let mut body = String::new();
    for line in reply.lines() {
        if line == "END" {
            return Ok(body);
        }
        if let Some(err) = line.strip_prefix("ERR ") {
            return Err(format!("endpoint: {err}"));
        }
        body.push_str(line);
        body.push('\n');
    }
    Err("truncated reply (no END terminator)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_renders_health_metrics_and_series_from_a_live_endpoint() {
        let r = Arc::new(telemetry::Registry::new());
        r.set_enabled(true);
        r.counter("t.top.hits", telemetry::Class::Deterministic)
            .add(3);
        r.sample_point(1, &[]);
        let server = telemetry::ScrapeServer::start(Arc::clone(&r), None, "127.0.0.1:0")
            .expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        let text = snapshot(&addr, &["t.top.hits".to_string()]).expect("scrape");
        assert!(text.contains("health rules=0 epochs=0 alerts=0 dropped=0"));
        assert!(text.contains("counter t.top.hits 3"));
        assert!(text.contains("series t.top.hits"));
        assert!(text.contains("point 1 3"));
        server.shutdown();
    }

    #[test]
    fn top_cmd_rejects_bad_flags() {
        assert_eq!(top_cmd(&[]), 2);
        assert_eq!(top_cmd(&["--bogus".to_string()]), 2);
        assert_eq!(
            top_cmd(&["a:1".to_string(), "b:2".to_string()]),
            2,
            "two addresses"
        );
    }
}
