//! `xtask crash` — the crash-recovery soak gate for the durable store.
//!
//! Each crash point drives the reference workload through a store-backed
//! [`MemconEngine`], kills it mid-run at a seeded fraction of the trace,
//! then truncates the newest WAL segment at a seeded random offset —
//! modelling a power cut that lands anywhere inside a write. Recovery must
//! come back up from the newest snapshot, truncate the torn tail to the
//! last intact record (reporting every discarded byte), and resume; the
//! finished run must be byte-identical to an uninterrupted storeless
//! reference run of the same trace (report, recovery counters, and final
//! refresh bins).
//!
//! Two adversarial legs ride along:
//!
//! * **corrupt-checksum** — one byte in the middle of the surviving WAL is
//!   flipped (latent media corruption rather than a torn write); recovery
//!   must stop replay at the corrupt record and report the truncation —
//!   never silently load state past it;
//! * **injected torn write** — the `store.torn_write` fault site fires
//!   during the run, poisoning the store mid-flight; the simulation must
//!   finish unaffected and the half-written tail must recover cleanly.
//!
//! `--quick` soaks 4 crash points (the CI configuration); the default is
//! 16.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use faultinject::{FaultPlan, Schedule, Site, SiteSpec};
use memcon::config::MemconConfig;
use memcon::engine::{MemconEngine, MemconReport, RecoveryStats};
use memcon::refreshmgr::PageState;
use memtrace::trace::WriteTrace;
use memutil::rng::{Rng, SeedableRng, SmallRng};
use store::DurabilityMode;

/// Base seed of crash point `i` (point seed = base + i).
const CRASH_SEED_BASE: u64 = 0xC4A0_6000;

/// Crash points in the default (full) soak.
const FULL_POINTS: usize = 16;

/// Crash points under `--quick` (the CI leg).
const QUICK_POINTS: usize = 4;

/// Entry point for `xtask crash <args>`; returns a process exit code.
#[must_use]
pub fn crash_cmd(args: &[String]) -> i32 {
    let mut points = FULL_POINTS;
    for arg in args {
        if arg == "--quick" {
            points = QUICK_POINTS;
        } else if let Some(v) = arg.strip_prefix("--points=") {
            let Ok(n) = v.parse() else {
                eprintln!("crash: --points expects a number, got '{v}'");
                return 2;
            };
            points = n;
        } else {
            eprintln!("crash: unknown argument {arg:?} (expected --quick, --points=N)");
            return 2;
        }
    }
    if points == 0 {
        eprintln!("crash: --points must be at least 1");
        return 2;
    }
    match soak(points) {
        Ok(summary) => {
            println!("crash: {summary}");
            0
        }
        Err(e) => {
            eprintln!("crash: FAILED: {e}");
            1
        }
    }
}

/// Everything the cross-run comparison needs from one finished engine.
type RunOutcome = (MemconReport, RecoveryStats, Vec<PageState>);

/// The workload every leg replays (fixed: the gate compares runs, and a
/// crashed run can only be resumed with the same trace).
fn reference_trace() -> WriteTrace {
    memtrace::workload::WorkloadProfile::netflix()
        .scaled(0.02)
        .generate(CRASH_SEED_BASE)
}

/// An uninterrupted storeless run of `trace` — the ground truth every
/// recovered run must reproduce exactly.
fn reference_run(trace: &WriteTrace) -> RunOutcome {
    let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
    let report = engine.run(trace);
    (
        report,
        *engine.recovery_stats(),
        engine.final_states().to_vec(),
    )
}

fn soak(points: usize) -> Result<String, String> {
    let trace = reference_trace();
    let reference = reference_run(&trace);

    let mut torn_tails = 0usize;
    let mut total_truncated = 0u64;
    let mut total_replayed = 0u64;
    for i in 0..points {
        let seed = CRASH_SEED_BASE + i as u64;
        let (truncated, replayed) = crash_point(&trace, &reference, seed)
            .map_err(|e| format!("crash point {}/{points} (seed {seed:#x}): {e}", i + 1))?;
        torn_tails += usize::from(truncated > 0);
        total_truncated += truncated;
        total_replayed += replayed;
    }
    if torn_tails == 0 {
        return Err(format!(
            "none of the {points} random WAL offsets landed mid-record (soak proved nothing)"
        ));
    }
    let corrupt_truncated = corrupt_checksum_leg(&trace, &reference)?;
    injected_torn_write_leg(&trace, &reference)?;
    Ok(format!(
        "{points} crash point(s) recovered to the reference run ({torn_tails} torn tails, \
         {total_truncated} bytes truncated, {total_replayed} records replayed); \
         corrupt-checksum leg truncated {corrupt_truncated} bytes; \
         injected torn write recovered clean"
    ))
}

/// One kill-at-random-WAL-offset point: crash at a seeded fraction of the
/// trace, truncate the newest WAL segment at a seeded offset, recover,
/// resume, and compare against the reference. Returns
/// `(truncated_bytes, replayed_records)`.
fn crash_point(
    trace: &WriteTrace,
    reference: &RunOutcome,
    seed: u64,
) -> Result<(u64, u64), String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dir = store::scratch_dir(&format!("xtask-crash-{seed:x}"));
    // Crash somewhere in the middle 10%..90% of the trace; cadence far
    // past the run so the whole partial run sits in one WAL tail segment
    // and a random offset always has records to land in.
    let crash_ns = trace.duration_ns() / 10 * (1 + rng.gen_range(0..9u64));
    run_to_crash(trace, &dir, crash_ns, None)?;
    let tail = newest_wal_segment(&dir)
        .ok_or_else(|| "crashed run left no WAL tail segment".to_string())?;
    let len = file_len(&tail)?;
    // Truncate anywhere in the segment — a frame boundary (clean tail) is
    // a legitimate outcome; the soak-level check requires only that *some*
    // point tears mid-record.
    let offset = rng.gen_range(0..len);
    set_len(&tail, offset)?;
    let (truncated, replayed) = recover_and_compare(trace, &dir, reference)?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok((truncated, replayed))
}

/// The corrupt-checksum leg: flip one byte in the middle of the WAL tail
/// (not truncation — the file keeps its length) and require recovery to
/// stop replay at the corrupt record and report everything after it as
/// truncated. Returns the truncated byte count.
fn corrupt_checksum_leg(trace: &WriteTrace, reference: &RunOutcome) -> Result<u64, String> {
    let dir = store::scratch_dir("xtask-crash-corrupt");
    run_to_crash(trace, &dir, trace.duration_ns() / 2, None)?;
    let tail = newest_wal_segment(&dir)
        .ok_or_else(|| "crashed run left no WAL tail segment".to_string())?;
    let mut bytes = std::fs::read(&tail).map_err(|e| format!("read {}: {e}", tail.display()))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&tail, &bytes).map_err(|e| format!("write {}: {e}", tail.display()))?;
    let (truncated, _) = recover_and_compare(trace, &dir, reference)?;
    if truncated == 0 {
        return Err(
            "a flipped byte mid-WAL was not reported as a truncation (corrupt state \
             would have been loaded silently)"
                .to_string(),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(truncated)
}

/// The injected-fault leg: the `store.torn_write` site fires once
/// mid-run, leaving a half-written frame and a poisoned store. The
/// simulation must still finish byte-identically, and the torn tail must
/// recover (detecting the tear) and resume to the same result.
fn injected_torn_write_leg(trace: &WriteTrace, reference: &RunOutcome) -> Result<(), String> {
    let dir = store::scratch_dir("xtask-crash-injected");
    let plan = Arc::new(FaultPlan::new(CRASH_SEED_BASE).with_site(
        Site::StoreTornWrite,
        SiteSpec {
            rate: 1.0,
            schedule: Schedule::OneShot { at: 24 },
        },
    ));
    let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
    engine.set_fault_plan(Some(Arc::clone(&plan)));
    let s = store::Store::create(&dir, DurabilityMode::Buffered)
        .map_err(|e| format!("create store: {e}"))?;
    engine
        .attach_store(s, 10_000)
        .map_err(|e| format!("attach store: {e}"))?;
    let report = engine.run(trace);
    if engine.store_error().is_none() {
        return Err("the armed store.torn_write site never fired".to_string());
    }
    let outcome = (
        report,
        *engine.recovery_stats(),
        engine.final_states().to_vec(),
    );
    if &outcome != reference {
        return Err(
            "a torn store write perturbed the simulation (store faults must stay \
             on the durability plane)"
                .to_string(),
        );
    }
    drop(engine);
    let (_, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None)
        .map_err(|e| format!("recovery after injected torn write: {e}"))?;
    if rec.truncated_bytes == 0 {
        return Err("the half-written frame was not detected at recovery".to_string());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Runs a store-backed engine up to `crash_ns` and drops it mid-run
/// (snapshot cadence pinned past the run end, so the anchor snapshot is
/// the only one and the WAL tail holds the whole partial run).
fn run_to_crash(
    trace: &WriteTrace,
    dir: &Path,
    crash_ns: u64,
    plan: Option<Arc<FaultPlan>>,
) -> Result<(), String> {
    let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
    engine.set_fault_plan(plan);
    let s = store::Store::create(dir, DurabilityMode::Buffered)
        .map_err(|e| format!("create store: {e}"))?;
    engine
        .attach_store(s, 10_000)
        .map_err(|e| format!("attach store: {e}"))?;
    engine.begin_run(trace);
    engine.advance_until(trace, crash_ns);
    if !engine.mid_run() {
        return Err("crash point landed past the end of the run".to_string());
    }
    Ok(())
}

/// Recovers the engine in `dir`, resumes it with `trace`, and compares
/// the finished run against `reference`. Returns
/// `(truncated_bytes, replayed_records)` from the recovery scan.
fn recover_and_compare(
    trace: &WriteTrace,
    dir: &Path,
    reference: &RunOutcome,
) -> Result<(u64, u64), String> {
    let (mut engine, rec) = MemconEngine::recover(dir, DurabilityMode::Buffered, None)
        .map_err(|e| format!("recovery: {e}"))?;
    if !engine.mid_run() {
        return Err("recovered engine is not mid-run".to_string());
    }
    engine.advance_until(trace, trace.duration_ns());
    let report = engine.finish_run();
    let outcome = (
        report,
        *engine.recovery_stats(),
        engine.final_states().to_vec(),
    );
    if &outcome != reference {
        return Err(
            "resumed run diverges from the uninterrupted reference (report, recovery \
             counters, or final refresh bins)"
                .to_string(),
        );
    }
    Ok((rec.truncated_bytes, rec.replayed_records))
}

/// The highest-sequence `.wal` segment in `dir`, if any.
fn newest_wal_segment(dir: &Path) -> Option<PathBuf> {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segments.sort();
    segments.pop()
}

fn file_len(path: &Path) -> Result<u64, String> {
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| format!("stat {}: {e}", path.display()))
}

fn set_len(path: &Path, len: u64) -> Result<(), String> {
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .and_then(|f| f.set_len(len))
        .map_err(|e| format!("truncate {}: {e}", path.display()))
}
