//! `xtask obs` — telemetry-report tooling.
//!
//! The telemetry contract this enforces: every value in a report's
//! `deterministic` section derives from simulation state only, so the same
//! workload must produce byte-identical deterministic sections on every
//! machine, at every `--jobs` value, in debug and release. `obs` pins that
//! with a committed golden file:
//!
//! * `obs print` — run the reference workload and pretty-print the report,
//! * `obs --write` — refresh `TELEMETRY_expected.json` at the workspace
//!   root from a fresh run,
//! * `obs --check` — re-run the reference workload and fail unless the
//!   deterministic section matches the committed file byte-for-byte,
//! * `obs diff A B` — compare the deterministic sections of two report
//!   files (e.g. `memcon-experiments --telemetry` outputs),
//! * `obs overhead` — measure `evaluate_module_with_jobs` with telemetry
//!   disabled vs enabled-and-installed vs enabled with the live
//!   observability plane armed (primed time-series ring + open tree span)
//!   and fail when either instrumented arm is more than 2 % slower (the
//!   disabled-cost contract of the telemetry crate).
//!
//! The reference workload touches every instrumented layer: a
//! failure-model module sweep (cache + eval counters), a MEMCON engine run
//! (PRIL, test-engine, refresh-manager counters) with quantum-window
//! sampling armed (`memcon.gauge.*` time-series points), a small memsim
//! system run (controller command mix and stall counters), a small
//! fleet run (`fleet.rollup.*` aggregate counters and histograms plus the
//! per-epoch `fleet.obs.*`/`fleet.gauge.*` time-series points), and a
//! durable-store crash/recover round trip (`store.*` WAL, snapshot, and
//! recovery counters).

use std::path::Path;
use std::sync::Arc;

use memutil::json::Json;

/// Golden file name at the workspace root.
pub const EXPECTED_FILE: &str = "TELEMETRY_expected.json";

/// Overhead the enabled-but-idle telemetry path may add to the
/// `evaluate_module_1bank` kernel.
const OVERHEAD_LIMIT: f64 = 0.02;

/// Entry point for `xtask obs <args>`; returns a process exit code.
#[must_use]
pub fn obs_cmd(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        None | Some("print") => print_cmd(),
        Some("--write") => write_cmd(),
        Some("--check") => check_cmd(),
        Some("diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => diff_cmd(Path::new(a), Path::new(b)),
            _ => {
                eprintln!("obs: diff expects two report paths");
                2
            }
        },
        Some("overhead") => overhead_cmd(),
        Some(other) => {
            eprintln!(
                "obs: unknown argument {other:?} (expected print, --write, --check, diff, overhead)"
            );
            2
        }
    }
}

/// Runs the reference workload under a fresh, enabled, scoped registry and
/// returns `{schema, deterministic}` — the comparable part of the report.
fn reference_deterministic() -> Json {
    let registry = Arc::new(telemetry::Registry::new());
    registry.set_enabled(true);
    let guard = telemetry::install(Arc::clone(&registry));
    run_reference_workload();
    drop(guard);
    let full = registry.report();
    let det = full.get("deterministic").cloned().unwrap_or_else(Json::obj);
    Json::obj()
        .field("schema", telemetry::SCHEMA)
        .field("deterministic", det)
}

/// A small deterministic workload exercising every instrumented layer.
fn run_reference_workload() {
    use dram::cell::RowContent;
    use dram::geometry::{ChipDensity, DramGeometry};
    use dram::module::DramModule;
    use dram::timing::TimingParams;
    use memutil::rng::{Rng, SeedableRng, SmallRng};

    // Layer 1: failure-model sweep (cache + eval counters), parallel path.
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 2,
        rows_per_bank: 128,
        row_bytes: 1024,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let mut module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xFA11);
    let words = geometry.words_per_row();
    let mut rng = SmallRng::seed_from_u64(9);
    module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    let model = failure_model::model::CouplingFailureModel::default();
    let _ = model.evaluate_module_with_jobs(&module, 328.0, 2);
    // Second sweep: warm-hit counters must fire too.
    let _ = model.evaluate_module_with_jobs(&module, 328.0, 2);

    // Layer 2: MEMCON engine run (PRIL, tests, refresh, oracle counters),
    // with quantum-window sampling armed so the `memcon.gauge.*`
    // time-series points are part of the golden contract. Sampling is safe
    // here because this engine steps alone (single-engine drivers only).
    let trace = memtrace::workload::WorkloadProfile::netflix()
        .scaled(0.02)
        .generate(3);
    let mut engine = memcon::engine::MemconEngine::new(
        memcon::config::MemconConfig::paper_default(),
        trace.n_pages(),
    );
    engine.set_sample_every(Some(8));
    let _ = engine.run(&trace);

    // Layer 3: memsim system run (controller command mix and stalls).
    let config = memsim::config::SystemConfig::new(
        1,
        ChipDensity::Gb8,
        memsim::config::RefreshPolicy::baseline_16ms(),
    );
    let mut sys = memsim::system::System::new(config, vec![memtrace::cpu::spec_tpc_pool()[0]], 7);
    let _ = sys.run(20_000);

    // Layer 4: fleet run (fleet.rollup.* aggregate counters/histograms).
    let fleet_config = fleet::FleetConfig::small(4, 0x0B5);
    let _ = fleet::engine::run_fleet(&fleet_config, 2);

    // Layer 5: durable-store round trip (store.* counters): a store-backed
    // engine crashes mid-run, its WAL tail is torn mid-record (the classic
    // partial-write crash), and recovery truncates the tear, replays the
    // journal, and resumes to completion. Every store.* counter — appends,
    // bytes, snapshots, replayed records, truncated bytes — fires with a
    // value that derives from the fixed workload alone.
    let dir = store::scratch_dir("obs-reference");
    let store_trace = memtrace::workload::WorkloadProfile::netflix()
        .scaled(0.01)
        .generate(11);
    {
        let mut engine = memcon::engine::MemconEngine::new(
            memcon::config::MemconConfig::paper_default(),
            store_trace.n_pages(),
        );
        let s = store::Store::create(&dir, store::DurabilityMode::Buffered)
            // memlint: allow(no-unwrap): a broken scratch dir must fail the tool loudly
            .expect("scratch store directory must be creatable");
        // Cadence far past the run: the anchor snapshot is the only one,
        // so the whole partial run accumulates in one WAL tail segment.
        engine
            .attach_store(s, 10_000)
            // memlint: allow(no-unwrap): fresh engine + rate oracle always accepts a store
            .expect("fresh engine accepts a store");
        engine.begin_run(&store_trace);
        engine.advance_until(&store_trace, store_trace.duration_ns() * 2 / 5);
        // Crash: drop the engine mid-run without finish_run.
    }
    // memlint: allow(no-unwrap): the anchor-only cadence above guarantees a tail
    let tail = newest_wal_segment(&dir).expect("crashed run leaves a WAL tail");
    let len = std::fs::metadata(&tail)
        // memlint: allow(no-unwrap): scratch-dir IO failures must fail the tool loudly
        .expect("tail segment is readable")
        .len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&tail)
        // memlint: allow(no-unwrap): scratch-dir IO failures must fail the tool loudly
        .expect("tail segment is writable");
    // memlint: allow(no-unwrap): scratch-dir IO failures must fail the tool loudly
    f.set_len(len - 3).expect("tear the tail mid-record");
    drop(f);
    let (mut engine, _) =
        memcon::engine::MemconEngine::recover(&dir, store::DurabilityMode::Buffered, None)
            // memlint: allow(no-unwrap): a torn tail failing to recover is exactly what the golden must catch
            .expect("torn tail recovers");
    engine.advance_until(&store_trace, store_trace.duration_ns());
    let _ = engine.finish_run();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The highest-sequence `.wal` segment in `dir`, if any.
fn newest_wal_segment(dir: &Path) -> Option<std::path::PathBuf> {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segments.sort();
    segments.pop()
}

fn print_cmd() -> i32 {
    let report = reference_deterministic();
    println!("{}", pretty(&report, 0));
    0
}

fn write_cmd() -> i32 {
    let path = crate::workspace_root().join(EXPECTED_FILE);
    let report = reference_deterministic().emit();
    match std::fs::write(&path, report + "\n") {
        Ok(()) => {
            println!("obs: wrote {}", path.display());
            0
        }
        Err(e) => {
            eprintln!("obs: could not write {}: {e}", path.display());
            1
        }
    }
}

fn check_cmd() -> i32 {
    let path = crate::workspace_root().join(EXPECTED_FILE);
    let committed = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "obs: could not read {} ({e}); run `cargo run -p xtask -- obs --write` first",
                path.display()
            );
            return 1;
        }
    };
    let expected = match Json::parse(&committed) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("obs: {}: {e}", path.display());
            return 1;
        }
    };
    let fresh = reference_deterministic();
    // Canonical byte comparison: re-emit both so formatting differences
    // cannot mask or fake a divergence.
    let expected_det = expected
        .get("deterministic")
        .cloned()
        .unwrap_or_else(Json::obj);
    let fresh_det = fresh
        .get("deterministic")
        .cloned()
        .unwrap_or_else(Json::obj);
    if expected_det.emit() == fresh_det.emit() {
        println!("obs: deterministic section matches {}", path.display());
        return 0;
    }
    eprintln!(
        "obs: FAILED: fresh deterministic section diverges from {}",
        path.display()
    );
    print_diff(&expected_det, &fresh_det, "committed", "fresh");
    eprintln!("obs: if the divergence is an intended instrumentation change, refresh the golden file with `cargo run -p xtask -- obs --write`");
    1
}

fn diff_cmd(a: &Path, b: &Path) -> i32 {
    let load = |p: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        Ok(doc.get("deterministic").cloned().unwrap_or(doc))
    };
    match (load(a), load(b)) {
        (Ok(ja), Ok(jb)) => {
            if ja.emit() == jb.emit() {
                println!("obs: deterministic sections are identical");
                0
            } else {
                print_diff(&ja, &jb, &a.display().to_string(), &b.display().to_string());
                1
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs: {e}");
            1
        }
    }
}

/// Prints a leaf-level comparison of two JSON trees to stderr.
fn print_diff(a: &Json, b: &Json, a_name: &str, b_name: &str) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    flatten("", a, &mut left);
    flatten("", b, &mut right);
    for (path, value) in &left {
        match right.iter().find(|(p, _)| p == path) {
            Some((_, other)) if other == value => {}
            Some((_, other)) => eprintln!("  {path}: {a_name}={value} {b_name}={other}"),
            None => eprintln!("  {path}: only in {a_name} ({value})"),
        }
    }
    for (path, value) in &right {
        if !left.iter().any(|(p, _)| p == path) {
            eprintln!("  {path}: only in {b_name} ({value})");
        }
    }
}

/// Flattens a JSON tree into `(path, leaf)` pairs for diffing.
fn flatten(prefix: &str, j: &Json, out: &mut Vec<(String, String)>) {
    match j {
        Json::Obj(fields) => {
            for (k, v) in fields {
                flatten(&format!("{prefix}/{k}"), v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        leaf => out.push((prefix.to_string(), leaf.emit())),
    }
}

/// Indented renderer for terminal reading (the on-disk format stays
/// compact).
fn pretty(j: &Json, depth: usize) -> String {
    let pad = "  ".repeat(depth);
    match j {
        Json::Obj(fields) if fields.is_empty() => "{}".to_string(),
        Json::Obj(fields) => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{pad}  \"{k}\": {}", pretty(v, depth + 1)))
                .collect();
            format!("{{\n{}\n{pad}}}", body.join(",\n"))
        }
        Json::Arr(items) if items.len() > 8 || items.iter().any(|i| matches!(i, Json::Obj(_))) => {
            let body: Vec<String> = items
                .iter()
                .map(|v| format!("{pad}  {}", pretty(v, depth + 1)))
                .collect();
            format!("[\n{}\n{pad}]", body.join(",\n"))
        }
        other => other.emit(),
    }
}

/// Measures the `evaluate_module_1bank` kernel with telemetry disabled and
/// with an enabled registry installed, in several alternating rounds, and
/// fails only when **every** round shows both the median and the minimum
/// more than [`OVERHEAD_LIMIT`] above the disabled baseline. A real
/// overhead regression reproduces in every round; a host-scheduling stall
/// poisons at most the rounds it overlaps, so interleaving plus the
/// best-round verdict keeps the gate stable on busy machines (the same
/// noise philosophy as the bench regression gate's dual criterion).
fn overhead_cmd() -> i32 {
    use dram::cell::RowContent;
    use dram::geometry::{ChipDensity, DramGeometry};
    use dram::module::DramModule;
    use dram::timing::TimingParams;
    use memutil::rng::{Rng, SeedableRng, SmallRng};

    if cfg!(debug_assertions) {
        println!(
            "obs: NOTE: measuring a debug build; prefer `cargo run --release -p xtask -- obs overhead`"
        );
    }
    // The benchmark module from `bench_suite::micro::bench_failure_model`.
    let geometry = DramGeometry {
        ranks: 1,
        chips_per_rank: 1,
        banks: 1,
        rows_per_bank: 512,
        row_bytes: 8192,
        block_bytes: 64,
        density: ChipDensity::Gb8,
    };
    let mut module = DramModule::new(geometry, TimingParams::ddr3_1600(), 0xFA11);
    let words = geometry.words_per_row();
    let mut rng = SmallRng::seed_from_u64(9);
    module.fill_with(|_| RowContent::from_words((0..words).map(|_| rng.gen()).collect()));
    let model = failure_model::model::CouplingFailureModel::default();
    // Warm the vulnerable-cell cache so both arms measure the steady state.
    let _ = model.evaluate_module_with_jobs(&module, 328.0, 1);

    let measure = |c: &mut memutil::bench::Criterion, name: String| {
        c.bench_function(&name, |b| {
            b.iter(|| {
                std::hint::black_box(model.evaluate_module_with_jobs(&module, 328.0, 1).len())
            })
        });
    };
    const ROUNDS: usize = 3;
    let mut criterion = memutil::bench::Criterion::default()
        .measurement_time(std::time::Duration::from_millis(600));
    for round in 0..ROUNDS {
        measure(&mut criterion, format!("telemetry_disabled_r{round}"));
        let registry = Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let guard = telemetry::install(Arc::clone(&registry));
        measure(&mut criterion, format!("telemetry_enabled_r{round}"));
        // Third arm: the live observability plane armed — a primed
        // time-series ring and an open tree span over the measurement.
        // The kernel itself never samples, so an armed sampler must cost
        // the same as plain enabled telemetry.
        let _ = registry.sample_point(0, &[("obs.armed", 1)]);
        let root = telemetry::tree_span("obs.overhead");
        measure(&mut criterion, format!("telemetry_sampled_r{round}"));
        drop(root);
        drop(guard);
    }
    let results = criterion.final_summary();
    let find = |name: String| results.iter().find(|r| r.name == name);
    let mut enabled_ok = false;
    let mut sampled_ok = false;
    for round in 0..ROUNDS {
        let Some(off) = find(format!("telemetry_disabled_r{round}")) else {
            eprintln!("obs: overhead benchmarks produced no samples");
            return 1;
        };
        for (arm, ok_flag) in [("enabled", &mut enabled_ok), ("sampled", &mut sampled_ok)] {
            let Some(on) = find(format!("telemetry_{arm}_r{round}")) else {
                eprintln!("obs: overhead benchmarks produced no samples");
                return 1;
            };
            let median_delta = (on.median_ns - off.median_ns) / off.median_ns;
            let min_delta = (on.min_ns - off.min_ns) / off.min_ns;
            let ok = median_delta <= OVERHEAD_LIMIT || min_delta <= OVERHEAD_LIMIT;
            *ok_flag |= ok;
            println!(
                "obs: telemetry {arm} overhead on evaluate_module_1bank, round {}/{ROUNDS}: \
                 median {:+.2}%, min {:+.2}% (limit {:.0}%) {}",
                round + 1,
                median_delta * 100.0,
                min_delta * 100.0,
                OVERHEAD_LIMIT * 100.0,
                if ok { "ok" } else { "over" }
            );
        }
    }
    if enabled_ok && sampled_ok {
        0
    } else {
        eprintln!(
            "obs: FAILED: telemetry ({}) costs more than {:.0}% on the evaluation kernel \
             in every round",
            if enabled_ok {
                "sampler armed"
            } else {
                "enabled"
            },
            OVERHEAD_LIMIT * 100.0
        );
        1
    }
}
