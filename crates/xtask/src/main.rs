//! `cargo run -p xtask -- <command>` — workspace automation entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-ratchet");
            let json = args.iter().find_map(|a| {
                if a == "--json" {
                    Some("-")
                } else {
                    a.strip_prefix("--json=")
                }
            });
            xtask::lint_cmd(update, json)
        }
        Some("ci") => xtask::ci_cmd(args.iter().any(|a| a == "--bench")),
        Some("obs") => xtask::obs::obs_cmd(&args[1..]),
        Some("chaos") => xtask::chaos::chaos_cmd(&args[1..]),
        Some("crash") => xtask::crash::crash_cmd(&args[1..]),
        Some("fleet") => xtask::fleet::fleet_cmd(&args[1..]),
        Some("top") => xtask::top::top_cmd(&args[1..]),
        Some("bench") => match args.get(1).map(String::as_str) {
            Some("baseline") => xtask::bench_baseline_cmd(),
            Some("compare") => xtask::bench_compare_cmd(),
            other => {
                eprintln!(
                    "xtask: unknown bench target {other:?} (expected `baseline` or `compare`)"
                );
                usage();
                2
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown command {other:?}");
            usage();
            2
        }
        None => {
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         \n\
         commands:\n\
         \x20 lint [--update-ratchet] [--json[=PATH]]\n\
         \x20                           run memlint against the ratchet; --json\n\
         \x20                           emits the memcon-memlint/v1 report to\n\
         \x20                           stdout (or PATH, relative to the\n\
         \x20                           workspace root)\n\
         \x20 ci [--bench]              fmt-check (if rustfmt present), memlint,\n\
         \x20                           cargo build --release, the --jobs 1-vs-4\n\
         \x20                           output + telemetry determinism gate,\n\
         \x20                           obs --check, a quick 3-plan chaos soak,\n\
         \x20                           cargo test -q; --bench additionally runs\n\
         \x20                           `bench compare`, `obs overhead`, and\n\
         \x20                           `chaos overhead`\n\
         \x20 chaos [--plans N] [--quick] [health [--serve[=ADDR]]] [overhead]\n\
         \x20                           fault-injection soak gate: N seeded\n\
         \x20                           all-site plans over the fig9 workload\n\
         \x20                           set (no panic, no uncorrectable escape,\n\
         \x20                           refresh-correctness invariant, jobs 1-vs-4\n\
         \x20                           determinism) plus a faulted controller\n\
         \x20                           audit; `health` soaks a faulted fleet\n\
         \x20                           with the SLO monitor armed (alert within\n\
         \x20                           2 epochs of the first fault, flight-record\n\
         \x20                           dump, optional live scrape endpoint via\n\
         \x20                           --serve); `overhead` gates the\n\
         \x20                           idle-injector cost (<2% on the eval\n\
         \x20                           kernel)\n\
         \x20 crash [--quick] [--points=N]\n\
         \x20                           crash-recovery soak gate: N seeded\n\
         \x20                           kill-at-random-WAL-offset points\n\
         \x20                           (recover, resume, byte-compare against\n\
         \x20                           an uninterrupted reference run) plus a\n\
         \x20                           corrupt-checksum leg and an injected\n\
         \x20                           torn-write leg; --quick soaks 4 points\n\
         \x20 fleet [run|bench|soak|--smoke]\n\
         \x20                           fleet-scale simulation: `run` a sharded\n\
         \x20                           fleet (--nodes N --seed S --jobs J\n\
         \x20                           [--json] [--faults]), `bench` the 64-DIMM\n\
         \x20                           jobs 1-vs-4 scaling gate (>=2.5x on >=4\n\
         \x20                           CPUs), `soak` chaos plans over a faulted\n\
         \x20                           fleet, `--smoke` the quick jobs 1-vs-4\n\
         \x20                           byte-diff CI leg\n\
         \x20 top ADDR [--watch N] [--series NAME]\n\
         \x20                           view a live scrape endpoint (HEALTH +\n\
         \x20                           METRICS, plus named SERIES), one-shot or\n\
         \x20                           redrawn every N seconds\n\
         \x20 obs [print|--write|--check|diff A B|overhead]\n\
         \x20                           telemetry-report tooling: pretty-print the\n\
         \x20                           reference report, refresh/verify the\n\
         \x20                           TELEMETRY_expected.json golden file, diff\n\
         \x20                           two reports, or gate the enabled-telemetry\n\
         \x20                           overhead (<2% on the eval kernel)\n\
         \x20 bench baseline            run the micro bench suite and write\n\
         \x20                           BENCH_baseline.json (use --release)\n\
         \x20 bench compare             run the micro bench suite and compare\n\
         \x20                           medians against BENCH_baseline.json;\n\
         \x20                           exits non-zero on a >15% regression\n\
         \x20                           (use --release)"
    );
}
