//! `cargo run -p xtask -- <command>` — workspace automation entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-ratchet");
            xtask::lint_cmd(update)
        }
        Some("ci") => xtask::ci_cmd(),
        Some(other) => {
            eprintln!("xtask: unknown command {other:?}");
            usage();
            2
        }
        None => {
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         \n\
         commands:\n\
         \x20 lint [--update-ratchet]   run memlint against the ratchet\n\
         \x20 ci                        fmt-check (if rustfmt present), memlint,\n\
         \x20                           cargo build --release, cargo test -q"
    );
}
