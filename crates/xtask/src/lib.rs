//! Workspace automation: `memlint` and the offline `ci` pipeline.
//!
//! `memlint` is a dependency-free source scanner enforcing repo-specific
//! hygiene rules that `rustc` cannot express (see [`lint`] for the rule
//! set). Pre-existing violations are frozen in a checked-in **ratchet**
//! file (`memlint.ratchet` at the workspace root): the lint fails only
//! when a `(rule, file)` pair *exceeds* its frozen count, so the debt can
//! only shrink. `cargo run -p xtask -- lint --update-ratchet` re-freezes
//! the file after paying some down.
//!
//! `ci` chains the whole offline gate: rustfmt check (when rustfmt is
//! installed), `memlint`, a release build, and the quiet test suite.

#![warn(missing_docs)]

pub mod lint;

use std::path::{Path, PathBuf};
use std::process::Command;

/// Absolute path of the workspace root (two levels above this crate).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Runs `memlint` over the workspace and prints a report.
///
/// Returns a process exit code: `0` when every `(rule, file)` count is at
/// or below its ratchet entry, `1` on regressions or (without `update`) a
/// ratchet file that no longer parses.
#[must_use]
pub fn lint_cmd(update_ratchet: bool) -> i32 {
    let root = workspace_root();
    match lint::run(&root, update_ratchet) {
        Ok(report) => {
            print!("{report}");
            i32::from(!report.passed())
        }
        Err(e) => {
            eprintln!("memlint: {e}");
            1
        }
    }
}

/// Runs the offline CI pipeline: fmt-check (if rustfmt is installed),
/// `memlint`, `cargo build --release`, `cargo test -q`.
///
/// Returns the exit code of the first failing step, or `0`.
#[must_use]
pub fn ci_cmd() -> i32 {
    let root = workspace_root();

    if rustfmt_available(&root) {
        println!("ci: cargo fmt --all -- --check");
        if let Some(code) = run_step(&root, &["fmt", "--all", "--", "--check"]) {
            return code;
        }
    } else {
        println!("ci: rustfmt not installed; skipping format check");
    }

    println!("ci: memlint");
    let lint_code = lint_cmd(false);
    if lint_code != 0 {
        return lint_code;
    }

    println!("ci: cargo build --release");
    if let Some(code) = run_step(&root, &["build", "--release"]) {
        return code;
    }

    println!("ci: cargo test -q");
    if let Some(code) = run_step(&root, &["test", "-q"]) {
        return code;
    }

    println!("ci: all steps passed");
    0
}

fn rustfmt_available(root: &Path) -> bool {
    Command::new("cargo")
        .args(["fmt", "--version"])
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Runs one `cargo` step; `None` on success, `Some(exit_code)` on failure.
fn run_step(root: &Path, args: &[&str]) -> Option<i32> {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed", args.join(" "));
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: could not spawn `cargo {}`: {e}", args.join(" "));
            Some(1)
        }
    }
}
