//! Workspace automation: `memlint` and the offline `ci` pipeline.
//!
//! `memlint` is a dependency-free source scanner enforcing repo-specific
//! hygiene rules that `rustc` cannot express (see [`lint`] for the rule
//! set). Pre-existing violations are frozen in a checked-in **ratchet**
//! file (`memlint.ratchet` at the workspace root): the lint fails only
//! when a `(rule, file)` pair *exceeds* its frozen count, so the debt can
//! only shrink. `cargo run -p xtask -- lint --update-ratchet` re-freezes
//! the file after paying some down.
//!
//! `ci` chains the whole offline gate: rustfmt check (when rustfmt is
//! installed), `memlint`, a release build, the parallel-engine determinism
//! gate (`memcon-experiments --quick all` at `--jobs 1` vs `--jobs 4`,
//! byte-compared), and the quiet test suite.
//!
//! `bench baseline` runs the `bench_suite::micro` suite in-process and
//! snapshots the medians to `BENCH_baseline.json` at the workspace root.

#![warn(missing_docs)]

pub mod lint;

use std::path::{Path, PathBuf};
use std::process::Command;

/// Absolute path of the workspace root (two levels above this crate).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Runs `memlint` over the workspace and prints a report.
///
/// Returns a process exit code: `0` when every `(rule, file)` count is at
/// or below its ratchet entry, `1` on regressions or (without `update`) a
/// ratchet file that no longer parses.
#[must_use]
pub fn lint_cmd(update_ratchet: bool) -> i32 {
    let root = workspace_root();
    match lint::run(&root, update_ratchet) {
        Ok(report) => {
            print!("{report}");
            i32::from(!report.passed())
        }
        Err(e) => {
            eprintln!("memlint: {e}");
            1
        }
    }
}

/// Runs the offline CI pipeline: fmt-check (if rustfmt is installed),
/// `memlint`, `cargo build --workspace --release` (the determinism gate
/// below byte-compares the freshly built experiments binary), the
/// determinism gate, `cargo test -q`.
///
/// Returns the exit code of the first failing step, or `0`.
#[must_use]
pub fn ci_cmd() -> i32 {
    let root = workspace_root();

    if rustfmt_available(&root) {
        println!("ci: cargo fmt --all -- --check");
        if let Some(code) = run_step(&root, &["fmt", "--all", "--", "--check"]) {
            return code;
        }
    } else {
        println!("ci: rustfmt not installed; skipping format check");
    }

    println!("ci: memlint");
    let lint_code = lint_cmd(false);
    if lint_code != 0 {
        return lint_code;
    }

    println!("ci: cargo build --workspace --release");
    if let Some(code) = run_step(&root, &["build", "--workspace", "--release"]) {
        return code;
    }

    println!("ci: determinism gate (memcon-experiments --quick all, --jobs 1 vs --jobs 4)");
    if let Some(code) = determinism_gate(&root) {
        return code;
    }

    println!("ci: cargo test -q");
    if let Some(code) = run_step(&root, &["test", "-q"]) {
        return code;
    }

    println!("ci: all steps passed");
    0
}

/// Byte-compares the rendered `--quick all` output at one worker against
/// four workers — the parallel engine's ordered-reduction contract says the
/// two must be identical. `None` on success, `Some(exit_code)` on any
/// divergence or run failure.
fn determinism_gate(root: &Path) -> Option<i32> {
    let bin = root.join(format!("target/release/memcon-experiments{}", EXE_SUFFIX));
    let run = |jobs: &str| -> Result<Vec<u8>, String> {
        let out = Command::new(&bin)
            .args(["--quick", "--jobs", jobs, "all"])
            .current_dir(root)
            .output()
            .map_err(|e| format!("could not spawn {}: {e}", bin.display()))?;
        if out.status.success() {
            Ok(out.stdout)
        } else {
            Err(format!(
                "`--quick all --jobs {jobs}` exited with {}",
                out.status
            ))
        }
    };
    match (run("1"), run("4")) {
        (Ok(seq), Ok(par)) if seq == par => {
            println!("ci: outputs byte-identical ({} bytes)", seq.len());
            None
        }
        (Ok(seq), Ok(par)) => {
            let diverges_at = seq
                .iter()
                .zip(par.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(seq.len().min(par.len()));
            eprintln!(
                "ci: determinism gate FAILED: --jobs 1 ({} bytes) and --jobs 4 ({} bytes) \
                 outputs diverge at byte {diverges_at}",
                seq.len(),
                par.len()
            );
            Some(1)
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ci: determinism gate error: {e}");
            Some(1)
        }
    }
}

const EXE_SUFFIX: &str = if cfg!(windows) { ".exe" } else { "" };

/// Runs the `bench_suite::micro` suite in-process and writes the result
/// snapshot to `BENCH_baseline.json` at the workspace root (format
/// documented in README.md). Returns a process exit code.
#[must_use]
pub fn bench_baseline_cmd() -> i32 {
    let root = workspace_root();
    let profile = if cfg!(debug_assertions) {
        println!("bench: NOTE: xtask built without optimizations; prefer `cargo run --release -p xtask -- bench baseline` for a checked-in baseline");
        "debug"
    } else {
        "release"
    };
    let mut criterion = memutil::bench::Criterion::default();
    bench_suite::micro::register(&mut criterion);
    let results = criterion.final_summary();
    if results.is_empty() {
        eprintln!("bench: no benchmarks produced samples");
        return 1;
    }
    let path = root.join("BENCH_baseline.json");
    match std::fs::write(&path, baseline_json(profile, &results)) {
        Ok(()) => {
            println!(
                "bench: wrote {} ({} benchmarks)",
                path.display(),
                results.len()
            );
            0
        }
        Err(e) => {
            eprintln!("bench: could not write {}: {e}", path.display());
            1
        }
    }
}

fn baseline_json(profile: &str, results: &[memutil::bench::BenchResult]) -> String {
    use memutil::bench::Throughput;
    use memutil::json::Json;
    let mut benchmarks = Json::arr();
    for r in results {
        let mut o = Json::obj()
            .field("name", r.name.as_str())
            .field("median_ns", r.median_ns)
            .field("min_ns", r.min_ns)
            .field("samples", r.samples as u64);
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                o.set("throughput_unit", "elements");
                o.set("throughput_per_iter", n);
                o.set("elements_per_s", n as f64 / r.median_ns * 1e9);
            }
            Some(Throughput::Bytes(n)) => {
                o.set("throughput_unit", "bytes");
                o.set("throughput_per_iter", n);
                o.set("bytes_per_s", n as f64 / r.median_ns * 1e9);
            }
            None => {}
        }
        benchmarks = benchmarks.push(o);
    }
    let mut out = Json::obj()
        .field("schema", "memcon-bench-baseline/v1")
        .field("command", "cargo run --release -p xtask -- bench baseline")
        .field("profile", profile)
        .field("benchmarks", benchmarks)
        .emit();
    out.push('\n');
    out
}

fn rustfmt_available(root: &Path) -> bool {
    Command::new("cargo")
        .args(["fmt", "--version"])
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Runs one `cargo` step; `None` on success, `Some(exit_code)` on failure.
fn run_step(root: &Path, args: &[&str]) -> Option<i32> {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed", args.join(" "));
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: could not spawn `cargo {}`: {e}", args.join(" "));
            Some(1)
        }
    }
}
