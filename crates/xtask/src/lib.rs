//! Workspace automation: the `memlint` driver and the offline `ci`
//! pipeline.
//!
//! The lint engine itself lives in the `memlint` crate (token-level
//! determinism analyzer + cross-artifact consistency checks); [`lint_cmd`]
//! is a thin driver that runs it over the workspace, prints the report,
//! and optionally emits the `memcon-memlint/v1` JSON document
//! (`lint --json[=PATH]`). Pre-existing violations are frozen in a
//! checked-in **ratchet** file (`memlint.ratchet` at the workspace root)
//! keyed by `(rule, file, normalized-line fingerprint)`: the lint fails
//! only on findings not covered by a frozen entry, so the debt can only
//! shrink. `cargo run -p xtask -- lint --update-ratchet` re-freezes the
//! file after paying some down; both `lint` and `ci` also fail when the
//! checked-in ratchet is out of sync with the tree (stale entries are
//! debt that was paid but not tightened).
//!
//! `ci` chains the whole offline gate: rustfmt check (when rustfmt is
//! installed), `memlint`, a release build, the parallel-engine determinism
//! gate (`memcon-experiments --quick all` at `--jobs 1` vs `--jobs 4`,
//! byte-compared), the telemetry golden-file check, a quick fault-injection
//! chaos soak ([`chaos`]), and the quiet test suite.
//!
//! `bench baseline` runs the `bench_suite::micro` suite in-process and
//! snapshots the medians to `BENCH_baseline.json` at the workspace root.
//! `bench compare` re-runs the suite and diffs the fresh medians against
//! that snapshot, failing on a >15 % regression of any benchmark present
//! in both; `ci --bench` chains it after the test suite.

#![warn(missing_docs)]

pub mod chaos;
pub mod crash;
pub mod fleet;
pub mod obs;
pub mod top;

use std::path::{Path, PathBuf};
use std::process::Command;

/// Absolute path of the workspace root (two levels above this crate).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Runs `memlint` over the workspace and prints a report.
///
/// `json` additionally emits the `memcon-memlint/v1` report document:
/// `Some("-")` to stdout (suppressing the human report), `Some(path)` to a
/// file.
///
/// Returns a process exit code: `0` when every finding is covered by the
/// ratchet **and** the ratchet byte-matches what `--update-ratchet` would
/// write; `1` on net-new findings, a stale/malformed ratchet, or I/O
/// errors.
#[must_use]
pub fn lint_cmd(update_ratchet: bool, json: Option<&str>) -> i32 {
    let root = workspace_root();
    let outcome = match memlint::run(&root, update_ratchet) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("memlint: {e}");
            return 1;
        }
    };
    let mut doc = outcome.to_json().emit();
    doc.push('\n');
    match json {
        Some("-") => print!("{doc}"),
        Some(path) => {
            let path = root.join(path);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("memlint: cannot write {}: {e}", path.display());
                return 1;
            }
            print!("{outcome}");
            println!("memlint: JSON report written to {}", path.display());
        }
        None => print!("{outcome}"),
    }
    i32::from(!(outcome.passed() && outcome.ratchet_in_sync))
}

/// Runs the offline CI pipeline: fmt-check (if rustfmt is installed),
/// `memlint`, `cargo build --workspace --release` (the determinism gate
/// below byte-compares the freshly built experiments binary), the
/// determinism gate, `obs --check`, a quick 3-plan chaos soak
/// ([`chaos::chaos_cmd`]), the `chaos health` smoke (armed SLO monitor,
/// alert latency, flight-record dump), the quick crash-recovery soak
/// ([`crash::crash_cmd`]), the fleet smoke gate
/// ([`fleet::fleet_cmd`] with `--smoke`), `cargo test -q`, and — when
/// `bench` is set —
/// the `bench compare` regression gate plus the `obs` and `chaos`
/// overhead gates (run through `cargo run --release` so the fresh medians
/// are measured at the same profile as the checked-in baseline,
/// regardless of how this xtask itself was built).
///
/// Returns the exit code of the first failing step, or `0`.
#[must_use]
pub fn ci_cmd(bench: bool) -> i32 {
    let root = workspace_root();

    if rustfmt_available(&root) {
        println!("ci: cargo fmt --all -- --check");
        if let Some(code) = run_step(&root, &["fmt", "--all", "--", "--check"]) {
            return code;
        }
    } else {
        println!("ci: rustfmt not installed; skipping format check");
    }

    println!("ci: memlint (JSON report to target/memlint-report.json)");
    let lint_code = lint_cmd(false, Some("target/memlint-report.json"));
    if lint_code != 0 {
        return lint_code;
    }

    println!("ci: cargo build --workspace --release");
    if let Some(code) = run_step(&root, &["build", "--workspace", "--release"]) {
        return code;
    }

    println!("ci: determinism gate (memcon-experiments --quick all, --jobs 1 vs --jobs 4)");
    if let Some(code) = determinism_gate(&root) {
        return code;
    }

    println!("ci: obs --check (telemetry golden file)");
    let obs_code = obs::obs_cmd(&["--check".to_string()]);
    if obs_code != 0 {
        return obs_code;
    }

    println!("ci: chaos soak (3 quick fault plans)");
    let chaos_code = chaos::chaos_cmd(&["--quick".to_string(), "--plans=3".to_string()]);
    if chaos_code != 0 {
        return chaos_code;
    }

    println!("ci: chaos health (armed SLO monitor + flight recorder)");
    let health_code = chaos::chaos_cmd(&["health".to_string()]);
    if health_code != 0 {
        return health_code;
    }

    println!("ci: crash --quick (kill-at-random-WAL-offset recovery soak)");
    let crash_code = crash::crash_cmd(&["--quick".to_string()]);
    if crash_code != 0 {
        return crash_code;
    }

    println!("ci: fleet smoke (jobs 1-vs-4 byte-diff, fault-free and faulted)");
    let fleet_code = fleet::fleet_cmd(&["--smoke".to_string()]);
    if fleet_code != 0 {
        return fleet_code;
    }

    println!("ci: cargo test -q");
    if let Some(code) = run_step(&root, &["test", "-q"]) {
        return code;
    }

    if bench {
        println!("ci: bench compare (release)");
        if let Some(code) = run_step(
            &root,
            &["run", "--release", "-p", "xtask", "--", "bench", "compare"],
        ) {
            return code;
        }
        println!("ci: obs overhead (release)");
        if let Some(code) = run_step(
            &root,
            &["run", "--release", "-p", "xtask", "--", "obs", "overhead"],
        ) {
            return code;
        }
        println!("ci: chaos overhead (release)");
        if let Some(code) = run_step(
            &root,
            &["run", "--release", "-p", "xtask", "--", "chaos", "overhead"],
        ) {
            return code;
        }
    }

    println!("ci: all steps passed");
    0
}

/// Byte-compares the rendered `--quick all` output at one worker against
/// four workers — the parallel engine's ordered-reduction contract says the
/// two must be identical. Both runs collect telemetry, and the reports'
/// `deterministic` sections are byte-compared too (the `timing` section is
/// wall-clock and legitimately differs). `None` on success,
/// `Some(exit_code)` on any divergence or run failure.
fn determinism_gate(root: &Path) -> Option<i32> {
    let bin = root.join(format!("target/release/memcon-experiments{}", EXE_SUFFIX));
    let report_path =
        |jobs: &str| root.join(format!("target/TELEMETRY_determinism_jobs{jobs}.json"));
    let run = |jobs: &str| -> Result<Vec<u8>, String> {
        let telemetry_arg = format!("--telemetry={}", report_path(jobs).display());
        let out = Command::new(&bin)
            .args(["--quick", "--jobs", jobs, &telemetry_arg, "all"])
            .current_dir(root)
            .output()
            .map_err(|e| format!("could not spawn {}: {e}", bin.display()))?;
        if out.status.success() {
            Ok(out.stdout)
        } else {
            Err(format!(
                "`--quick all --jobs {jobs}` exited with {}",
                out.status
            ))
        }
    };
    match (run("1"), run("4")) {
        (Ok(seq), Ok(par)) if seq == par => {
            println!("ci: outputs byte-identical ({} bytes)", seq.len());
            telemetry_sections_match(&report_path("1"), &report_path("4"))
        }
        (Ok(seq), Ok(par)) => {
            let diverges_at = seq
                .iter()
                .zip(par.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(seq.len().min(par.len()));
            eprintln!(
                "ci: determinism gate FAILED: --jobs 1 ({} bytes) and --jobs 4 ({} bytes) \
                 outputs diverge at byte {diverges_at}",
                seq.len(),
                par.len()
            );
            Some(1)
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ci: determinism gate error: {e}");
            Some(1)
        }
    }
}

/// Compares the `deterministic` sections of two telemetry report files
/// (canonical re-emission, so formatting cannot mask a divergence).
fn telemetry_sections_match(a: &Path, b: &Path) -> Option<i32> {
    use memutil::json::Json;
    let load = |p: &Path| -> Result<String, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        Ok(doc
            .get("deterministic")
            .cloned()
            .unwrap_or_else(Json::obj)
            .emit())
    };
    match (load(a), load(b)) {
        (Ok(ja), Ok(jb)) if ja == jb => {
            println!(
                "ci: telemetry deterministic sections byte-identical ({} bytes)",
                ja.len()
            );
            None
        }
        (Ok(_), Ok(_)) => {
            eprintln!(
                "ci: determinism gate FAILED: telemetry deterministic sections diverge \
                 (inspect with `cargo run -p xtask -- obs diff {} {}`)",
                a.display(),
                b.display()
            );
            Some(1)
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ci: determinism gate error: {e}");
            Some(1)
        }
    }
}

const EXE_SUFFIX: &str = if cfg!(windows) { ".exe" } else { "" };

/// Runs the `bench_suite::micro` suite in-process and writes the result
/// snapshot to `BENCH_baseline.json` at the workspace root (format
/// documented in README.md). Returns a process exit code.
#[must_use]
pub fn bench_baseline_cmd() -> i32 {
    let root = workspace_root();
    let profile = if cfg!(debug_assertions) {
        println!("bench: NOTE: xtask built without optimizations; prefer `cargo run --release -p xtask -- bench baseline` for a checked-in baseline");
        "debug"
    } else {
        "release"
    };
    let mut criterion = memutil::bench::Criterion::default();
    bench_suite::micro::register(&mut criterion);
    let results = criterion.final_summary();
    if results.is_empty() {
        eprintln!("bench: no benchmarks produced samples");
        return 1;
    }
    let path = root.join("BENCH_baseline.json");
    match std::fs::write(&path, baseline_json(profile, &results)) {
        Ok(()) => {
            println!(
                "bench: wrote {} ({} benchmarks)",
                path.display(),
                results.len()
            );
            0
        }
        Err(e) => {
            eprintln!("bench: could not write {}: {e}", path.display());
            1
        }
    }
}

/// Fractional median slowdown beyond which `bench compare` fails.
const BENCH_REGRESSION_LIMIT: f64 = 0.15;

/// Runs the `bench_suite::micro` suite in-process and compares the fresh
/// medians against `BENCH_baseline.json`, printing one line per benchmark
/// with the median delta. Returns `1` when any benchmark present in both
/// the baseline and the fresh run regressed by more than 15 %, when the
/// baseline is missing/unreadable, or when the suite produced no samples;
/// `0` otherwise. Benchmarks only on one side never fail the gate (a new
/// benchmark has nothing to regress against), but they are collected into
/// `added` / `removed` lists and named in the final verdict so a suite
/// rename or a silently dropped benchmark is visible in the summary line.
///
/// A benchmark counts as regressed only when **both** its median and its
/// minimum are >15 % above the baseline's. On a shared machine transient
/// scheduler interference routinely inflates a 20-sample median by tens of
/// percent while leaving the minimum within a few percent; a genuine code
/// regression moves both. Lines that trip the median limit alone are
/// flagged `noisy` but pass.
#[must_use]
pub fn bench_compare_cmd() -> i32 {
    let root = workspace_root();
    let path = root.join("BENCH_baseline.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench: could not read {} ({e}); run `cargo run --release -p xtask -- bench baseline` first",
                path.display()
            );
            return 1;
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench: {}: {e}", path.display());
            return 1;
        }
    };

    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if baseline.profile != profile {
        println!(
            "bench: WARNING: baseline profile is `{}` but this run is `{profile}`; \
             deltas are not meaningful (use `cargo run --release -p xtask -- bench compare`)",
            baseline.profile
        );
    }

    let mut criterion = memutil::bench::Criterion::default();
    bench_suite::micro::register(&mut criterion);
    let results = criterion.final_summary();
    if results.is_empty() {
        eprintln!("bench: no benchmarks produced samples");
        return 1;
    }

    let width = results
        .iter()
        .map(|r| r.name.len())
        .chain(baseline.medians.iter().map(|e| e.name.len()))
        .max()
        .unwrap_or(0);
    let mut regressions = Vec::new();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    println!(
        "bench: comparing {} fresh benchmarks against {} baseline entries ({})",
        results.len(),
        baseline.medians.len(),
        path.display()
    );
    for r in &results {
        let Some(entry) = baseline.medians.iter().find(|e| e.name == r.name) else {
            println!(
                "  {:width$}  {:>12}  (new benchmark, no baseline)",
                r.name,
                format_ns(r.median_ns)
            );
            added.push(r.name.clone());
            continue;
        };
        let delta = relative_delta(entry.median_ns, r.median_ns);
        let min_delta = relative_delta(entry.min_ns, r.min_ns);
        let speedup = if r.median_ns > 0.0 {
            entry.median_ns / r.median_ns
        } else {
            f64::INFINITY
        };
        let verdict = if delta > BENCH_REGRESSION_LIMIT && min_delta > BENCH_REGRESSION_LIMIT {
            regressions.push(r.name.clone());
            "REGRESSED".to_string()
        } else if delta > BENCH_REGRESSION_LIMIT {
            format!("noisy (min {:+.1}%)", min_delta * 100.0)
        } else if delta < -BENCH_REGRESSION_LIMIT {
            "improved".to_string()
        } else {
            "ok".to_string()
        };
        println!(
            "  {:width$}  {:>12} -> {:>12}  {:>+8.1}%  {:>7.2}x  {verdict}",
            r.name,
            format_ns(entry.median_ns),
            format_ns(r.median_ns),
            delta * 100.0,
            speedup
        );
    }
    for entry in &baseline.medians {
        let name = &entry.name;
        if !results.iter().any(|r| &r.name == name) {
            println!("  {name:width$}  WARNING: in baseline but missing from this run");
            removed.push(name.clone());
        }
    }

    // Name one-sided benchmarks in the verdict so a rename (one added, one
    // removed) or a dropped benchmark can't hide in the per-line noise; the
    // fix is to re-run `bench baseline` once the change is intentional.
    if !added.is_empty() {
        println!("bench: added (no baseline entry): {}", added.join(", "));
    }
    if !removed.is_empty() {
        println!(
            "bench: removed (in baseline, not in this run): {}",
            removed.join(", ")
        );
    }

    if regressions.is_empty() {
        println!(
            "bench: no benchmark regressed beyond {:.0}% ({} added, {} removed)",
            BENCH_REGRESSION_LIMIT * 100.0,
            added.len(),
            removed.len()
        );
        0
    } else {
        eprintln!(
            "bench: FAILED: {} benchmark(s) regressed beyond {:.0}%: {} ({} added, {} removed)",
            regressions.len(),
            BENCH_REGRESSION_LIMIT * 100.0,
            regressions.join(", "),
            added.len(),
            removed.len()
        );
        1
    }
}

/// `(current - base) / base`, or `0.0` when the base is degenerate.
fn relative_delta(base: f64, current: f64) -> f64 {
    if base > 0.0 {
        (current - base) / base
    } else {
        0.0
    }
}

/// Schema tag of `BENCH_baseline.json` (memlint's `schema-once` rule
/// requires exactly one definition per schema string).
const BENCH_BASELINE_SCHEMA: &str = "memcon-bench-baseline/v1";

/// The subset of `BENCH_baseline.json` that `bench compare` consumes.
struct BenchBaseline {
    profile: String,
    /// Entries in file order.
    medians: Vec<BaselineEntry>,
}

struct BaselineEntry {
    name: String,
    median_ns: f64,
    min_ns: f64,
}

fn parse_baseline(text: &str) -> Result<BenchBaseline, String> {
    use memutil::json::Json;
    let doc = Json::parse(text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BENCH_BASELINE_SCHEMA {
        return Err(format!("unsupported baseline schema {schema:?}"));
    }
    let profile = doc
        .get("profile")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let Some(Json::Arr(entries)) = doc.get("benchmarks") else {
        return Err("missing `benchmarks` array".to_string());
    };
    let mut medians = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("benchmark #{i} has no `name`"))?;
        let median_ns = entry
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("benchmark {name:?} has no `median_ns`"))?;
        let min_ns = entry
            .get("min_ns")
            .and_then(Json::as_f64)
            .unwrap_or(median_ns);
        medians.push(BaselineEntry {
            name: name.to_string(),
            median_ns,
            min_ns,
        });
    }
    Ok(BenchBaseline { profile, medians })
}

/// Renders a nanosecond count with an adaptive unit (ns/us/ms/s).
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn baseline_json(profile: &str, results: &[memutil::bench::BenchResult]) -> String {
    use memutil::bench::Throughput;
    use memutil::json::Json;
    let mut benchmarks = Json::arr();
    for r in results {
        let mut o = Json::obj()
            .field("name", r.name.as_str())
            .field("median_ns", r.median_ns)
            .field("min_ns", r.min_ns)
            .field("samples", r.samples as u64);
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                o.set("throughput_unit", "elements");
                o.set("throughput_per_iter", n);
                o.set("elements_per_s", n as f64 / r.median_ns * 1e9);
            }
            Some(Throughput::Bytes(n)) => {
                o.set("throughput_unit", "bytes");
                o.set("throughput_per_iter", n);
                o.set("bytes_per_s", n as f64 / r.median_ns * 1e9);
            }
            None => {}
        }
        benchmarks = benchmarks.push(o);
    }
    let mut out = Json::obj()
        .field("schema", BENCH_BASELINE_SCHEMA)
        .field("command", "cargo run --release -p xtask -- bench baseline")
        .field("profile", profile)
        .field("benchmarks", benchmarks)
        .emit();
    out.push('\n');
    out
}

fn rustfmt_available(root: &Path) -> bool {
    Command::new("cargo")
        .args(["fmt", "--version"])
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Runs one `cargo` step; `None` on success, `Some(exit_code)` on failure.
fn run_step(root: &Path, args: &[&str]) -> Option<i32> {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => None,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed", args.join(" "));
            Some(status.code().unwrap_or(1))
        }
        Err(e) => {
            eprintln!("ci: could not spawn `cargo {}`: {e}", args.join(" "));
            Some(1)
        }
    }
}
