//! Fleet jobs-invariance property tests.
//!
//! The fleet contract: for a fixed [`FleetConfig`], the fleet report's
//! deterministic section AND the telemetry registry's deterministic
//! section are byte-identical at any `--jobs` value — with or without a
//! fault plan armed. These tests pin that over fleet sizes {4, 64},
//! multiple seeds, jobs {1, 2, 8}, both oracle modes, and three chaos
//! fault plans.

use std::sync::{Arc, Mutex, OnceLock};

use faultinject::{FaultPlan, Site, SiteSpec};
use fleet::engine::run_fleet;
use fleet::{FleetConfig, FleetOracle};

/// `telemetry::install` swaps a process-global registry; tests in this
/// binary run on parallel threads, so runs that compare registry contents
/// serialize on this lock.
fn registry_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs the fleet once at `jobs` under a fresh enabled registry, returning
/// the byte-stable pair the contract is defined over: (fleet report
/// deterministic section, telemetry deterministic section).
fn run_once(config: &FleetConfig, jobs: usize) -> (String, String) {
    let _serial = registry_lock().lock().unwrap();
    let registry = Arc::new(telemetry::Registry::new());
    registry.set_enabled(true);
    let guard = telemetry::install(Arc::clone(&registry));
    let report = run_fleet(config, jobs);
    drop(guard);
    let telemetry_det = registry
        .report()
        .get("deterministic")
        .expect("report has a deterministic section")
        .emit();
    (report.deterministic_emit(), telemetry_det)
}

fn assert_jobs_invariant(config: &FleetConfig, label: &str) {
    let (report_1, telemetry_1) = run_once(config, 1);
    for jobs in [2, 8] {
        let (report_j, telemetry_j) = run_once(config, jobs);
        assert_eq!(
            report_1, report_j,
            "{label}: fleet report diverged at jobs={jobs}"
        );
        assert_eq!(
            telemetry_1, telemetry_j,
            "{label}: telemetry deterministic section diverged at jobs={jobs}"
        );
    }
}

#[test]
fn small_fleets_are_jobs_invariant_across_seeds() {
    for seed in [0xA5, 0x1CEB00DA] {
        let config = FleetConfig::small(4, seed);
        assert_jobs_invariant(&config, &format!("4 nodes, seed {seed:#x}"));
    }
}

#[test]
fn large_fleet_is_jobs_invariant() {
    // 64 shards over a shortened window: still dozens of epochs of real
    // engine work per shard, but fast enough to run at three jobs levels.
    let mut config = FleetConfig::small(64, 0xF1EE7);
    config.window_s = 2.0;
    assert_jobs_invariant(&config, "64 nodes");
}

#[test]
fn content_oracle_fleet_is_jobs_invariant() {
    let mut config = FleetConfig::small(4, 0xC0417E47);
    config.oracle = FleetOracle::Content { rows_per_bank: 32 };
    assert_jobs_invariant(&config, "4 content-oracle nodes");
}

#[test]
fn chaos_fleets_are_jobs_invariant() {
    // Three distinct fault plans, every site armed: per-shard fault
    // streams derive from (plan seed, node), never from thread schedule.
    const PLAN_SEED_BASE: u64 = 0xF1EE_7C4A_0500_0000;
    for plan_idx in 0..3u64 {
        let mut plan = FaultPlan::new(PLAN_SEED_BASE + plan_idx);
        for site in Site::ALL {
            plan = plan.with_site(site, SiteSpec::rate(0.05));
        }
        let mut config = FleetConfig::small(4, 0xBAD5EED + plan_idx);
        config.fault_plan = Some(Arc::new(plan));
        assert_jobs_invariant(&config, &format!("chaos plan {plan_idx}"));
    }
}

#[test]
fn faults_actually_fire_under_chaos_config() {
    // Guard against the chaos variant silently degenerating into the
    // fault-free case (e.g. a plan that never fires).
    let mut plan = FaultPlan::new(0xD15EA5E);
    for site in Site::ALL {
        plan = plan.with_site(site, SiteSpec::rate(0.2));
    }
    let mut config = FleetConfig::small(4, 0xBAD5EED);
    config.fault_plan = Some(Arc::new(plan));
    let _serial = registry_lock().lock().unwrap();
    let report = run_fleet(&config, 2);
    assert!(
        report.faults_injected > 0,
        "chaos config must inject faults somewhere in the fleet"
    );
    assert_eq!(report.uncorrectable_escapes, 0, "chaos invariant");
}
