//! Live-observability contract tests for the fleet layer.
//!
//! Covers the per-epoch sampling hook (`fleet.obs.*` deltas plus
//! `fleet.gauge.*` gauges at tick = epoch) and the armed SLO monitor:
//! alerts must fire promptly once a seeded fault plan starts injecting,
//! and both the series and the alert log must be jobs-invariant.

use std::sync::{Arc, Mutex, OnceLock};

use faultinject::{FaultPlan, Site, SiteSpec};
use fleet::engine::Fleet;
use fleet::{FleetConfig, FleetPlan};
use telemetry::health::{HealthMonitor, Rule, Severity};

/// `telemetry::install` swaps a process-global registry; tests in this
/// binary run on parallel threads, so runs serialize on this lock.
fn registry_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Everything one observed fleet run produces that the contract covers.
struct Observed {
    /// Final epoch count.
    epochs: u64,
    /// Serialized deterministic `timeseries` section.
    series_emit: String,
    /// `fleet.obs.faults_injected` per-epoch deltas as (tick, value).
    fault_series: Vec<(u64, u64)>,
    /// Rendered alert lines, in firing order.
    alert_lines: Vec<String>,
    /// Epoch of the first alert, if any fired.
    first_alert_epoch: Option<u64>,
}

fn chaos_config() -> FleetConfig {
    let mut plan = FaultPlan::new(0x0B5E_7FA0);
    for site in Site::ALL {
        plan = plan.with_site(site, SiteSpec::rate(0.2));
    }
    let mut config = FleetConfig::small(4, 0x0B5E_C061);
    config.fault_plan = Some(Arc::new(plan));
    config
}

fn run_observed(config: &FleetConfig, jobs: usize) -> Observed {
    let _serial = registry_lock().lock().unwrap();
    let registry = Arc::new(telemetry::Registry::new());
    registry.set_enabled(true);
    registry.set_timeseries_capacity(1024);
    let guard = telemetry::install(Arc::clone(&registry));

    let plan = FleetPlan::expand(config, jobs);
    let mut fleet = Fleet::new(&plan);
    let mut monitor = HealthMonitor::with_default_rules();
    monitor.add_rule(Rule::delta_above(
        "fault-activity",
        Severity::Warning,
        "fleet.obs.faults_injected",
        0,
    ));
    let monitor = Arc::new(Mutex::new(monitor));
    fleet.set_health_monitor(Arc::clone(&monitor));
    let _report = fleet.run_to_completion(jobs);
    let epochs = fleet.epoch();
    drop(guard);

    let series_emit = registry
        .report()
        .get("deterministic")
        .and_then(|d| d.get("timeseries"))
        .expect("deterministic section carries the timeseries")
        .emit();
    let fault_series = registry.series("fleet.obs.faults_injected");
    let monitor = monitor.lock().unwrap();
    Observed {
        epochs,
        series_emit,
        fault_series,
        alert_lines: monitor
            .alerts()
            .iter()
            .map(telemetry::health::Alert::line)
            .collect(),
        first_alert_epoch: monitor.first_alert_epoch(),
    }
}

#[test]
fn every_epoch_is_sampled_exactly_once() {
    let config = FleetConfig::small(3, 0x5A3D);
    let obs = run_observed(&config, 1);
    assert!(obs.epochs > 0);
    let ticks: Vec<u64> = obs.fault_series.iter().map(|(t, _)| *t).collect();
    let expected: Vec<u64> = (1..=obs.epochs).collect();
    assert_eq!(ticks, expected, "one sample point per epoch, tick = epoch");
}

#[test]
fn armed_monitor_alerts_within_two_epochs_of_first_fault() {
    let obs = run_observed(&chaos_config(), 1);
    let first_fault = obs
        .fault_series
        .iter()
        .find(|(_, v)| *v > 0)
        .map(|(t, _)| *t)
        .expect("a 0.2-rate all-site plan must inject within the run");
    let first_alert = obs
        .first_alert_epoch
        .expect("fault-activity rule must fire once faults inject");
    assert!(
        first_alert <= first_fault + 2,
        "alert lag too high: first fault at epoch {first_fault}, \
         first alert at epoch {first_alert}"
    );
    assert!(!obs.alert_lines.is_empty());
}

#[test]
fn series_and_alerts_are_jobs_invariant() {
    let config = chaos_config();
    let base = run_observed(&config, 1);
    for jobs in [2, 4] {
        let other = run_observed(&config, jobs);
        assert_eq!(
            base.series_emit, other.series_emit,
            "timeseries diverged at jobs={jobs}"
        );
        assert_eq!(
            base.alert_lines, other.alert_lines,
            "alert log diverged at jobs={jobs}"
        );
        assert_eq!(base.first_alert_epoch, other.first_alert_epoch);
    }
}
