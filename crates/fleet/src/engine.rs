//! The epoch-batched fleet scheduler.
//!
//! A [`Fleet`] owns one [`MemconEngine`] per shard, each mid-way through a
//! stepped run (`begin_run` / `advance_until` / `finish_run`). Every
//! [`Fleet::run_epoch`] call advances **all** shards to the next epoch
//! boundary — `epoch × epoch_quanta × quantum` on the shared fleet clock —
//! fanning the per-shard work across the [`memutil::par`] pool, then
//! applies cross-shard bookkeeping in deterministic shard order.
//!
//! Shards live behind per-shard mutexes so the pool's `Fn` closures can
//! step them; `ordered_map_with` hands each index to exactly one worker
//! per epoch, so the locks are uncontended — they exist to satisfy the
//! shared-reference contract, not to serialize.

use std::sync::{Arc, Mutex};

use memcon::engine::{LiveStats, MemconEngine, MemconReport, RecoveryStats};
use memcon::refreshmgr::PageState;
use memcon::testengine::{ContentOracle, FailureOracle, RateOracle};
use memutil::par;

use crate::report::{FleetReport, LatencySummary, ShardSummary};
use crate::{FleetOracle, FleetPlan, ShardSpec};

/// Microsecond-scale bucket edges of the per-shard step-latency histogram
/// (`fleet.step.latency_us`, timing class).
pub const STEP_LATENCY_EDGES_US: [u64; 9] = [50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000];

/// One simulated DIMM mid-run.
#[derive(Debug)]
struct Shard {
    spec: ShardSpec,
    engine: MemconEngine,
    /// Set once the shard's trace horizon is reached and its run finished.
    report: Option<MemconReport>,
    /// Epoch at which the shard finished (cross-shard roll-up state).
    done_epoch: Option<u64>,
    /// Wall-clock nanoseconds of each epoch step (timing class only).
    step_latency_ns: Vec<u64>,
    /// Live-stats snapshot at the previous epoch boundary, so the
    /// post-barrier observability flush emits per-epoch deltas.
    last_live: LiveStats,
}

/// A running fleet: per-shard engines plus the epoch clock.
#[derive(Debug)]
pub struct Fleet {
    shards: Vec<Mutex<Shard>>,
    /// Epochs completed so far.
    epoch: u64,
    /// Fleet-clock nanoseconds per epoch.
    epoch_ns: u64,
    /// Longest shard trace horizon, ns.
    horizon_ns: u64,
    seed: u64,
    epoch_quanta: u64,
    /// Armed SLO monitor, evaluated post-barrier on every epoch sample.
    /// Shared behind a mutex so a scrape endpoint can serve `HEALTH`
    /// while the fleet runs.
    health: Option<Arc<Mutex<telemetry::HealthMonitor>>>,
}

impl Fleet {
    /// Instantiates engines for every shard of `plan` and begins their
    /// runs. Cheap relative to [`FleetPlan::expand`]: traces are shared by
    /// `Arc`, and shards of one chip-seed group share the chip's immutable
    /// state (scrambler tables, vulnerable-cell cache) through clones of a
    /// per-group template rather than rebuilding it per shard.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty (checked at expansion).
    #[must_use]
    pub fn new(plan: &FleetPlan) -> Fleet {
        let config = &plan.config;
        let quantum_ns = (config.engine.quantum_ms * 1e6) as u64;
        let templates = ContentTemplates::build(plan);
        let shards: Vec<Mutex<Shard>> = plan
            .shards
            .iter()
            .map(|spec| {
                let oracle: Box<dyn FailureOracle> = match config.oracle {
                    FleetOracle::Rate { fail_rate } => {
                        Box::new(RateOracle::new(fail_rate, spec.chip_seed))
                    }
                    FleetOracle::Content { .. } => {
                        Box::new(templates.oracle(spec, config.engine.lo_ms))
                    }
                };
                let mut engine =
                    MemconEngine::with_oracle(config.engine, spec.trace.n_pages(), oracle);
                engine.set_fault_plan(spec.fault_plan.clone());
                engine.begin_run(&spec.trace);
                Mutex::new(Shard {
                    spec: spec.clone(),
                    engine,
                    report: None,
                    done_epoch: None,
                    step_latency_ns: Vec::new(),
                    last_live: LiveStats::default(),
                })
            })
            .collect();
        let horizon_ns = plan
            .shards
            .iter()
            .map(|s| s.trace.duration_ns())
            .max()
            .unwrap_or(0);
        Fleet {
            shards,
            epoch: 0,
            epoch_ns: quantum_ns.saturating_mul(config.epoch_quanta).max(1),
            horizon_ns,
            seed: config.seed,
            epoch_quanta: config.epoch_quanta,
            health: None,
        }
    }

    /// Arms an SLO monitor: every epoch's post-barrier sample point is
    /// evaluated against its rules. Pass a shared handle when a scrape
    /// endpoint should serve `HEALTH` concurrently.
    pub fn set_health_monitor(&mut self, monitor: Arc<Mutex<telemetry::HealthMonitor>>) {
        self.health = Some(monitor);
    }

    /// The armed SLO monitor, if any.
    #[must_use]
    pub fn health_monitor(&self) -> Option<&Arc<Mutex<telemetry::HealthMonitor>>> {
        self.health.as_ref()
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has no shards (never true for expanded plans).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether every shard has finished its run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.epoch > 0 && self.epoch.saturating_mul(self.epoch_ns) >= self.horizon_ns
    }

    /// Advances every shard one epoch across `jobs` workers (`0` =
    /// resolve automatically), then applies cross-shard bookkeeping in
    /// shard order. Returns `true` while work remains.
    ///
    /// Shard advancement commutes (disjoint state; telemetry adds are
    /// atomic), so results are byte-identical at any `jobs` value.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panics (poisoned shard lock).
    pub fn run_epoch(&mut self, jobs: usize) -> bool {
        if self.is_done() {
            return false;
        }
        self.epoch += 1;
        let _epoch_span = telemetry::tree_span("fleet.epoch");
        telemetry::annotate("epoch", self.epoch);
        let limit = self.epoch.saturating_mul(self.epoch_ns);
        let finished: Vec<bool> = par::ordered_map_with(jobs, self.shards.len(), |i| {
            let mut shard = self.shards[i].lock().expect("shard engine panicked");
            let shard = &mut *shard;
            if shard.report.is_some() {
                return true;
            }
            // Nested under `fleet.epoch` at jobs=1 (same thread); a root
            // span on pool workers — tree shape is timing-class data.
            let _step_span = telemetry::tree_span("fleet.shard_step");
            telemetry::annotate("shard", i as u64);
            let ((), elapsed_ns) = telemetry::time_ns(|| {
                shard.engine.advance_until(&shard.spec.trace, limit);
                if limit >= shard.spec.trace.duration_ns() {
                    shard.report = Some(shard.engine.finish_run());
                }
            });
            shard.step_latency_ns.push(elapsed_ns);
            telemetry::observe_timing(
                "fleet.step.latency_us",
                &STEP_LATENCY_EDGES_US,
                elapsed_ns / 1_000,
            );
            shard.report.is_some()
        });
        // Cross-shard work, deterministically in shard order: stamp the
        // completion epoch of every shard that finished this batch.
        for (i, done) in finished.iter().enumerate() {
            if *done {
                let mut shard = self.shards[i].lock().expect("shard engine panicked");
                if shard.done_epoch.is_none() {
                    shard.done_epoch = Some(self.epoch);
                }
            }
        }
        self.flush_epoch_observability();
        !self.is_done()
    }

    /// Post-barrier observability flush, in deterministic shard order:
    /// folds every shard's [`LiveStats`] delta since the previous epoch
    /// into the `fleet.obs.*` counters, samples the fleet-wide gauges into
    /// the registry's time-series ring at tick = epoch, and evaluates the
    /// armed health monitor (if any) against the fresh point.
    ///
    /// Runs single-threaded after the epoch barrier, so the sampled deltas
    /// are a function of simulation state only — the series is
    /// deterministic and byte-identical at any `jobs` value.
    fn flush_epoch_observability(&self) {
        if !telemetry::enabled() {
            return;
        }
        let mut delta = LiveStats::default();
        let mut pinned = 0u64;
        let mut pages = 0u64;
        let mut pril_buffered = 0u64;
        let mut pril_capacity = 0u64;
        let mut shards_done = 0u64;
        for slot in &self.shards {
            // memlint: allow(no-unwrap): poisoned shard lock means an engine panicked — propagate
            let mut shard = slot.lock().expect("shard engine panicked");
            let live = shard.engine.live_stats();
            let prev = &shard.last_live;
            delta.faults_injected += live.faults_injected.saturating_sub(prev.faults_injected);
            delta.aborts += live.aborts.saturating_sub(prev.aborts);
            delta.retries += live.retries.saturating_sub(prev.retries);
            delta.backoffs_scheduled += live
                .backoffs_scheduled
                .saturating_sub(prev.backoffs_scheduled);
            delta.backoff_ceiling_hits += live
                .backoff_ceiling_hits
                .saturating_sub(prev.backoff_ceiling_hits);
            delta.escapes += live.escapes.saturating_sub(prev.escapes);
            pinned += live.pinned_pages;
            pages += live.pages;
            pril_buffered += live.pril_buffered;
            pril_capacity += live.pril_capacity;
            shards_done += u64::from(shard.report.is_some());
            shard.last_live = live;
        }
        telemetry::count("fleet.obs.faults_injected", delta.faults_injected);
        telemetry::count("fleet.obs.aborts", delta.aborts);
        telemetry::count("fleet.obs.retries", delta.retries);
        telemetry::count("fleet.obs.backoffs_scheduled", delta.backoffs_scheduled);
        telemetry::count("fleet.obs.backoff_ceiling_hits", delta.backoff_ceiling_hits);
        telemetry::count("fleet.obs.escapes", delta.escapes);
        let point = telemetry::sample_point(
            self.epoch,
            &[
                ("fleet.gauge.pinned_pages", pinned),
                ("fleet.gauge.pages", pages),
                ("fleet.gauge.pril_buffered", pril_buffered),
                ("fleet.gauge.pril_capacity", pril_capacity),
                ("fleet.gauge.shards_done", shards_done),
            ],
        );
        if let (Some(monitor), Some(point)) = (&self.health, point) {
            let fired = monitor
                .lock()
                // memlint: allow(no-unwrap): a poisoned monitor must fail the run, not go silent
                .expect("health monitor poisoned")
                .evaluate(&point);
            if fired > 0 {
                telemetry::trace_event("fleet.alerts_fired", fired as u64);
            }
        }
    }

    /// Runs epochs until every shard completes, then rolls up and returns
    /// the fleet report (also flushing the fleet-level roll-ups through
    /// the telemetry registry).
    pub fn run_to_completion(&mut self, jobs: usize) -> FleetReport {
        while self.run_epoch(jobs) {}
        self.report()
    }

    /// Rolls the per-shard results up into a [`FleetReport`] and flushes
    /// the fleet-level aggregates through [`telemetry`]. Call after the
    /// fleet is done; shards still mid-run contribute no summary.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panicked (poisoned shard lock).
    #[must_use]
    pub fn report(&self) -> FleetReport {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut latencies: Vec<u64> = Vec::new();
        for slot in &self.shards {
            let shard = slot.lock().expect("shard engine panicked");
            latencies.extend_from_slice(&shard.step_latency_ns);
            let Some(report) = shard.report else { continue };
            let internals = shard.engine.internals();
            let recovery: &RecoveryStats = shard.engine.recovery_stats();
            let final_hi = shard
                .engine
                .final_states()
                .iter()
                .filter(|s| **s != PageState::LoRef)
                .count() as u64;
            shards.push(ShardSummary {
                node: shard.spec.node,
                profile: shard.spec.profile.clone(),
                n_pages: shard.spec.trace.n_pages(),
                done_epoch: shard.done_epoch.unwrap_or(self.epoch),
                refresh_reduction: report.refresh_reduction,
                lo_coverage: report.lo_coverage,
                refresh_ops: report.refresh_ops,
                baseline_ops: report.baseline_ops,
                tests_correct: report.tests_correct,
                tests_mispredicted: report.tests_mispredicted,
                failing_tests: internals.tests.failed,
                final_hi_pages: final_hi,
                faults_injected: recovery.faults_injected.iter().sum(),
                uncorrectable_escapes: recovery.uncorrectable_escapes,
            });
        }
        latencies.sort_unstable();
        let percentile = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx.min(latencies.len() - 1)]
        };
        let report = FleetReport::new(
            self.shards.len() as u64,
            self.seed,
            self.epoch,
            self.epoch_quanta,
            shards,
            LatencySummary {
                samples: latencies.len() as u64,
                p50_ns: percentile(0.50),
                p99_ns: percentile(0.99),
                max_ns: latencies.last().copied().unwrap_or(0),
            },
        );
        report.flush_telemetry();
        report
    }

    /// Checks the refresh-correctness invariant on every finished shard.
    ///
    /// # Errors
    ///
    /// Returns the first violating shard and its engine's description.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panicked (poisoned shard lock).
    pub fn verify_refresh_correctness(&self) -> Result<(), String> {
        for (i, slot) in self.shards.iter().enumerate() {
            let shard = slot.lock().expect("shard engine panicked");
            if shard.report.is_some() {
                shard
                    .engine
                    .verify_refresh_correctness()
                    .map_err(|e| format!("shard {i}: {e}"))?;
            }
        }
        Ok(())
    }
}

/// Per-chip-seed-group content templates: one simulated module per
/// distinct `(chip seed, density)` identity, built once and **cloned**
/// into each member shard's oracle. `DramModule` clones share their
/// scrambler tables and `CouplingFailureModel` clones share the
/// vulnerable-cell cache, so a group's chip state is `Arc`-shared across
/// its shard engines — cold fills happen once per chip config, not once
/// per shard (asserted by the cheap-clone audit test).
#[derive(Debug, Default)]
struct ContentTemplates {
    modules: Vec<((u64, dram::geometry::ChipDensity), dram::module::DramModule)>,
    model: Option<failure_model::model::CouplingFailureModel>,
}

impl ContentTemplates {
    fn build(plan: &FleetPlan) -> ContentTemplates {
        use dram::geometry::DramGeometry;
        use dram::timing::TimingParams;
        use failure_model::model::CouplingFailureModel;
        use failure_model::params::FailureModelParams;

        let FleetOracle::Content { rows_per_bank } = plan.config.oracle else {
            return ContentTemplates::default();
        };
        let mut templates = ContentTemplates {
            modules: Vec::new(),
            // One model for the whole fleet: the vulnerable-cell cache is
            // keyed by chip identity internally, so sharing it across
            // groups is sound and maximizes reuse.
            model: Some(CouplingFailureModel::new(
                FailureModelParams::calibrated_at(plan.config.engine.lo_ms),
            )),
        };
        for spec in &plan.shards {
            let key = (spec.chip_seed, spec.density);
            if templates.modules.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let mut geometry = DramGeometry::tiny();
            geometry.rows_per_bank = rows_per_bank;
            geometry.density = spec.density;
            let module =
                dram::module::DramModule::new(geometry, TimingParams::ddr3_1600(), spec.chip_seed);
            templates.modules.push((key, module));
        }
        templates
    }

    fn oracle(&self, spec: &ShardSpec, lo_ms: f64) -> ContentOracle {
        use failure_model::content::ContentProfile;
        let key = (spec.chip_seed, spec.density);
        let module = self
            .modules
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, m)| m.clone())
            .expect("template exists for every shard's chip identity");
        let model = self.model.clone().expect("content mode builds the model");
        // Content seed = chip seed: shards of one group regenerate the
        // same content stream for the same (page, generation).
        ContentOracle::new(
            module,
            model,
            ContentProfile::random_data(),
            lo_ms,
            spec.chip_seed,
        )
    }
}

/// Convenience: expand + instantiate + run to completion at `jobs`.
#[must_use]
pub fn run_fleet(config: &crate::FleetConfig, jobs: usize) -> FleetReport {
    let plan = FleetPlan::expand(config, jobs);
    let mut fleet = Fleet::new(&plan);
    fleet.run_to_completion(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetConfig;

    #[test]
    fn epoch_stepping_matches_whole_runs() {
        // The fleet's epoch-sliced engines must report exactly what one
        // whole-trace run of the same engine reports.
        let config = FleetConfig::small(6, 42);
        let plan = FleetPlan::expand(&config, 1);
        let mut fleet = Fleet::new(&plan);
        let fleet_report = fleet.run_to_completion(1);
        for (spec, summary) in plan.shards.iter().zip(&fleet_report.shards) {
            let mut engine = MemconEngine::with_oracle(
                config.engine,
                spec.trace.n_pages(),
                Box::new(RateOracle::new(
                    memcon::engine::DEFAULT_FAIL_RATE,
                    spec.chip_seed,
                )),
            );
            let solo = engine.run(&spec.trace);
            assert_eq!(summary.refresh_reduction, solo.refresh_reduction);
            assert_eq!(summary.lo_coverage, solo.lo_coverage);
            assert_eq!(summary.tests_correct, solo.tests_correct);
            assert_eq!(summary.tests_mispredicted, solo.tests_mispredicted);
        }
        assert!(fleet.is_done());
        assert!(!fleet.run_epoch(1), "done fleet refuses further epochs");
        fleet.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn content_shards_share_chip_state_within_a_group() {
        // Two shards per chip-seed group: the vulnerable-cell cache must
        // cold-fill once per chip config, not once per shard. Counted via
        // the failure model's own cache telemetry.
        let mut config = FleetConfig::small(4, 7);
        config.distinct_chip_seeds = 2;
        config.density_mix = vec![dram::geometry::ChipDensity::Gb8];
        config.oracle = FleetOracle::Content { rows_per_bank: 32 };
        let registry = std::sync::Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let guard = telemetry::install(std::sync::Arc::clone(&registry));
        let _ = run_fleet(&config, 1);
        drop(guard);
        let builds = registry
            .counter(
                "failure_model.cache.chip_builds",
                telemetry::Class::Deterministic,
            )
            .get();
        assert_eq!(
            builds, 2,
            "4 shards over 2 chip identities must build exactly 2 cache entries"
        );
    }

    #[test]
    fn step_latencies_are_recorded_per_epoch() {
        let config = FleetConfig::small(3, 5);
        let plan = FleetPlan::expand(&config, 1);
        let mut fleet = Fleet::new(&plan);
        let report = fleet.run_to_completion(1);
        assert!(
            report.step_latency.samples >= 3,
            "one sample per shard-epoch"
        );
        assert!(report.step_latency.max_ns >= report.step_latency.p50_ns);
    }
}
